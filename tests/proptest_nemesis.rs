//! Property tests for the nemesis heal discipline: every combinator must
//! leave the cluster exactly as servable as it found it — all injected
//! faults cleared, all crashed hosts restarted — for *arbitrary* drawn
//! parameters, not just the hand-picked ones in the unit tests. The fleet
//! relies on this: with overlapping episodes the heal barrier only exists
//! at schedule end, so a single combinator that forgets one link poisons
//! every later episode of every schedule it appears in.
//!
//! Reproduction: the shim's cases derive from a per-test deterministic
//! seed; `PROPTEST_SEED=<n>` re-runs a failing sequence, and the failing
//! *drawn* seed is printed in the assertion message.

use bytes::Bytes;
use curp::proto::op::{Op, OpResult};
use curp::sim::fleet::run_chaos_seed;
use curp::sim::tempdir::TempDir;
use curp::sim::{
    draw_nemesis, draw_overlay, run_sim, Mode, RamcloudParams, ScheduleLog, SimCluster, Topology,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

/// Audits the post-episode cluster: no residual network fault, no crashed
/// host anywhere in the map or the spare pool, and the cluster still
/// completes a write and a read.
async fn audit_healed(cluster: &SimCluster) -> Result<(), String> {
    let residual = cluster.net.residual_faults();
    if !residual.is_empty() {
        return Err(format!("residual faults after heal: {residual:?}"));
    }
    let cfg = cluster.coord.config();
    let mut hosts = Vec::new();
    for p in &cfg.partitions {
        hosts.push(p.master);
        hosts.extend(p.backups.iter().copied());
        hosts.extend(p.witnesses.iter().copied());
    }
    hosts.extend(cluster.coord.spare_servers());
    hosts.sort();
    hosts.dedup();
    for h in hosts {
        if cluster.net.is_crashed(h) {
            return Err(format!("s{} left crashed after heal", h.0));
        }
    }
    let client = cluster.client(7).await;
    client
        .update(Op::Put { key: b("probe"), value: b("alive") })
        .await
        .map_err(|e| format!("post-heal write failed: {e}"))?;
    match client.read(Op::Get { key: b("probe") }).await {
        Ok(OpResult::Value(Some(v))) if v == b("alive") => Ok(()),
        other => Err(format!("post-heal read returned {other:?}")),
    }
}

/// Runs one drawn nemesis (structural path) against a fresh cluster and
/// audits the heal discipline.
fn one_nemesis_heals(seed: u64, overlay_only: bool) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = Topology::of(1, 3, false);
    let nemesis =
        if overlay_only { draw_overlay(&mut rng, &topo) } else { draw_nemesis(&mut rng, &topo) };
    run_sim(async move {
        let mut params = RamcloudParams::new(3);
        params.batch_size = 5;
        params.spares = 2;
        let dir = if nemesis.needs_disk() {
            Some(TempDir::new("curp-prop-nemesis").map_err(|e| format!("tempdir: {e}"))?)
        } else {
            None
        };
        let mut cluster = match &dir {
            Some(d) => SimCluster::build_durable(Mode::Curp, params, 1, d.path()).await,
            None => SimCluster::build(Mode::Curp, params).await,
        };
        let client = cluster.client(9).await;
        client
            .update(Op::Put { key: b("k"), value: b("v") })
            .await
            .map_err(|e| format!("seed write failed: {e}"))?;
        let mut log = ScheduleLog::start();
        nemesis
            .run(&mut cluster, &mut log)
            .await
            .map_err(|e| format!("{} failed: {e}", nemesis.name()))?;
        audit_healed(&cluster).await.map_err(|e| format!("{}: {e}", nemesis.name()))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any structural combinator, any drawn parameters: after `run()`
    /// returns Ok the cluster is fully healed and still serving.
    #[test]
    fn any_drawn_nemesis_heals_what_it_injected(seed in any::<u64>()) {
        if let Err(why) = one_nemesis_heals(seed, false) {
            prop_assert!(false, "heal discipline violated (drawn seed {seed}): {why}");
        }
    }

    /// Same property through the overlay draw — the five network
    /// combinators the fleet runs concurrently with structural episodes.
    #[test]
    fn any_drawn_overlay_heals_what_it_injected(seed in any::<u64>()) {
        if let Err(why) = one_nemesis_heals(seed, true) {
            prop_assert!(false, "heal discipline violated (drawn seed {seed}): {why}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whole schedules, arbitrary seeds: overlapping episodes, coordinator
    /// kills, power losses and all — every schedule must end fully healed
    /// (the fleet's own audit feeds `report.errors`) and linearizable.
    #[test]
    fn any_chaos_schedule_ends_fully_healed(seed in any::<u64>()) {
        let report = run_chaos_seed(seed);
        prop_assert!(report.is_ok(), "drawn seed {seed}:\n{}", report.render_failure());
    }
}
