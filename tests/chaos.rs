//! The chaos fleet batch: every seed builds a cluster, runs open-loop
//! load concurrently with a randomly drawn episode schedule (network
//! partitions, loss, delay, duplication, crash-restarts, witness loss,
//! master churn, split migrations, coordinator kills mid-plan,
//! whole-cluster power loss — with network overlays running concurrently
//! with the structural episodes), heals, audits heal discipline, and
//! checks the full history with the Wing–Gong linearizability checker
//! plus exactly-once and final-read anchors.
//!
//! Seed protocol: every run is a pure function of its seed. A failing
//! seed prints a one-line repro — `CHAOS_SEED=<n> cargo test -q --test
//! chaos` re-runs exactly that seed's schedule, byte for byte (the
//! schedule-hash test below pins the replay property itself). Knobs:
//!
//! * `CHAOS_SEED=<u64>` — narrow the batch to one seed (the repro path);
//! * `CHAOS_EPISODES=<i,j,...>` — with `CHAOS_SEED`, run only those
//!   episode indices of the drawn schedule (the shrunk-repro path);
//! * `CHAOS_SHRINK=1` — on failure, greedily shrink the failing seed to a
//!   1-minimal episode subset and print the narrowed repro line;
//! * `CHAOS_DUMP_DIR=<dir>` — write each failing seed's full schedule and
//!   history to `<dir>/chaos-seed-<n>.txt` (CI uploads these);
//! * `CHAOS_SOAK_SEEDS=<u64>` — scale the `#[ignore]`d soak (default 1000).

use std::panic::{catch_unwind, AssertUnwindSafe};

use curp::sim::fleet::{
    drawn_episode_count, repro_line, repro_line_episodes, run_chaos, run_chaos_seed, shrink,
    ChaosConfig, ChaosReport,
};

/// Parses an env var as a u64, with a loud usage message on junk — a
/// silently ignored `CHAOS_SEED=0x2a` would "pass" by running the wrong
/// batch.
fn env_u64(name: &str, usage: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => panic!("{name}={raw:?} is not a decimal u64 — usage: {usage}"),
    }
}

/// Parses `CHAOS_EPISODES` as a comma-separated index list, loudly.
fn env_episodes() -> Option<Vec<usize>> {
    let raw = std::env::var("CHAOS_EPISODES").ok()?;
    let mask: Vec<usize> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| match s.parse() {
            Ok(i) => i,
            Err(_) => panic!(
                "CHAOS_EPISODES={raw:?} is not a comma-separated list of episode indices — \
                 usage: CHAOS_SEED=<n> CHAOS_EPISODES=0,2 cargo test -q --test chaos"
            ),
        })
        .collect();
    Some(mask)
}

/// Whether `CHAOS_SHRINK` asks for shrink-on-failure; rejects junk values
/// so a typo'd `CHAOS_SHRINK=yes` doesn't silently skip the shrink.
fn env_shrink() -> bool {
    match std::env::var("CHAOS_SHRINK") {
        Err(_) => false,
        Ok(v) if v == "1" => true,
        Ok(v) if v == "0" || v.is_empty() => false,
        Ok(v) => panic!("CHAOS_SHRINK={v:?} — usage: CHAOS_SHRINK=1 cargo test -q --test chaos"),
    }
}

/// Runs one (seed, episode-mask) pair, panics and all. `tiered` swaps
/// every backup role onto the larger-than-memory engine.
fn run_masked(seed: u64, mask: Option<&[usize]>, tiered: bool) -> std::thread::Result<ChaosReport> {
    catch_unwind(AssertUnwindSafe(|| {
        let mut cfg = ChaosConfig::new(seed);
        cfg.episodes = mask.map(|m| m.to_vec());
        cfg.tiered = tiered;
        run_chaos(cfg)
    }))
}

/// On a failing seed: greedily remove episodes while the failure persists
/// (a panicking candidate counts as failing) and return the 1-minimal
/// mask. Each candidate re-draws the full schedule and runs only the
/// masked subset, so the survivors keep their exact original parameters.
fn shrink_failure(seed: u64, tiered: bool) -> Vec<usize> {
    shrink(drawn_episode_count(seed), |mask| {
        run_masked(seed, Some(mask), tiered).map(|r| !r.is_ok()).unwrap_or(true)
    })
}

/// Writes a failing seed's full triage dump if `CHAOS_DUMP_DIR` is set.
fn dump_failure(seed: u64, report: Option<&ChaosReport>, why: &str) {
    let Ok(dir) = std::env::var("CHAOS_DUMP_DIR") else { return };
    let mut body = String::from(why);
    if let Some(report) = report {
        body.push_str("\nhistory:\n");
        for ev in &report.history {
            body.push_str(&format!("  {ev:?}\n"));
        }
    }
    let path = std::path::Path::new(&dir).join(format!("chaos-seed-{seed}.txt"));
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body)) {
        eprintln!("CHAOS_DUMP_DIR: could not write {}: {e}", path.display());
    }
}

/// Runs one seed and reports everything wrong with it (a linearizability
/// violation, a harness error, an empty schedule, or a panic). With
/// `CHAOS_SHRINK=1`, a failing unmasked seed is shrunk to a 1-minimal
/// episode subset before reporting.
fn check_seed(seed: u64, mask: Option<&[usize]>, tiered: bool) -> Result<(), String> {
    match run_masked(seed, mask, tiered) {
        Ok(report) => {
            if report.schedule.is_empty() && mask.is_none() {
                return Err(format!(
                    "chaos seed {seed} recorded no schedule — repro: {}",
                    repro_line(seed)
                ));
            }
            if report.is_ok() {
                Ok(())
            } else {
                let mut why = report.render_failure();
                if env_shrink() && mask.is_none() {
                    let shrunk = shrink_failure(seed, tiered);
                    why.push_str(&format!(
                        "shrunk to episodes {shrunk:?} — repro: {}\n",
                        repro_line_episodes(seed, &shrunk)
                    ));
                }
                dump_failure(seed, Some(&report), &why);
                Err(why)
            }
        }
        Err(_) => {
            let mut why = format!("chaos seed {seed} panicked — repro: {}", repro_line(seed));
            if env_shrink() && mask.is_none() {
                let shrunk = shrink_failure(seed, tiered);
                why.push_str(&format!(
                    "\nshrunk to episodes {shrunk:?} — repro: {}",
                    repro_line_episodes(seed, &shrunk)
                ));
            }
            dump_failure(seed, None, &why);
            Err(why)
        }
    }
}

fn run_batch(seeds: impl Iterator<Item = u64>, tiered: bool) {
    let mut failed = Vec::new();
    for seed in seeds {
        if let Err(why) = check_seed(seed, None, tiered) {
            eprintln!("{why}");
            failed.push(seed);
        }
    }
    assert!(
        failed.is_empty(),
        "chaos seeds failed: {failed:?} — repro each with CHAOS_SEED=<n> cargo test -q --test chaos"
    );
}

#[test]
fn chaos_batch_is_linearizable_on_every_seed() {
    // CHAOS_SEED=<n> narrows the batch to one seed — the repro path —
    // and CHAOS_EPISODES=<i,j> further narrows that seed's schedule to a
    // shrunk episode subset.
    let usage = "CHAOS_SEED=<n> cargo test -q --test chaos";
    match env_u64("CHAOS_SEED", usage) {
        Some(seed) => {
            let mask = env_episodes();
            if let Err(why) = check_seed(seed, mask.as_deref(), false) {
                panic!("{why}");
            }
        }
        None => {
            if env_episodes().is_some() {
                panic!("CHAOS_EPISODES is set without CHAOS_SEED — usage: CHAOS_SEED=<n> CHAOS_EPISODES=0,2 cargo test -q --test chaos");
            }
            run_batch((0u64..128).map(|i| 0xC0FFEE ^ (i * 7919)), false)
        }
    }
}

/// The same 128-seed batch with every backup replica on the tiered
/// engine: identical schedules (the engine choice never enters the
/// draws), but now every sync round lands in a memtable small enough
/// that chaos-scale load spills to sorted runs mid-episode, and every
/// power-loss reboot restores through checkpoints + runs instead of a
/// pure in-memory replay. `CHAOS_SEED` narrows this batch too (repro
/// with the plain batch first to tell engine bugs from schedule bugs).
#[test]
fn chaos_batch_is_linearizable_on_the_tiered_engine() {
    match env_u64("CHAOS_SEED", "CHAOS_SEED=<n> cargo test -q --test chaos") {
        Some(seed) => {
            let mask = env_episodes();
            if let Err(why) = check_seed(seed, mask.as_deref(), true) {
                panic!("{why}");
            }
        }
        None => run_batch((0u64..128).map(|i| 0xC0FFEE ^ (i * 7919)), true),
    }
}

#[test]
fn any_seed_replays_an_identical_schedule() {
    // The replay oracle: the same seed must produce the identical nemesis
    // schedule — same draws, same victims, same virtual-time stamps —
    // across two completely separate simulations.
    let seed = 0xC0FFEE ^ (17 * 7919);
    let a = run_chaos_seed(seed);
    let b = run_chaos_seed(seed);
    assert_ne!(a.schedule_hash, 0);
    assert_eq!(a.schedule, b.schedule, "nemesis schedule diverged across replays");
    assert_eq!(a.schedule_hash, b.schedule_hash, "schedule hash diverged across replays");
    assert_eq!(a.nemeses, b.nemeses);
    assert_eq!((a.completed_ops, a.pending_ops), (b.completed_ops, b.pending_ops));
}

/// Nightly-style soak: `cargo test -q --test chaos -- --ignored` runs
/// `CHAOS_SOAK_SEEDS` (default 1000) seeds disjoint from the tier-1 batch.
#[test]
#[ignore = "seed soak — opt in with --ignored, scale with CHAOS_SOAK_SEEDS"]
fn chaos_soak() {
    let n = env_u64(
        "CHAOS_SOAK_SEEDS",
        "CHAOS_SOAK_SEEDS=<count> cargo test -q --test chaos -- --ignored",
    )
    .unwrap_or(1000);
    let mut failed = Vec::new();
    for i in 0..n {
        let seed = 0x50AC_0000_0000_0000u64 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if let Err(why) = check_seed(seed, None, false) {
            eprintln!("{why}");
            failed.push(seed);
        }
        if (i + 1) % 100 == 0 {
            eprintln!("soak: {}/{n} seeds, {} failed", i + 1, failed.len());
        }
    }
    assert!(
        failed.is_empty(),
        "soak seeds failed: {failed:?} — repro each with CHAOS_SEED=<n> cargo test -q --test chaos"
    );
}
