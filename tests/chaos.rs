//! The chaos fleet batch: every seed builds a cluster, runs open-loop
//! load concurrently with a randomly composed nemesis sequence (network
//! partitions, loss, delay, duplication, crash-restarts, witness loss,
//! master churn, whole-cluster power loss), heals, and checks the full
//! history with the Wing–Gong linearizability checker plus exactly-once
//! and final-read anchors.
//!
//! Seed protocol: every run is a pure function of its seed. A failing
//! seed prints a one-line repro — `CHAOS_SEED=<n> cargo test -q --test
//! chaos` re-runs exactly that seed's schedule, byte for byte (the
//! schedule-hash test below pins the replay property itself). The
//! `#[ignore]`d soak scales the batch to `CHAOS_SOAK_SEEDS` (default
//! 1000) for nightly-style runs.

use std::panic::{catch_unwind, AssertUnwindSafe};

use curp::sim::fleet::{repro_line, run_chaos_seed};

/// Runs one seed and reports everything wrong with it (a linearizability
/// violation, a harness error, an empty schedule, or a panic).
fn check_seed(seed: u64) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| run_chaos_seed(seed))) {
        Ok(report) => {
            if report.schedule.is_empty() {
                return Err(format!(
                    "chaos seed {seed} recorded no schedule — repro: {}",
                    repro_line(seed)
                ));
            }
            if report.is_ok() {
                Ok(())
            } else {
                Err(report.render_failure())
            }
        }
        Err(_) => Err(format!("chaos seed {seed} panicked — repro: {}", repro_line(seed))),
    }
}

fn run_batch(seeds: impl Iterator<Item = u64>) {
    let mut failed = Vec::new();
    for seed in seeds {
        if let Err(why) = check_seed(seed) {
            eprintln!("{why}");
            failed.push(seed);
        }
    }
    assert!(
        failed.is_empty(),
        "chaos seeds failed: {failed:?} — repro each with CHAOS_SEED=<n> cargo test -q --test chaos"
    );
}

#[test]
fn chaos_batch_is_linearizable_on_every_seed() {
    // CHAOS_SEED=<n> narrows the batch to one seed — the repro path.
    match std::env::var("CHAOS_SEED") {
        Ok(s) => {
            let seed: u64 = s.parse().expect("CHAOS_SEED must be a u64");
            run_batch(std::iter::once(seed));
        }
        Err(_) => run_batch((0u64..64).map(|i| 0xC0FFEE ^ (i * 7919))),
    }
}

#[test]
fn any_seed_replays_an_identical_schedule() {
    // The replay oracle: the same seed must produce the identical nemesis
    // schedule — same draws, same victims, same virtual-time stamps —
    // across two completely separate simulations.
    let seed = 0xC0FFEE ^ (17 * 7919);
    let a = run_chaos_seed(seed);
    let b = run_chaos_seed(seed);
    assert_ne!(a.schedule_hash, 0);
    assert_eq!(a.schedule, b.schedule, "nemesis schedule diverged across replays");
    assert_eq!(a.schedule_hash, b.schedule_hash, "schedule hash diverged across replays");
    assert_eq!(a.nemeses, b.nemeses);
    assert_eq!((a.completed_ops, a.pending_ops), (b.completed_ops, b.pending_ops));
}

/// Nightly-style soak: `cargo test -q --test chaos -- --ignored` runs
/// `CHAOS_SOAK_SEEDS` (default 1000) seeds disjoint from the tier-1 batch.
#[test]
#[ignore = "seed soak — opt in with --ignored, scale with CHAOS_SOAK_SEEDS"]
fn chaos_soak() {
    let n: u64 =
        std::env::var("CHAOS_SOAK_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let mut failed = Vec::new();
    for i in 0..n {
        let seed = 0x50AC_0000_0000_0000u64 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if let Err(why) = check_seed(seed) {
            eprintln!("{why}");
            failed.push(seed);
        }
        if (i + 1) % 100 == 0 {
            eprintln!("soak: {}/{n} seeds, {} failed", i + 1, failed.len());
        }
    }
    assert!(
        failed.is_empty(),
        "soak seeds failed: {failed:?} — repro each with CHAOS_SEED=<n> cargo test -q --test chaos"
    );
}
