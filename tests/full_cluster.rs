//! Workspace-level integration tests: the full stack on both transports,
//! multiple partitions, and reconfiguration under load.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use curp::core::client::{ClientConfig, CurpClient};
use curp::core::coordinator::{Coordinator, CoordinatorHandler};
use curp::core::master::MasterConfig;
use curp::core::server::{CurpServer, ServerHandler};
use curp::proto::cluster::HashRange;
use curp::proto::op::{Op, OpResult};
use curp::proto::types::ServerId;
use curp::sim::{run_sim, vus, Mode, RamcloudParams, SimCluster};
use curp::transport::tcp::{TcpRouter, TcpServer};
use curp::witness::cache::CacheConfig;

fn b(s: &str) -> Bytes {
    Bytes::from(s.to_owned())
}

/// End-to-end over real TCP sockets: coordinator, master, three
/// backup+witness servers, one client — full fast-path protocol.
#[tokio::test(flavor = "multi_thread")]
async fn tcp_cluster_end_to_end() {
    const COORD: ServerId = ServerId(100);
    let ids: Vec<ServerId> = (1..=4).map(ServerId).collect();
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    let mut tcp_handles = Vec::new();
    for &id in &ids {
        let server = CurpServer::new(id, CacheConfig::default());
        let tcp = TcpServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            Arc::new(ServerHandler(Arc::clone(&server))),
        )
        .await
        .unwrap();
        addrs.push(tcp.local_addr());
        servers.push(server);
        tcp_handles.push(tcp);
    }
    let route_addrs = addrs.clone();
    let coord = Coordinator::new(
        Box::new(move |from| {
            let router = TcpRouter::new(from);
            for (i, &addr) in route_addrs.iter().enumerate() {
                router.add_route(ServerId(i as u64 + 1), addr);
            }
            router.client()
        }),
        MasterConfig::default(),
        60_000,
    );
    for s in &servers {
        coord.register_server(Arc::clone(s));
    }
    let coord_tcp = TcpServer::bind(
        "127.0.0.1:0".parse().unwrap(),
        Arc::new(CoordinatorHandler(Arc::clone(&coord))),
    )
    .await
    .unwrap();
    let backups: Vec<ServerId> = (2..=4).map(ServerId).collect();
    let master_id = coord
        .create_partition(ServerId(1), backups.clone(), backups, HashRange::FULL)
        .await
        .unwrap();

    let router = TcpRouter::new(ServerId(999));
    for (i, &addr) in addrs.iter().enumerate() {
        router.add_route(ServerId(i as u64 + 1), addr);
    }
    router.add_route(COORD, coord_tcp.local_addr());
    let client =
        CurpClient::connect(router.client(), COORD, ClientConfig::default()).await.unwrap();

    for i in 0..50 {
        let r =
            client.update(Op::Put { key: b(&format!("tcp-{i}")), value: b("v") }).await.unwrap();
        assert_eq!(r, OpResult::Written { version: 1 });
    }
    assert_eq!(
        client.read(Op::Get { key: b("tcp-25") }).await.unwrap(),
        OpResult::Value(Some(b("v")))
    );
    // The fast path really ran: witnesses accepted records over TCP.
    let counters = servers[1].witness().counters();
    assert!(counters.accepted > 0, "no witness records over TCP?");
    // And background syncs reached the backups over TCP.
    tokio::time::sleep(Duration::from_millis(100)).await;
    assert!(servers[1].backup().next_seq(master_id).unwrap_or(0) > 0);

    for t in tcp_handles {
        t.shutdown();
    }
    coord_tcp.shutdown();
}

/// Two partitions from the start: operations route by key hash; each master
/// owns only its half.
#[test]
fn multi_partition_routing() {
    run_sim(async {
        let cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(1)).await;
        // Split the initial partition and host the upper half on the spare.
        let target = cluster.servers.last().unwrap().id();
        let replicas = vec![ServerId(2)];
        cluster
            .coord
            .migrate(cluster.master_id, 1 << 63, target, replicas.clone(), replicas)
            .await
            .unwrap();
        let client = cluster.client(0).await;
        // Write enough keys to hit both halves with overwhelming probability.
        for i in 0..64 {
            client.update(Op::Put { key: b(&format!("route-{i}")), value: b("v") }).await.unwrap();
        }
        for i in 0..64 {
            assert_eq!(
                client.read(Op::Get { key: b(&format!("route-{i}")) }).await.unwrap(),
                OpResult::Value(Some(b("v")))
            );
        }
        let cfg = cluster.coord.config();
        assert_eq!(cfg.partitions.len(), 2);
        // Both masters actually executed operations.
        for p in &cfg.partitions {
            let server = cluster.servers.iter().find(|s| s.id() == p.master).unwrap();
            let master = server.master().unwrap();
            assert!(
                master.stats.updates.load(std::sync::atomic::Ordering::Relaxed) > 0,
                "partition {:?} received no updates",
                p.master_id
            );
        }
    });
}

/// Witness replacement while clients keep writing: no lost updates, and the
/// stale-witness-list fence forces affected clients through a config refresh.
#[test]
fn witness_replacement_under_load() {
    run_sim(async {
        let cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
        let writer = cluster.client(0).await;
        let writer2 = Arc::clone(&writer);
        let work = tokio::spawn(async move {
            for i in 0..120 {
                writer2
                    .update(Op::Put { key: b(&format!("wl-{i}")), value: b("v") })
                    .await
                    .expect("write failed during reconfiguration");
            }
        });
        tokio::time::sleep(vus(100)).await;
        // Replace witness s2 with the spare while writes are in flight.
        let spare = cluster.servers.last().unwrap().id();
        cluster
            .coord
            .replace_witness(cluster.master_id, ServerId(2), spare)
            .await
            .expect("witness replacement failed");
        work.await.unwrap();
        for i in 0..120 {
            assert_eq!(
                writer.read(Op::Get { key: b(&format!("wl-{i}")) }).await.unwrap(),
                OpResult::Value(Some(b("v"))),
                "lost wl-{i}"
            );
        }
    });
}

/// Crash the master while concurrent clients hammer it; recover; verify
/// every update that was acknowledged is still there.
#[test]
fn crash_under_concurrent_load_loses_nothing() {
    run_sim(async {
        let mut params = RamcloudParams::new(3);
        params.batch_size = 7;
        let cluster = SimCluster::build(Mode::Curp, params).await;
        let acked = Arc::new(parking_lot::Mutex::new(Vec::<String>::new()));
        let mut tasks = Vec::new();
        for c in 0..4 {
            let client = cluster.client(c).await;
            let acked = Arc::clone(&acked);
            tasks.push(tokio::spawn(async move {
                for i in 0..25 {
                    let key = format!("load-{c}-{i}");
                    if client.update(Op::Put { key: b(&key), value: b("v") }).await.is_ok() {
                        acked.lock().push(key);
                    }
                }
            }));
        }
        tokio::time::sleep(vus(120)).await;
        cluster.net.crash(ServerId(1));
        cluster.servers[0].seal_master();
        let spare = cluster.servers.last().unwrap().id();
        cluster.coord.recover_master(cluster.master_id, spare).await.unwrap();
        for t in tasks {
            t.await.unwrap();
        }
        let reader = cluster.client(9).await;
        let acked = acked.lock().clone();
        assert!(acked.len() >= 80, "too few acknowledged writes: {}", acked.len());
        for key in acked {
            assert_eq!(
                reader.read(Op::Get { key: b(&key) }).await.unwrap(),
                OpResult::Value(Some(b("v"))),
                "acknowledged write {key} lost in crash"
            );
        }
    });
}
