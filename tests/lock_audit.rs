//! Runtime lock-order auditor tests. Root integration tests always build
//! with `lock_audit` on (the facade's dev-dependency enables the feature,
//! and resolver-2 unification propagates it to every crate in the test
//! graph) — so these tests double as proof the auditor is actually armed
//! for the chaos batch that runs in the same `cargo test` invocation.
//!
//! Ranks here live in a `0x9xxx_xxxx` band far above the production table
//! in `curp-proto/src/lockrank.rs`, so nothing these tests record in the
//! global acquisition-order graph can interfere with production edges.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bytes::Bytes;
use curp::proto::lockrank;
use curp::proto::op::{Op, OpResult};
use curp::storage::ShardedStore;
use parking_lot::Mutex;

/// Unwraps a caught panic payload into its message string.
fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = err.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        String::from("<non-string panic payload>")
    }
}

#[test]
fn the_auditor_is_armed_in_root_test_builds() {
    // If this fails, feature unification broke and the whole chaos batch
    // is silently running unaudited.
    assert!(
        parking_lot::lock_audit_enabled(),
        "root `cargo test` must build the parking_lot shim with `lock_audit`"
    );
}

#[test]
fn rank_inversion_panics_naming_both_locks() {
    let low = Mutex::ranked(0x9100_0001, "audit.inv.low", 1u32);
    let high = Mutex::ranked(0x9100_0002, "audit.inv.high", 2u32);
    let _g = high.lock();
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _ = low.lock();
    }))
    .expect_err("descending acquisition must panic");
    let msg = panic_message(err);
    assert!(msg.contains("rank inversion"), "got: {msg}");
    assert!(msg.contains("audit.inv.low"), "must name the acquired lock: {msg}");
    assert!(msg.contains("audit.inv.high"), "must name the held lock: {msg}");
}

#[test]
fn strict_leaf_blocks_all_downstream_acquisitions() {
    let leaf = Mutex::ranked_leaf(0x9200_0001, "audit.leaf", ());
    // Higher rank than the leaf — would be legal under plain rank order;
    // only the strict-leaf property forbids it.
    let next = Mutex::ranked(0x9200_0002, "audit.leaf.next", ());
    let _g = leaf.lock();
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _ = next.lock();
    }))
    .expect_err("acquiring under a strict leaf must panic");
    let msg = panic_message(err);
    assert!(msg.contains("strict-leaf"), "got: {msg}");
    assert!(msg.contains("audit.leaf"), "must name the held leaf: {msg}");
    assert!(msg.contains("audit.leaf.next"), "must name the acquired lock: {msg}");
}

#[test]
fn cross_thread_cycle_through_try_lock_is_detected() {
    // `try_lock` is exempt from the rank check (it cannot deadlock, and
    // Debug impls probe out of order through it), and a blocking
    // acquisition made on top of a try-held lock is rank-exempt too. The
    // acquisition-order graph is the net under that escape hatch: two
    // threads recording the same pair of locks in opposite orders must
    // panic on the edge that closes the cycle, with both threads'
    // provenance in the message.
    //
    // Leak the locks so both threads can borrow them 'static-ly.
    let a: &'static Mutex<u32> =
        Box::leak(Box::new(Mutex::ranked(0x9300_0001, "audit.cycle.a", 0)));
    let b: &'static Mutex<u32> =
        Box::leak(Box::new(Mutex::ranked(0x9300_0002, "audit.cycle.b", 0)));

    // Thread 1 records the edge a -> b (rank check skipped: `a` is
    // try-held on top of the stack).
    std::thread::Builder::new()
        .name("audit-cycle-t1".into())
        .spawn(move || {
            let ga = a.try_lock().expect("uncontended");
            let gb = b.lock();
            drop(gb);
            drop(ga);
        })
        .unwrap()
        .join()
        .expect("a -> b ascends; no panic expected");

    // Thread 2 records b -> a, closing the cycle.
    let err = std::thread::Builder::new()
        .name("audit-cycle-t2".into())
        .spawn(move || {
            let gb = b.try_lock().expect("uncontended");
            let ga = a.lock(); // closes the cycle: panics here
            drop(ga);
            drop(gb);
        })
        .unwrap()
        .join()
        .expect_err("b -> a closes the cycle and must panic");
    let msg = panic_message(err);
    assert!(msg.contains("acquisition-order cycle detected"), "got: {msg}");
    assert!(msg.contains("audit.cycle.a"), "cycle path must name both locks: {msg}");
    assert!(msg.contains("audit.cycle.b"), "cycle path must name both locks: {msg}");
    assert!(
        msg.contains("audit-cycle-t1") && msg.contains("audit-cycle-t2"),
        "each edge must carry the provenance of the thread that first recorded it: {msg}"
    );
}

#[test]
fn shard_granularity_locking_passes_under_the_auditor() {
    // Regression guard for the production rank table: per-shard store
    // locks carry `STORE_SHARD + index`, so holding shard `i` while a
    // second thread locks shard `j` is two independent ascending chains —
    // the auditor must stay silent and execution on the free shard must
    // not wait for the held one.
    assert!(parking_lot::lock_audit_enabled());
    let store: ShardedStore = ShardedStore::new(8);
    let held = store.shard_of(b"held-key");
    let other_key = (0..100)
        .map(|i| format!("free-{i}"))
        .find(|k| store.shard_of(k.as_bytes()) != held)
        .expect("some key routes elsewhere");
    let guards = store.lock(&[held]);
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let r = store.execute(&Op::Put {
                key: Bytes::from(other_key.clone()),
                value: Bytes::from_static(b"v"),
            });
            done_tx.send(r).unwrap();
        });
        let r = done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("execute on a free shard must not trip the auditor or block");
        assert_eq!(r, OpResult::Written { version: 1 });
        drop(guards);
    });
}

#[test]
fn production_rank_bands_ascend_along_the_documented_order() {
    // The documented acquisition order (DESIGN.md invariant 6) must match
    // the constants the locks are actually constructed with. A change that
    // reshuffles the table without updating the docs fails here.
    let order = [
        lockrank::FLEET_HISTORY,
        lockrank::COORD_STATE,
        lockrank::CLIENT_STATE,
        lockrank::SERVER_MASTER,
        lockrank::BACKUP_REPLICAS,
        lockrank::WITNESS_INSTANCES,
        lockrank::WITNESS_MODE,
        lockrank::STORE_SHARD,
        lockrank::WITNESS_SHARD,
        lockrank::MASTER_RIFL,
        lockrank::CONSENSUS_REPLICA,
        lockrank::WITNESS_JOURNAL,
        lockrank::TRANSPORT_SERVERS,
        lockrank::TIER_RUNS,
    ];
    assert!(order.windows(2).all(|w| w[0] < w[1]), "rank table must ascend: {order:#x?}");
    // Shard bands must not collide with the bands above them.
    assert!(lockrank::STORE_SHARD + (lockrank::MAX_SHARDS as u32 - 1) < lockrank::WITNESS_SHARD);
    assert!(lockrank::WITNESS_SHARD + (lockrank::MAX_SHARDS as u32 - 1) < lockrank::MASTER_RIFL);
}
