//! Crash-safe orchestration, step by step: the coordinator journals every
//! `recover_master` / `migrate` step to its write-ahead intent log
//! *before* executing it, so a coordinator death between any two journal
//! appends leaves a resumable plan. These tests kill the coordinator at
//! **every** step boundary of both plans — via the intent log's injected
//! crash (`set_intent_fail_after`), which fails the next append without
//! writing, exactly like the process dying there — then cold-boot the
//! coordinator from the journal and re-issue the same call.
//!
//! After every (kill point × resume) combination the cluster map must be
//! whole again: the keyspace fully covered by disjoint ranges, the map
//! version strictly higher than before the kill, every range owned by
//! exactly one live master (no double owner), the crashed incarnation
//! gone, and no plan left open.

use bytes::Bytes;
use curp::proto::op::{Op, OpResult};
use curp::sim::tempdir::TempDir;
use curp::sim::{run_sim, Mode, RamcloudParams, SimCluster};

/// One full recover plan writes exactly this many intent-log records:
/// begin, Attempt, Fence, WitnessReset, Restore, Publish, Cleanup, close.
const RECOVER_RECORDS: u64 = 8;
/// One full migrate plan writes exactly this many intent-log records:
/// begin, Drain, TargetWitnesses, TargetInstall, SourceRefit, Publish,
/// close.
const MIGRATE_RECORDS: u64 = 7;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

async fn put(cluster: &SimCluster, key: &str, val: &str) {
    let client = cluster.client(7).await;
    client.update(Op::Put { key: b(key), value: b(val) }).await.expect("put");
}

async fn get(cluster: &SimCluster, key: &str) -> Option<Bytes> {
    let client = cluster.client(8).await;
    match client.read(Op::Get { key: b(key) }).await.expect("get") {
        OpResult::Value(v) => v,
        other => panic!("unexpected read result {other:?}"),
    }
}

/// The map invariants every resume must restore: disjoint ranges covering
/// the whole keyspace, each owned by exactly one master on exactly one
/// host.
fn assert_map_whole(cluster: &SimCluster, context: &str) {
    let cfg = cluster.coord.config();
    let mut ranges: Vec<_> = cfg.partitions.iter().map(|p| p.range).collect();
    ranges.sort_by_key(|r| r.start);
    assert_eq!(ranges.first().map(|r| r.start), Some(0), "{context}: keyspace start uncovered");
    assert_eq!(ranges.last().map(|r| r.end), Some(u64::MAX), "{context}: keyspace end uncovered");
    for w in ranges.windows(2) {
        assert_eq!(w[0].end, w[1].start, "{context}: keyspace gap or overlap");
    }
    let mut ids: Vec<_> = cfg.partitions.iter().map(|p| p.master_id).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), cfg.partitions.len(), "{context}: a master id owns two ranges");
    let mut hosts: Vec<_> = cfg.partitions.iter().map(|p| p.master).collect();
    hosts.sort();
    hosts.dedup();
    assert_eq!(hosts.len(), cfg.partitions.len(), "{context}: a host owns two ranges");
    assert_eq!(cluster.coord.open_plan_count(), 0, "{context}: a plan stayed open");
}

#[test]
fn recovery_resumes_from_every_intent_log_step_boundary() {
    for k in 0..RECOVER_RECORDS {
        run_sim(async move {
            let dir = TempDir::new("curp-intent-recover").unwrap();
            let mut params = RamcloudParams::new(3);
            params.batch_size = 2;
            let mut cluster = SimCluster::build_durable(Mode::Curp, params, 1, dir.path()).await;
            put(&cluster, "k", "v").await;
            let before = cluster.coord.config();
            let old = before.partitions[0].master_id;
            let old_host = before.partitions[0].master;
            let spare = cluster.spare_server().expect("spare server");
            cluster.crash_server(old_host);

            // The coordinator dies exactly at step boundary `k`: the k-th
            // journal append fails without writing, aborting the plan there.
            assert!(cluster.coord.set_intent_fail_after(Some(k)), "durable coordinator expected");
            let err = cluster
                .coord
                .recover_master(old, spare)
                .await
                .expect_err("the injected crash must surface");
            assert!(err.contains("injected"), "step {k}: unexpected error {err}");
            assert!(cluster.coord.set_intent_fail_after(None));

            // Cold boot from the journal, then re-issue the same call: the
            // coordinator finds the open plan and resumes it (or, at k=0,
            // finds nothing recorded and starts fresh — same API).
            let open = cluster.coordinator_cold_boot().expect("cold boot");
            assert!(open <= 1, "step {k}: {open} open plans");
            let new_id = cluster
                .coord
                .recover_master(old, spare)
                .await
                .unwrap_or_else(|e| panic!("resume after step {k} failed: {e}"));

            let after = cluster.coord.config();
            assert!(
                after.version > before.version,
                "step {k}: map version must strictly increase ({} -> {})",
                before.version,
                after.version
            );
            assert_eq!(after.partitions[0].master_id, new_id, "step {k}");
            assert!(
                after.partitions.iter().all(|p| p.master_id != old),
                "step {k}: crashed incarnation still owns a range"
            );
            assert_map_whole(&cluster, &format!("recover step {k}"));

            // And the recovered partition actually serves.
            cluster.master_ids[0] = new_id;
            cluster.master_id = new_id;
            cluster.restart_server(old_host).expect("old host rejoins");
            assert_eq!(get(&cluster, "k").await, Some(b("v")), "step {k}: acknowledged write lost");
            put(&cluster, "k", "after").await;
            assert_eq!(get(&cluster, "k").await, Some(b("after")), "step {k}");
        });
    }
}

#[test]
fn recovery_writes_exactly_the_pinned_record_count() {
    // Pin RECOVER_RECORDS: with a budget of exactly that many appends the
    // plan completes — if the plan ever grows or shrinks a step, this
    // fails and the step-boundary loop above must be revisited.
    run_sim(async {
        let dir = TempDir::new("curp-intent-recover-count").unwrap();
        let mut params = RamcloudParams::new(3);
        params.batch_size = 2;
        let cluster = SimCluster::build_durable(Mode::Curp, params, 1, dir.path()).await;
        put(&cluster, "k", "v").await;
        let old = cluster.coord.config().partitions[0].master_id;
        let old_host = cluster.coord.config().partitions[0].master;
        let spare = cluster.spare_server().expect("spare server");
        cluster.crash_server(old_host);
        assert!(cluster.coord.set_intent_fail_after(Some(RECOVER_RECORDS)));
        cluster
            .coord
            .recover_master(old, spare)
            .await
            .expect("a full recover plan fits exactly RECOVER_RECORDS appends");
        assert!(cluster.coord.set_intent_fail_after(None));
        assert_eq!(cluster.coord.open_plan_count(), 0);
    });
}

#[test]
fn migration_resumes_from_every_intent_log_step_boundary() {
    for k in 0..MIGRATE_RECORDS {
        run_sim(async move {
            let dir = TempDir::new("curp-intent-migrate").unwrap();
            let mut params = RamcloudParams::new(3);
            params.batch_size = 2;
            let mut cluster = SimCluster::build_durable(Mode::Curp, params, 1, dir.path()).await;
            put(&cluster, "k", "v").await;
            let before = cluster.coord.config();
            let part = before.partitions[0].clone();
            let split_at = part.range.start + (part.range.end - part.range.start) / 2;
            let spare = cluster.spare_server().expect("spare server");

            assert!(cluster.coord.set_intent_fail_after(Some(k)), "durable coordinator expected");
            let err = cluster
                .coord
                .migrate(
                    part.master_id,
                    split_at,
                    spare,
                    part.backups.clone(),
                    part.witnesses.clone(),
                )
                .await
                .expect_err("the injected crash must surface");
            assert!(err.contains("injected"), "step {k}: unexpected error {err}");
            assert!(cluster.coord.set_intent_fail_after(None));

            let open = cluster.coordinator_cold_boot().expect("cold boot");
            assert!(open <= 1, "step {k}: {open} open plans");
            let new_id = cluster
                .coord
                .migrate(
                    part.master_id,
                    split_at,
                    spare,
                    part.backups.clone(),
                    part.witnesses.clone(),
                )
                .await
                .unwrap_or_else(|e| panic!("resume after step {k} failed: {e}"));

            let after = cluster.coord.config();
            assert!(
                after.version > before.version,
                "step {k}: map version must strictly increase ({} -> {})",
                before.version,
                after.version
            );
            assert_eq!(after.partitions.len(), before.partitions.len() + 1, "step {k}");
            assert!(after.partitions.iter().any(|p| p.master_id == new_id), "step {k}");
            assert_map_whole(&cluster, &format!("migrate step {k}"));

            // Both halves keep serving through the published map.
            cluster.master_ids = after.partitions.iter().map(|p| p.master_id).collect();
            cluster.master_id = cluster.master_ids[0];
            assert_eq!(get(&cluster, "k").await, Some(b("v")), "step {k}: acknowledged write lost");
            put(&cluster, "k", "post").await;
            put(&cluster, "zzz", "upper").await;
            assert_eq!(get(&cluster, "k").await, Some(b("post")), "step {k}");
            assert_eq!(get(&cluster, "zzz").await, Some(b("upper")), "step {k}");
        });
    }
}

#[test]
fn migration_writes_exactly_the_pinned_record_count() {
    run_sim(async {
        let dir = TempDir::new("curp-intent-migrate-count").unwrap();
        let mut params = RamcloudParams::new(3);
        params.batch_size = 2;
        let mut cluster = SimCluster::build_durable(Mode::Curp, params, 1, dir.path()).await;
        put(&cluster, "k", "v").await;
        let part = cluster.coord.config().partitions[0].clone();
        let split_at = part.range.start + (part.range.end - part.range.start) / 2;
        let spare = cluster.spare_server().expect("spare server");
        assert!(cluster.coord.set_intent_fail_after(Some(MIGRATE_RECORDS)));
        let new_id = cluster
            .coord
            .migrate(part.master_id, split_at, spare, part.backups.clone(), part.witnesses.clone())
            .await
            .expect("a full migrate plan fits exactly MIGRATE_RECORDS appends");
        assert!(cluster.coord.set_intent_fail_after(None));
        assert_eq!(cluster.coord.open_plan_count(), 0);
        cluster.master_ids.push(new_id);
    });
}
