//! The §5.4 durability property, end to end: a **whole-cluster power loss**
//! under concurrent open-loop load may not lose a single acknowledged
//! write.
//!
//! The cluster is built durable — backups write-ahead-log every sync round
//! to per-master AOFs (one `write + fsync` per round), witnesses journal
//! every mutation before acknowledging — and then the nemesis kills every
//! server at once and cold-restarts the cluster from the on-disk state
//! alone. Clients keep submitting through the outage: operations arrive at
//! a fixed virtual-time rate whether or not earlier ones completed (open
//! loop), and each completed operation's invoke/response interval and
//! observed result enter a history. Operations that failed (their outcome
//! is unknown — the power cut may have eaten the ack) are recorded as
//! *pending*, which the Wing–Gong checker may linearize or drop. Final
//! reads of every key anchor the post-restart state, so an acknowledged
//! write that vanished — or a counter increment that double-applied — fails
//! the linearizability check.

use std::sync::Arc;

use bytes::Bytes;
use curp::core::client::{PipelineConfig, PipelinedClient};
use curp::proto::op::{Op, OpResult};
use curp::sim::lincheck::{failing_keys, HistOp, HistoryEvent};
use curp::sim::tempdir::TempDir;
use curp::sim::{run_sim, vus, Mode, RamcloudParams, SimCluster};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEYS: &[&str] = &["alpha", "beta", "gamma", "delta", "omega"];

/// Submits one operation through the pipelined client and records its
/// history event (or a pending marker for a mutation with unknown outcome).
async fn one_op(
    pipe: Arc<PipelinedClient>,
    history: Arc<Mutex<Vec<HistoryEvent>>>,
    key: Bytes,
    kind: u32,
    payload: u64,
    epoch: tokio::time::Instant,
) {
    // NB: under the sim's scaled clock (1 virtual ns = 1 tokio ms, see
    // curp_sim::time) `as_millis` yields virtual *nanoseconds* — ops 3 µs
    // apart differ by 3 000 here, so real-time ordering is fully resolved.
    let invoke = epoch.elapsed().as_millis() as u64;
    let (op_for_history, outcome) = match kind {
        0 => {
            let value = Bytes::from(format!("v{payload}"));
            let done = match pipe.submit(Op::Put { key: key.clone(), value: value.clone() }).await {
                Ok(completion) => completion.await.map(|_| ()),
                Err(e) => Err(e),
            };
            (HistOp::Put(value), done)
        }
        1 => {
            let delta = (payload % 4) as i64 + 1;
            let done = match pipe.submit(Op::Incr { key: key.clone(), delta }).await {
                Ok(completion) => completion.await,
                Err(e) => Err(e),
            };
            match done {
                Ok(OpResult::Counter(v)) => (HistOp::Incr(delta, v), Ok(())),
                Ok(OpResult::WrongType) => return, // typed conflict: not modeled
                Ok(other) => panic!("unexpected incr result {other:?}"),
                Err(e) => (HistOp::Incr(delta, 0), Err(e)),
            }
        }
        _ => {
            let done = match pipe.submit(Op::Get { key: key.clone() }).await {
                Ok(completion) => completion.await,
                Err(e) => Err(e),
            };
            match done {
                Ok(OpResult::Value(v)) => (HistOp::Get(v), Ok(())),
                Ok(OpResult::WrongType) => return,
                Ok(other) => panic!("unexpected get result {other:?}"),
                // A failed read observed nothing; it constrains no state.
                Err(_) => return,
            }
        }
    };
    let ret = epoch.elapsed().as_millis() as u64;
    let event = match outcome {
        Ok(()) => HistoryEvent { key, op: op_for_history, invoke, ret },
        // Unknown outcome: the op may or may not have taken effect.
        Err(_) => HistoryEvent { key, op: op_for_history, invoke, ret: u64::MAX },
    };
    history.lock().push(event);
}

fn run_case(seed: u64, partitions: usize, tiered: bool) {
    run_sim(async move {
        let dir = TempDir::new("curp-powerloss-e2e").unwrap();
        let mut params = RamcloudParams::new(3);
        params.seed = seed;
        params.batch_size = 5; // frequent syncs: both AOFs and journals carry state
        params.sync_interval_ns = 30_000;
        if tiered {
            let tier_root = dir.path().join("tier");
            std::fs::create_dir_all(&tier_root).unwrap();
            params.tiered = Some(tier_root);
        }
        let mut cluster =
            SimCluster::build_durable(Mode::Curp, params, partitions, dir.path()).await;
        let pipe = cluster.pipelined_client(0, PipelineConfig::default()).await;
        let history = Arc::new(Mutex::new(Vec::new()));
        let epoch = tokio::time::Instant::now();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D);

        // Open-loop driver: one arrival every 3 µs of virtual time, first
        // 30 ops before the outage, 30 more submitted as the power comes
        // back — completions overlap arrivals and the restart freely.
        let mut tasks = Vec::new();
        let arrivals = |n: u32, rng: &mut StdRng| {
            let mut batch = Vec::new();
            for _ in 0..n {
                let key = Bytes::from(KEYS[rng.gen_range(0..KEYS.len())].to_owned());
                let kind = rng.gen_range(0..3);
                let payload = rng.gen::<u64>();
                batch.push((key, kind, payload));
            }
            batch
        };
        let pre = arrivals(30, &mut rng);
        for (key, kind, payload) in pre {
            tokio::time::sleep(vus(3)).await;
            tasks.push(tokio::spawn(one_op(
                Arc::clone(&pipe),
                Arc::clone(&history),
                key,
                kind,
                payload,
                epoch,
            )));
        }

        // *** the power fails across the whole cluster ***
        let old_masters = cluster.master_ids.clone();
        let new_masters = cluster.power_loss_restart().await.expect("cold restart failed");
        assert_eq!(new_masters.len(), partitions);
        for (old, new) in old_masters.iter().zip(&new_masters) {
            assert_ne!(old, new, "every partition must be re-incarnated");
        }

        let post = arrivals(30, &mut rng);
        for (key, kind, payload) in post {
            tokio::time::sleep(vus(3)).await;
            tasks.push(tokio::spawn(one_op(
                Arc::clone(&pipe),
                Arc::clone(&history),
                key,
                kind,
                payload,
                epoch,
            )));
        }
        for t in tasks {
            t.await.expect("op task panicked");
        }

        // Anchor the post-restart state: a final, completed read per key.
        // Any acknowledged write the restart lost now breaks linearization.
        let client = pipe.inner();
        for key in KEYS {
            let key = Bytes::from((*key).to_owned());
            let invoke = epoch.elapsed().as_millis() as u64;
            let r = client.read(Op::Get { key: key.clone() }).await.expect("final read failed");
            let ret = epoch.elapsed().as_millis() as u64;
            let OpResult::Value(v) = r else { panic!("unexpected read result {r:?}") };
            history.lock().push(HistoryEvent { key, op: HistOp::Get(v), invoke, ret });
        }

        let history = history.lock();
        let completed = history.iter().filter(|e| !e.is_pending()).count();
        assert!(
            completed >= 30,
            "too few completed ops ({completed}) for the check to mean anything"
        );
        let bad = failing_keys(&history);
        assert!(
            bad.is_empty(),
            "ACKNOWLEDGED WRITES LOST OR REORDERED across power loss: keys {bad:?} \
             (seed {seed}): {:#?}",
            history.iter().filter(|e| bad.contains(&e.key)).collect::<Vec<_>>()
        );
    });
}

#[test]
fn power_loss_under_open_loop_load_loses_no_acknowledged_write() {
    for seed in 0..4 {
        run_case(seed * 11 + 2, 1, false);
    }
}

#[test]
fn power_loss_with_two_partitions_recovers_every_partition() {
    for seed in 0..2 {
        run_case(seed * 17 + 5, 2, false);
    }
}

/// The same outage with every backup replica on the larger-than-memory
/// tiered engine (1 KiB memtable, so the pre-outage load spills to sorted
/// runs): the cold restart reconstructs each replica from base snapshot +
/// per-shard checkpoints + AOF suffix instead of a pure in-memory replay,
/// and still may not lose an acknowledged write.
#[test]
fn power_loss_on_the_tiered_engine_loses_no_acknowledged_write() {
    for seed in 0..4 {
        run_case(seed * 11 + 2, 1, true);
    }
}

/// A quieter, fully deterministic variant: with syncing disabled the whole
/// speculative tail is durable *only* in the witness journals, so the cold
/// restart exercises pure witness replay — then flips to eager syncing to
/// exercise pure AOF restore.
#[test]
fn witness_only_and_aof_only_tails_both_survive() {
    run_sim(async {
        let dir = TempDir::new("curp-powerloss-tails").unwrap();
        let mut params = RamcloudParams::new(3);
        params.batch_size = 10_000;
        params.sync_interval_ns = u64::MAX / 2048; // never
        let mut cluster = SimCluster::build_durable(Mode::Curp, params, 1, dir.path()).await;
        let client = cluster.client(0).await;

        // Phase 1: witness-journal-only durability.
        for i in 0..8 {
            client
                .update(Op::Incr { key: Bytes::from(format!("c{}", i % 2)), delta: 1 })
                .await
                .unwrap();
        }
        cluster.power_loss_restart().await.unwrap();
        for i in 0..2 {
            let r = client.read(Op::Get { key: Bytes::from(format!("c{i}")) }).await.unwrap();
            assert_eq!(r, OpResult::Value(Some(Bytes::from("4"))), "counter c{i} diverged");
        }

        // Phase 2: force everything onto the backups' AOFs (a read blocks
        // on a full sync), then lose power again — including a second
        // restart of the already-restarted witnesses' journals.
        for i in 0..8 {
            client
                .update(Op::Incr { key: Bytes::from(format!("c{}", i % 2)), delta: 1 })
                .await
                .unwrap();
        }
        client.read(Op::Get { key: Bytes::from("c0") }).await.unwrap();
        cluster.power_loss_restart().await.unwrap();
        for i in 0..2 {
            let r = client.read(Op::Get { key: Bytes::from(format!("c{i}")) }).await.unwrap();
            assert_eq!(r, OpResult::Value(Some(Bytes::from("8"))), "counter c{i} diverged");
        }
        // Exactly-once survived two outages: a fresh increment lands on 9.
        let r = client.update(Op::Incr { key: Bytes::from("c0"), delta: 1 }).await.unwrap();
        assert_eq!(r, OpResult::Counter(9));
    });
}

/// The larger-than-memory acceptance run: a workload writing ~24x the sim
/// tier's 1 KiB memtable budget (256 puts of 96-byte values over 24 keys,
/// so most writes are overwrites) completes on a tiered durable cluster,
/// and after compaction every backup's AOF is bounded by its *live* state
/// — at most 2x the replica's state bytes, not the full write history.
/// A power loss after compaction then restores purely from base snapshot
/// + checkpoints + the bounded AOF suffix.
#[test]
fn tiered_backup_bounds_its_aof_by_live_state_under_overwrites() {
    run_sim(async {
        let dir = TempDir::new("curp-tiered-e2e").unwrap();
        let mut params = RamcloudParams::new(3);
        params.batch_size = 5;
        params.sync_interval_ns = 30_000;
        let tier_root = dir.path().join("tier");
        std::fs::create_dir_all(&tier_root).unwrap();
        params.tiered = Some(tier_root);
        let mut cluster = SimCluster::build_durable(Mode::Curp, params, 1, dir.path()).await;
        let client = cluster.client(0).await;

        let mut last = std::collections::HashMap::new();
        for i in 0..256u32 {
            let key = format!("k{:02}", i % 24);
            let value = Bytes::from(vec![b'a' + (i % 26) as u8; 96]);
            last.insert(key.clone(), value.clone());
            client.update(Op::Put { key: Bytes::from(key), value }).await.unwrap();
        }
        // A read blocks on a full sync: every acknowledged write above is
        // now on the backups' AOFs.
        client.read(Op::Get { key: Bytes::from("k00") }).await.unwrap();

        let master = cluster.master_id;
        let mut backups = 0;
        for s in &cluster.servers {
            let Some(before) = s.backup().footprint(master) else { continue };
            backups += 1;
            s.backup().compact(master).expect("compaction failed");
            let after = s.backup().footprint(master).expect("footprint after compaction");
            assert!(
                after.aof_bytes < before.aof_bytes,
                "compaction must shrink a history-heavy AOF \
                 ({} -> {} bytes on s{})",
                before.aof_bytes,
                after.aof_bytes,
                s.id().0
            );
            assert!(
                after.aof_bytes <= 2 * after.state_bytes,
                "post-compaction AOF ({} bytes) exceeds 2x live state ({} bytes) on s{}",
                after.aof_bytes,
                after.state_bytes,
                s.id().0
            );
        }
        assert_eq!(backups, 3, "all f=3 backups must hold a replica of the master");

        // Power loss after compaction: restore runs from base snapshot +
        // per-shard checkpoints + the bounded AOF suffix alone.
        cluster.power_loss_restart().await.expect("cold restart failed");
        for (key, want) in &last {
            let r = client.read(Op::Get { key: Bytes::from(key.clone()) }).await.unwrap();
            assert_eq!(
                r,
                OpResult::Value(Some(want.clone())),
                "key {key} diverged after the post-compaction restart"
            );
        }
    });
}
