//! The crown-jewel property test: histories of concurrent clients running
//! against a CURP cluster — with a master crash and recovery injected
//! mid-run — are linearizable (§3.4).
//!
//! Clients issue random Put/Get/Incr operations over a small keyspace (small
//! so conflicts are frequent and the speculative machinery is stressed).
//! Every operation's invocation/response is timestamped with the virtual
//! clock; operations that fail after retries are recorded as *pending* (they
//! may or may not have taken effect — the checker explores both). The
//! Wing–Gong checker then searches for a valid linearization.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use curp::core::client::CurpClient;
use curp::proto::op::{Op, OpResult};
use curp::proto::types::ServerId;
use curp::sim::lincheck::{check_linearizable, failing_keys, HistOp, HistoryEvent};
use curp::sim::{run_sim, Mode, RamcloudParams, SimCluster};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEYS: &[&str] = &["alpha", "beta", "gamma", "delta"];

async fn client_task(
    client: Arc<CurpClient>,
    history: Arc<Mutex<Vec<HistoryEvent>>>,
    seed: u64,
    ops: usize,
    epoch: tokio::time::Instant,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..ops {
        let key = Bytes::from(KEYS[rng.gen_range(0..KEYS.len())].to_owned());
        let kind = rng.gen_range(0..3);
        let invoke = epoch.elapsed().as_millis() as u64;
        let (op_for_history, outcome) = match kind {
            0 => {
                let value = Bytes::from(format!("v{}", rng.gen::<u32>()));
                let r = client.update(Op::Put { key: key.clone(), value: value.clone() }).await;
                (HistOp::Put(value), r.map(|_| ()))
            }
            1 => {
                let delta = rng.gen_range(1..5i64);
                match client.update(Op::Incr { key: key.clone(), delta }).await {
                    Ok(OpResult::Counter(v)) => (HistOp::Incr(delta, v), Ok(())),
                    Ok(OpResult::WrongType) => continue, // typed conflict: not modeled
                    Ok(other) => panic!("unexpected incr result {other:?}"),
                    Err(e) => (HistOp::Incr(delta, 0), Err(e)),
                }
            }
            _ => match client.read(Op::Get { key: key.clone() }).await {
                Ok(OpResult::Value(v)) => (HistOp::Get(v), Ok(())),
                Ok(OpResult::WrongType) => continue,
                Ok(other) => panic!("unexpected get result {other:?}"),
                Err(e) => (HistOp::Get(None), Err(e)),
            },
        };
        let ret = epoch.elapsed().as_millis() as u64;
        let event = match outcome {
            Ok(()) => HistoryEvent { key, op: op_for_history, invoke, ret },
            // Failed (or unknown-outcome) operations: only *mutations* may
            // still take effect; a failed read observed nothing.
            Err(_) => match op_for_history {
                HistOp::Get(_) => continue,
                op => HistoryEvent { key, op, invoke, ret: u64::MAX },
            },
        };
        history.lock().push(event);
    }
}

fn run_case(seed: u64, crash: bool) {
    run_sim(async move {
        let mut params = RamcloudParams::new(3);
        params.seed = seed;
        params.batch_size = 5; // frequent syncs interleave with speculation
        params.sync_interval_ns = 30_000;
        let cluster = SimCluster::build(Mode::Curp, params).await;
        let history = Arc::new(Mutex::new(Vec::new()));

        // One shared epoch: all invocation/response timestamps must be on
        // the same clock or cross-client ordering is meaningless.
        let epoch = tokio::time::Instant::now();
        let mut tasks = Vec::new();
        for c in 0..4 {
            let client = cluster.client(c).await;
            let history = Arc::clone(&history);
            tasks.push(tokio::spawn(client_task(
                client,
                history,
                seed ^ (c as u64 + 1),
                12,
                epoch,
            )));
        }

        if crash {
            // Let some operations land, then kill the master mid-run.
            tokio::time::sleep(Duration::from_secs(200)).await; // 200 virtual µs
            cluster.net.crash(ServerId(1));
            cluster.servers[0].seal_master();
            let spare = cluster.servers.last().unwrap().id();
            cluster.coord.recover_master(cluster.master_id, spare).await.expect("recovery failed");
        }

        for t in tasks {
            t.await.expect("client task panicked");
        }
        let history = history.lock();
        assert!(history.len() >= 20, "history too small to be meaningful: {}", history.len());
        let bad = failing_keys(&history);
        assert!(
            bad.is_empty(),
            "NON-LINEARIZABLE keys {:?} (seed {seed}, crash {crash}): {:#?}",
            bad,
            history.iter().filter(|e| bad.contains(&e.key)).collect::<Vec<_>>()
        );
    });
}

#[test]
fn histories_without_crashes_are_linearizable() {
    for seed in 0..6 {
        run_case(seed * 7 + 1, false);
    }
}

#[test]
fn histories_with_master_crash_are_linearizable() {
    for seed in 0..6 {
        run_case(seed * 13 + 3, true);
    }
}

#[test]
fn histories_with_message_loss_are_linearizable() {
    for seed in 0..4 {
        run_sim(async move {
            let mut params = RamcloudParams::new(3);
            params.seed = seed;
            params.batch_size = 5;
            let cluster = SimCluster::build(Mode::Curp, params).await;
            let history = Arc::new(Mutex::new(Vec::new()));
            let epoch = tokio::time::Instant::now();
            let mut tasks = Vec::new();
            for c in 0..3 {
                let client = cluster.client(c).await;
                let history = Arc::clone(&history);
                tasks.push(tokio::spawn(client_task(
                    client,
                    history,
                    seed ^ (c as u64 + 1),
                    10,
                    epoch,
                )));
            }
            cluster.net.set_drop_rate(0.02);
            for t in tasks {
                t.await.expect("client task panicked");
            }
            let history = history.lock();
            assert!(
                check_linearizable(&history),
                "NON-LINEARIZABLE lossy history (seed {seed}): {history:#?}"
            );
        });
    }
}
