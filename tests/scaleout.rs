//! The elastic scale-out acceptance test (ISSUE 7's end state): one
//! partition, open-loop load ramped past saturation, and the coordinator
//! autoscaler splitting the keyspace live — while one pipelined client keeps
//! running — until the cluster sustains at least twice the single-partition
//! plateau, with a clean Wing–Gong linearizability check spanning every
//! migration.
//!
//! Methodology (see EXPERIMENTS.md, "Saturation ramp"):
//!
//! 1. **Plateau** — offered load far past one master's capacity; completed
//!    ops / elapsed time measures the capacity plateau, not the offered rate.
//! 2. **Ramp** — the autoscaler polls `MasterLoadStats`, and each saturated
//!    tick splits the hottest partition at its hotkey-mass median onto a
//!    spare. Load never stops; the client's stale map heals through
//!    NotOwner-triggered redirects.
//! 3. **Re-measure** — the same offered load against the scaled cluster.
//!
//! A low-rate "checker lane" of counter increments runs through the same
//! client across the whole ramp; its history (plus final reads) must
//! linearize.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use curp_core::client::{PipelineConfig, PipelinedClient};
use curp_core::coordinator::{AutoscaleConfig, Autoscaler};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::KeyHash;
use curp_sim::lincheck::{failing_keys_detailed, HistOp, HistoryEvent};
use curp_sim::time::{run_sim, vus};
use curp_sim::{Mode, RamcloudParams, SimCluster};
use curp_workload::{PartitionLoadLedger, Workload, WorkloadOp};
use rand::rngs::StdRng;
use rand::SeedableRng;

const LANE_KEYS: [&str; 4] = ["c0", "c1", "c2", "c3"];

/// Drives the three-client load fleet concurrently at one op per
/// `interval_vns` virtual ns *per client* and returns the aggregate
/// measured throughput (ops per virtual second) and the worst p99 (µs)
/// across the fleet. Each client is its own simulated machine with its own
/// NIC dispatch budget — a single client's 55 ns/message dispatch would
/// itself cap near 2.3M ops/s (8 frames per unbatched op) and mask the
/// server-side scaling this experiment probes.
async fn drive_fleet(
    cluster: &SimCluster,
    fleet: &[Arc<PipelinedClient>; 3],
    interval_vns: u64,
    ops_per_client: u64,
    salt: u64,
) -> (f64, f64) {
    let w = || Workload::uniform_writes(100_000);
    let (a, b, c) = tokio::join!(
        cluster.run_open_loop_on(&fleet[0], interval_vns, ops_per_client, w(), salt),
        cluster.run_open_loop_on(&fleet[1], interval_vns, ops_per_client, w(), salt ^ 0x51),
        cluster.run_open_loop_on(&fleet[2], interval_vns, ops_per_client, w(), salt ^ 0xA3),
    );
    let mut completed = 0u64;
    let mut elapsed = Duration::ZERO;
    let mut p99_us = 0.0f64;
    for mut r in [a, b, c] {
        assert_eq!(r.failed, 0, "fleet phase (salt {salt}) dropped ops");
        completed += r.completed;
        elapsed = elapsed.max(r.elapsed);
        p99_us = p99_us.max(r.latency.quantile_ns(0.99) as f64 / 1_000.0);
    }
    // The three clients start together, so aggregate throughput is total
    // completions over the slowest client's span.
    (completed as f64 / elapsed.as_secs_f64(), p99_us)
}

/// One increment through the shared pipelined client, recorded for the
/// Wing–Gong checker. An errored op's outcome is unknown — it may or may
/// not have executed — so it is recorded as pending (`ret == u64::MAX`),
/// which the checker may linearize or drop.
async fn lane_incr(
    pipe: &Arc<PipelinedClient>,
    epoch: tokio::time::Instant,
    key: &str,
) -> HistoryEvent {
    // Under the sim's scaled clock (1 virtual ns = 1 tokio ms), `as_millis`
    // yields virtual nanoseconds.
    let invoke = epoch.elapsed().as_millis() as u64;
    let done = pipe.update(Op::Incr { key: Bytes::from(key.to_owned()), delta: 1 }).await;
    let ret = epoch.elapsed().as_millis() as u64;
    match done {
        Ok(OpResult::Counter(v)) => {
            HistoryEvent { key: Bytes::from(key.to_owned()), op: HistOp::Incr(1, v), invoke, ret }
        }
        Ok(other) => panic!("unexpected incr result {other:?}"),
        Err(_) => HistoryEvent {
            key: Bytes::from(key.to_owned()),
            op: HistOp::Incr(1, 0),
            invoke,
            ret: u64::MAX,
        },
    }
}

#[test]
fn scaleout_ramp() {
    run_sim(async {
        let mut params = RamcloudParams::new(3);
        // A ramp from 1 to 4 partitions consumes three spares.
        params.spares = 3;
        // Scale-out splits masters but the f replica servers stay shared by
        // every partition (Figure 2 co-hosting), so each witness still sees
        // every update's record: at the default 300 ns replica dispatch the
        // *witnesses* would cap the cluster near 2x one master and mask the
        // master scaling this experiment probes. Model the replica block on
        // faster NICs so masters stay the bottleneck in every phase.
        params.server_dispatch_ns = 100;
        let cluster = SimCluster::build(Mode::Curp, params).await;
        assert_eq!(cluster.coord.config().partitions.len(), 1);
        let version_at_start = cluster.coord.config().version;

        // The lane client survives the whole ramp; the load fleet are three
        // more machines. Deep windows keep enough ops in flight that the
        // *servers* are the bottleneck in every phase — a shallow window
        // would cap the measurement at window/latency and hide the
        // scale-out.
        let pcfg = PipelineConfig { window: 64, max_batch: 16 };
        let pipe = cluster.pipelined_client(0, pcfg.clone()).await;
        let fleet = [
            cluster.pipelined_client(1, pcfg.clone()).await,
            cluster.pipelined_client(2, pcfg.clone()).await,
            cluster.pipelined_client(3, pcfg).await,
        ];

        // Phase 1: the single-partition plateau. 600 virtual ns between
        // arrivals per client (~5M ops/s offered in aggregate) is far past
        // one master's capacity, so completions/elapsed is capacity-bound,
        // not schedule-bound.
        let (plateau, base_p99_us) = drive_fleet(&cluster, &fleet, 600, 400, 1).await;

        // The checker lane starts before the autoscaler so its increments
        // span every migration the ramp triggers.
        let epoch = tokio::time::Instant::now();
        let stop = Arc::new(AtomicBool::new(false));
        let lane = {
            let pipe = Arc::clone(&pipe);
            let stop = Arc::clone(&stop);
            tokio::spawn(async move {
                let mut hist = Vec::new();
                // At least 40 increments (10 per key) regardless of how fast
                // the ramp converges, at most 180 (per-key histories must
                // stay within the checker's 63-op window).
                for i in 0..180u64 {
                    if i >= 40 && stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let key = LANE_KEYS[(i % LANE_KEYS.len() as u64) as usize];
                    hist.push(lane_incr(&pipe, epoch, key).await);
                    tokio::time::sleep(vus(3)).await;
                }
                hist
            })
        };

        // Phase 2: the autoscaler watches per-partition LoadStats and
        // splits the hottest saturated partition at its hotkey-mass median.
        let autoscaler = Autoscaler::new(
            Arc::clone(&cluster.coord),
            AutoscaleConfig {
                poll_interval: vus(30),
                saturation_pending: 4,
                min_update_delta: 24,
                max_partitions: 4,
                cooldown: vus(60),
            },
        )
        .run();
        let mut bursts = 0u64;
        while cluster.coord.config().partitions.len() < 4 {
            assert!(bursts < 8, "autoscaler never reached 4 partitions (burst {bursts})");
            drive_fleet(&cluster, &fleet, 250, 400, 100 + bursts * 3).await;
            bursts += 1;
        }
        autoscaler.shutdown();
        for e in autoscaler.tick_errors() {
            // Advisory (an unreachable master mid-split attempt is normal
            // under load); a poisoned tick must not have killed the loop,
            // which reaching 4 partitions above already proves.
            eprintln!("autoscaler tick error: {e}");
        }
        let config = cluster.coord.config();
        assert!(config.partitions.len() >= 4, "expected >= 4 partitions");
        assert!(
            config.version >= version_at_start + 3,
            "each split must publish a strictly newer map ({} -> {})",
            version_at_start,
            config.version
        );

        // Wind down the checker lane and close each counter's history with
        // a read — the observed sums must linearize against every increment
        // issued across the migrations.
        stop.store(true, Ordering::Relaxed);
        let mut history = lane.await.expect("checker lane");
        assert!(
            history.iter().filter(|e| !e.is_pending()).count() >= LANE_KEYS.len() * 2,
            "checker lane too sparse to mean anything"
        );
        for key in LANE_KEYS {
            let invoke = epoch.elapsed().as_millis() as u64;
            let got = pipe.update(Op::Get { key: Bytes::from(key) }).await.expect("final read");
            let OpResult::Value(v) = got else { panic!("unexpected get result {got:?}") };
            let ret = epoch.elapsed().as_millis() as u64;
            history.push(HistoryEvent { key: Bytes::from(key), op: HistOp::Get(v), invoke, ret });
        }
        let bad = failing_keys_detailed(&history);
        assert!(bad.is_empty(), "history not linearizable across migrations:\n{}", {
            bad.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("\n")
        });

        // Phase 3: the same offered load against the scaled cluster must
        // sustain at least twice the single-partition plateau, at a p99 no
        // worse than the saturated single-partition phase.
        let (sustained, scaled_p99_us) = drive_fleet(&cluster, &fleet, 600, 400, 2).await;
        assert!(
            sustained >= 2.0 * plateau,
            "scale-out gained only {:.2}x ({:.0} -> {:.0} ops/s across {} partitions)",
            sustained / plateau,
            plateau,
            sustained,
            config.partitions.len(),
        );
        assert!(
            scaled_p99_us <= base_p99_us,
            "p99 regressed across scale-out: {base_p99_us:.1} µs -> {scaled_p99_us:.1} µs"
        );

        // The load-weighted split points must have produced a balanced
        // map: account the uniform key stream against the final partition
        // boundaries and check no partition is starved or doubly hot.
        let ledger =
            PartitionLoadLedger::new(config.partitions.iter().map(|p| p.range.start).collect());
        let mut workload = Workload::uniform_writes(100_000);
        let mut rng = StdRng::seed_from_u64(0x10AD);
        for _ in 0..2_000 {
            let (WorkloadOp::Update { key, .. } | WorkloadOp::Read { key }) =
                workload.next_op(&mut rng);
            let h = KeyHash::of(&key);
            // The ledger's boundary arithmetic must agree with the
            // cluster map's owner resolution for every key.
            let owner = config.partition_for(h).expect("every hash has an owner");
            let p = ledger.issue(h.0);
            assert_eq!(ledger.snapshot()[p].start, owner.range.start, "ledger/map disagree");
        }
        let snap = ledger.snapshot();
        for (i, part) in snap.iter().enumerate() {
            assert!(
                part.share(ledger.total_issued()) >= 0.05,
                "partition {i} starved after the ramp: {snap:?}"
            );
        }
        assert!(ledger.imbalance() <= 2.5, "split points left the map skewed: {snap:?}");
    });
}
