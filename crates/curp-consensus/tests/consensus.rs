//! End-to-end tests of the §A.2 consensus extension on the simulated
//! network: elections, speculative fast path, superquorum recovery across
//! leader crashes, and zombie-leader fencing.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use curp_consensus::client::ConsensusClient;
use curp_consensus::msg::{unwrap_reply, wrap_rpc, ConsensusReply, ConsensusRpc};
use curp_consensus::replica::{Replica, ReplicaConfig, ReplicaHandler};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{ClientId, ServerId};
use curp_transport::MemNetwork;

struct Group {
    net: MemNetwork,
    replicas: Vec<Arc<Replica>>,
    ids: Vec<ServerId>,
}

impl Group {
    fn new(n: usize, seed: u64) -> Group {
        let net = MemNetwork::new(seed);
        net.set_rpc_timeout(Duration::from_millis(50));
        let ids: Vec<ServerId> = (1..=n as u64).map(ServerId).collect();
        let mut replicas = Vec::new();
        for &id in &ids {
            let peers: Vec<ServerId> = ids.iter().copied().filter(|&p| p != id).collect();
            let cfg = ReplicaConfig { seed, ..ReplicaConfig::default() };
            let replica = Replica::spawn(id, peers, cfg, net.client(id));
            net.add_simple_server(id, Arc::new(ReplicaHandler(Arc::clone(&replica))));
            replicas.push(replica);
        }
        Group { net, replicas, ids }
    }

    async fn await_leader(&self) -> (usize, ServerId) {
        for _ in 0..200 {
            tokio::time::sleep(Duration::from_millis(50)).await;
            let leaders: Vec<usize> = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.status().1 && !self.net.is_crashed(r.id()))
                .map(|(i, _)| i)
                .collect();
            if leaders.len() == 1 {
                return (leaders[0], self.replicas[leaders[0]].id());
            }
        }
        panic!("no stable leader elected");
    }

    fn client(&self, id: u64) -> ConsensusClient {
        ConsensusClient::new(self.net.client(ServerId(900 + id)), self.ids.clone(), ClientId(id))
    }

    /// Cuts a replica off in both directions (crash-equivalent for tests:
    /// the local task keeps running but cannot talk to anyone).
    fn isolate(&self, id: ServerId) {
        self.net.crash(id); // inbound
        for &other in &self.ids {
            if other != id {
                self.net.partition(id, other); // outbound
            }
        }
        self.net.partition(id, ServerId(901)); // clients
        self.net.partition(id, ServerId(902));
    }
}

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

#[tokio::test(start_paused = true)]
async fn three_replicas_elect_one_leader() {
    let group = Group::new(3, 1);
    let (_, leader) = group.await_leader().await;
    // Every replica agrees on the leader.
    tokio::time::sleep(Duration::from_millis(200)).await;
    for r in &group.replicas {
        let (_, _, hint) = r.status();
        assert_eq!(hint, Some(leader));
    }
}

#[tokio::test(start_paused = true)]
async fn commands_execute_and_read_back() {
    let group = Group::new(3, 2);
    group.await_leader().await;
    let client = group.client(1);
    let r = client.update(Op::Put { key: b("k"), value: b("v") }).await.unwrap();
    assert_eq!(r, OpResult::Written { version: 1 });
    let r = client.read(Op::Get { key: b("k") }).await.unwrap();
    assert_eq!(r, OpResult::Value(Some(b("v"))));
}

#[tokio::test(start_paused = true)]
async fn commutative_commands_take_the_fast_path() {
    let group = Group::new(5, 3);
    group.await_leader().await;
    let client = group.client(1);
    for i in 0..10 {
        client.update(Op::Put { key: b(&format!("k{i}")), value: b("v") }).await.unwrap();
    }
    let fast = client.stats.fast_path.load(std::sync::atomic::Ordering::Relaxed);
    assert!(fast >= 8, "expected mostly 1-RTT completions, got {fast}/10");
}

#[tokio::test(start_paused = true)]
async fn conflicting_commands_commit_before_responding() {
    let group = Group::new(3, 4);
    group.await_leader().await;
    let client = group.client(1);
    client.update(Op::Put { key: b("x"), value: b("1") }).await.unwrap();
    // Immediate second write to x conflicts with the (possibly uncommitted)
    // first; the leader must commit before answering.
    client.update(Op::Put { key: b("x"), value: b("2") }).await.unwrap();
    assert_eq!(client.read(Op::Get { key: b("x") }).await.unwrap(), OpResult::Value(Some(b("2"))));
}

#[tokio::test(start_paused = true)]
async fn fast_path_write_survives_leader_crash() {
    // The headline §A.2 property: a 1-RTT completed update outlives the
    // leader because a superquorum of witnesses holds it.
    let group = Group::new(5, 5);
    let (leader_idx, leader_id) = group.await_leader().await;
    let client = group.client(1);
    let r = client.update(Op::Incr { key: b("ctr"), delta: 7 }).await.unwrap();
    assert_eq!(r, OpResult::Counter(7));
    assert_eq!(
        client.stats.fast_path.load(std::sync::atomic::Ordering::Relaxed),
        1,
        "precondition: the write completed on the fast path"
    );
    // Kill the leader immediately — before its heartbeat interval can
    // replicate the entry.
    group.isolate(leader_id);
    let _ = leader_idx;

    // A new leader emerges and must recover the write from witnesses.
    group.await_leader().await;
    let client2 = group.client(2);
    let r = client2.read(Op::Get { key: b("ctr") }).await.unwrap();
    assert_eq!(r, OpResult::Value(Some(b("7"))), "completed write lost by recovery");
    // Exactly-once: retrying the same increment (same client, same rpc) must
    // not double-apply. The original client retries transparently.
    let r = client.update(Op::Incr { key: b("ctr"), delta: 7 }).await.unwrap();
    assert_eq!(r, OpResult::Counter(14), "new increment applies once on top of 7");
}

#[tokio::test(start_paused = true)]
async fn stale_term_records_are_rejected() {
    let group = Group::new(3, 6);
    let (_, leader) = group.await_leader().await;
    let (term, _, _) = group.replicas[0].status();
    let raw = group.net.client(ServerId(950));
    let request = curp_proto::message::RecordedRequest {
        master_id: curp_proto::types::MasterId(0),
        rpc_id: curp_proto::types::RpcId::new(ClientId(9), 1),
        key_hashes: Op::Put { key: b("z"), value: b("1") }.key_hashes(),
        op: Op::Put { key: b("z"), value: b("1") },
    };
    // A record tagged with an old term must be rejected (§A.2 zombies).
    let rsp = raw
        .call(
            leader,
            wrap_rpc(&ConsensusRpc::WitnessRecord {
                term: term.saturating_sub(1),
                request: request.clone(),
            }),
        )
        .await
        .unwrap();
    assert_eq!(unwrap_reply(&rsp), Some(ConsensusReply::RecordRejected));
    // The current term is accepted.
    let rsp =
        raw.call(leader, wrap_rpc(&ConsensusRpc::WitnessRecord { term, request })).await.unwrap();
    assert_eq!(unwrap_reply(&rsp), Some(ConsensusReply::RecordAccepted));
}

#[tokio::test(start_paused = true)]
async fn deposed_leader_discards_speculative_state() {
    let group = Group::new(3, 7);
    let (_, leader_id) = group.await_leader().await;
    let client = group.client(1);
    client.update(Op::Put { key: b("a"), value: b("1") }).await.unwrap();

    println!("phase-1: first write done");
    // Partition the leader away; a new leader takes over and accepts writes.
    group.isolate(leader_id);
    group.await_leader().await;
    println!("phase-2: new leader elected");
    let client2 = group.client(2);
    client2.update(Op::Put { key: b("a"), value: b("2") }).await.unwrap();
    println!("phase-3: second write done");

    // Heal the old leader; it must step down and converge on the new value.
    group.net.restart(leader_id);
    for &other in &group.ids {
        if other != leader_id {
            group.net.heal(leader_id, other);
        }
    }
    group.net.heal(leader_id, ServerId(901));
    group.net.heal(leader_id, ServerId(902));
    println!("phase-4: healed");
    tokio::time::sleep(Duration::from_millis(2_000)).await;
    println!("phase-5: settled");
    let old = group.replicas.iter().find(|r| r.id() == leader_id).unwrap();
    let (_, is_leader, _) = old.status();
    assert!(!is_leader, "deposed leader must have stepped down");
    assert_eq!(client2.read(Op::Get { key: b("a") }).await.unwrap(), OpResult::Value(Some(b("2"))));
}

#[tokio::test(start_paused = true)]
async fn group_makes_progress_with_f_failures() {
    let group = Group::new(5, 8);
    let (_, leader) = group.await_leader().await;
    // Kill two non-leader replicas (f = 2).
    let mut killed = 0;
    for r in &group.replicas {
        if r.id() != leader && killed < 2 {
            group.isolate(r.id());
            killed += 1;
        }
    }
    let client = group.client(1);
    // 1-RTT is impossible (superquorum = 4 > 3 live), but updates still
    // complete via the commit path.
    let r = client.update(Op::Put { key: b("k"), value: b("v") }).await.unwrap();
    assert_eq!(r, OpResult::Written { version: 1 });
    assert_eq!(client.stats.fast_path.load(std::sync::atomic::Ordering::Relaxed), 0);
    assert_eq!(client.read(Op::Get { key: b("k") }).await.unwrap(), OpResult::Value(Some(b("v"))));
}

/// A follower that missed several appends is repaired by the leader's
/// nextIndex backoff; its log converges and commits apply in order.
#[tokio::test(start_paused = true)]
async fn lagging_follower_log_is_repaired() {
    let group = Group::new(3, 9);
    let (_, leader) = group.await_leader().await;
    let laggard = group.ids.iter().copied().find(|&id| id != leader).unwrap();
    // Cut the laggard off and commit a batch of entries without it.
    group.net.crash(laggard);
    for &other in &group.ids {
        if other != laggard {
            group.net.partition(laggard, other);
        }
    }
    let client = group.client(1);
    for i in 0..8 {
        client.update(Op::Put { key: b(&format!("rep-{i}")), value: b("v") }).await.unwrap();
    }
    client.update(Op::Put { key: b("rep-0"), value: b("v2") }).await.unwrap(); // forces commit
                                                                               // Heal: heartbeats discover the gap and walk nextIndex back.
    group.net.restart(laggard);
    for &other in &group.ids {
        if other != laggard {
            group.net.heal(laggard, other);
        }
    }
    tokio::time::sleep(Duration::from_millis(2_000)).await;
    let lag_replica = group.replicas.iter().find(|r| r.id() == laggard).unwrap();
    let leader_replica = group.replicas.iter().find(|r| r.id() == leader).unwrap();
    assert!(
        lag_replica.commit_index() >= leader_replica.commit_index().saturating_sub(1),
        "laggard commit {} never caught up to leader {}",
        lag_replica.commit_index(),
        leader_replica.commit_index()
    );
}

/// Witness slots on every replica are garbage-collected as entries commit,
/// so the embedded caches do not fill up under sustained load.
#[tokio::test(start_paused = true)]
async fn witness_slots_are_gced_on_commit() {
    let group = Group::new(3, 10);
    group.await_leader().await;
    let client = group.client(1);
    for i in 0..200 {
        client.update(Op::Put { key: b(&format!("gc-{i}")), value: b("v") }).await.unwrap();
    }
    // Force everything to commit, then give heartbeats a moment to spread
    // the commit index.
    client.update(Op::Put { key: b("gc-0"), value: b("v2") }).await.unwrap();
    tokio::time::sleep(Duration::from_millis(1_000)).await;
    // If gc were broken, 200 distinct keys would occupy 200 slots; after
    // commit-driven gc only the uncommitted tail may remain.
    // (We can't reach into the witness cache from here; instead assert the
    // cluster still accepts 200 MORE distinct fast-path writes, which would
    // exhaust a 4096-slot/4-way cache eventually if nothing were freed —
    // and, more directly, that commit indexes advanced past all entries.)
    for r in &group.replicas {
        assert!(r.commit_index() >= 200, "commit stalled at {}", r.commit_index());
    }
    for i in 200..400 {
        client.update(Op::Put { key: b(&format!("gc-{i}")), value: b("v") }).await.unwrap();
    }
}
