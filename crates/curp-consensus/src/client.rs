//! The consensus client (§A.2): 1-RTT updates via superquorum witness
//! recording in parallel with the leader command.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use curp_proto::lockrank;
use curp_proto::message::RecordedRequest;
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{ClientId, MasterId, ServerId};
use curp_rifl::RiflSequencer;
use curp_transport::rpc::RpcClient;
use parking_lot::Mutex;

use crate::msg::{unwrap_reply, wrap_rpc, ConsensusReply, ConsensusRpc};

/// Path counters.
#[derive(Debug, Default)]
pub struct ConsensusClientStats {
    /// Updates completed in 1 RTT (speculative + superquorum).
    pub fast_path: AtomicU64,
    /// Updates completed because the leader committed synchronously.
    pub committed_path: AtomicU64,
    /// Updates that needed an explicit sync.
    pub explicit_sync: AtomicU64,
}

/// Client errors.
#[derive(Debug)]
pub enum ConsensusError {
    /// Gave up after too many attempts.
    Exhausted(String),
}

impl std::fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsensusError::Exhausted(s) => write!(f, "retries exhausted: {s}"),
        }
    }
}

impl std::error::Error for ConsensusError {}

/// A CURP-consensus client.
pub struct ConsensusClient {
    rpc: Arc<dyn RpcClient>,
    replicas: Vec<ServerId>,
    rifl: Mutex<RiflSequencer>,
    leader_cache: Mutex<Option<(u64, ServerId)>>,
    max_retries: u32,
    retry_backoff: Duration,
    /// Path statistics.
    pub stats: ConsensusClientStats,
}

impl ConsensusClient {
    /// Creates a client over `replicas` (all `2f + 1` of them) with a unique
    /// `client_id` (assigned out of band — the consensus group itself plays
    /// the role of the lease server in a full deployment).
    pub fn new(rpc: Arc<dyn RpcClient>, replicas: Vec<ServerId>, client_id: ClientId) -> Self {
        ConsensusClient {
            rpc,
            replicas,
            rifl: Mutex::ranked(
                lockrank::CONSENSUS_CLIENT_RIFL,
                "consensus.client.rifl",
                RiflSequencer::new(client_id),
            ),
            leader_cache: Mutex::ranked(
                lockrank::CONSENSUS_LEADER_CACHE,
                "consensus.client.leader_cache",
                None,
            ),
            max_retries: 60,
            retry_backoff: Duration::from_millis(20),
            stats: ConsensusClientStats::default(),
        }
    }

    /// `f` for this group (`2f + 1` replicas).
    fn f(&self) -> usize {
        (self.replicas.len() - 1) / 2
    }

    /// The §A.2 superquorum: `f + ⌈f/2⌉ + 1`.
    pub fn superquorum(&self) -> usize {
        let f = self.f();
        f + f.div_ceil(2) + 1
    }

    async fn discover_leader(&self) -> Option<(u64, ServerId)> {
        if let Some(cached) = *self.leader_cache.lock() {
            return Some(cached);
        }
        for &r in &self.replicas {
            if let Ok(rsp) = self.rpc.call(r, wrap_rpc(&ConsensusRpc::WhoLeads)).await {
                if let Some(ConsensusReply::Leader { term, leader: Some(l) }) = unwrap_reply(&rsp) {
                    let found = (term, l);
                    *self.leader_cache.lock() = Some(found);
                    return Some(found);
                }
            }
        }
        None
    }

    fn forget_leader(&self) {
        *self.leader_cache.lock() = None;
    }

    /// Executes a mutation. Durable in the consensus group when it returns.
    pub async fn update(&self, op: Op) -> Result<OpResult, ConsensusError> {
        let rpc_id = self.rifl.lock().next_rpc_id();
        // Once per RPC, reused across retries (DESIGN.md invariant 1).
        let footprint = op.key_hashes();
        let mut last_err = String::new();
        for attempt in 0..self.max_retries {
            if attempt > 0 {
                tokio::time::sleep(self.retry_backoff).await;
            }
            let Some((term, leader)) = self.discover_leader().await else {
                last_err = "no leader".into();
                continue;
            };
            // Leader command + witness records to ALL replicas, in parallel.
            let cmd_fut =
                self.rpc.call(leader, wrap_rpc(&ConsensusRpc::Command { rpc_id, op: op.clone() }));
            let record = RecordedRequest {
                master_id: MasterId(0), // single group; unused in consensus mode
                rpc_id,
                key_hashes: footprint.clone(),
                op: op.clone(),
            };
            let record_futs: Vec<_> = self
                .replicas
                .iter()
                .map(|&r| {
                    self.rpc.call(
                        r,
                        wrap_rpc(&ConsensusRpc::WitnessRecord { term, request: record.clone() }),
                    )
                })
                .collect();
            let (cmd_rsp, rec_rsps) = tokio::join!(cmd_fut, join_all(record_futs));

            let accepted = rec_rsps
                .iter()
                .filter(|r| {
                    matches!(
                        r.as_ref().ok().and_then(unwrap_reply),
                        Some(ConsensusReply::RecordAccepted)
                    )
                })
                .count();

            match cmd_rsp.as_ref().ok().and_then(unwrap_reply) {
                Some(ConsensusReply::Committed { result }) => {
                    self.stats.committed_path.fetch_add(1, Ordering::Relaxed);
                    self.rifl.lock().complete(rpc_id);
                    return Ok(result);
                }
                Some(ConsensusReply::Speculative { result }) => {
                    if accepted >= self.superquorum() {
                        self.stats.fast_path.fetch_add(1, Ordering::Relaxed);
                        self.rifl.lock().complete(rpc_id);
                        return Ok(result);
                    }
                    // Slow path: force a commit.
                    self.stats.explicit_sync.fetch_add(1, Ordering::Relaxed);
                    match self
                        .rpc
                        .call(leader, wrap_rpc(&ConsensusRpc::Sync))
                        .await
                        .as_ref()
                        .ok()
                        .and_then(unwrap_reply)
                    {
                        Some(ConsensusReply::SyncDone) => {
                            self.rifl.lock().complete(rpc_id);
                            return Ok(result);
                        }
                        other => {
                            last_err = format!("sync failed: {other:?}");
                            self.forget_leader();
                        }
                    }
                }
                Some(ConsensusReply::NotLeader { hint }) => {
                    last_err = "not leader".into();
                    *self.leader_cache.lock() = hint.map(|h| (term, h));
                    if hint.is_none() {
                        self.forget_leader();
                    }
                }
                other => {
                    last_err = format!("command failed: {other:?}");
                    self.forget_leader();
                }
            }
        }
        Err(ConsensusError::Exhausted(last_err))
    }

    /// Executes a read at the leader.
    pub async fn read(&self, op: Op) -> Result<OpResult, ConsensusError> {
        assert!(op.is_read_only());
        let mut last_err = String::new();
        for attempt in 0..self.max_retries {
            if attempt > 0 {
                tokio::time::sleep(self.retry_backoff).await;
            }
            let Some((_, leader)) = self.discover_leader().await else {
                last_err = "no leader".into();
                continue;
            };
            match self
                .rpc
                .call(leader, wrap_rpc(&ConsensusRpc::Read { op: op.clone() }))
                .await
                .as_ref()
                .ok()
                .and_then(unwrap_reply)
            {
                Some(ConsensusReply::ReadResult { result }) => return Ok(result),
                other => {
                    last_err = format!("read failed: {other:?}");
                    self.forget_leader();
                }
            }
        }
        Err(ConsensusError::Exhausted(last_err))
    }
}

async fn join_all<F, T>(futs: Vec<F>) -> Vec<T>
where
    F: std::future::Future<Output = T> + Send + 'static,
    T: Send + 'static,
{
    let handles: Vec<_> = futs.into_iter().map(tokio::spawn).collect();
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await.expect("task panicked"));
    }
    out
}
