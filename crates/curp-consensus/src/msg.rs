//! Consensus message types, tunneled through
//! [`Request::Consensus`](curp_proto::message::Request::Consensus).

use bytes::{Buf, BufMut};
use curp_proto::message::RecordedRequest;
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{RpcId, ServerId};
use curp_proto::wire::{
    decode_seq, encode_seq, need, seq_encoded_len, Decode, DecodeError, Encode,
};

/// One replicated log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaftEntry {
    /// Term in which the entry was appended.
    pub term: u64,
    /// Log index (1-based).
    pub index: u64,
    /// RIFL id of the client command (None for internal no-ops).
    pub rpc_id: Option<RpcId>,
    /// The command.
    pub op: Op,
}

impl Encode for RaftEntry {
    fn encode(&self, buf: &mut impl BufMut) {
        self.term.encode(buf);
        self.index.encode(buf);
        self.rpc_id.encode(buf);
        self.op.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        16 + self.rpc_id.encoded_len() + self.op.encoded_len()
    }
}

impl Decode for RaftEntry {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(RaftEntry {
            term: u64::decode(buf)?,
            index: u64::decode(buf)?,
            rpc_id: Option::<RpcId>::decode(buf)?,
            op: Op::decode(buf)?,
        })
    }
}

/// Consensus requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsensusRpc {
    /// Raft RequestVote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// The candidate.
        candidate: ServerId,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// Raft AppendEntries (also the heartbeat).
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// The leader.
        leader: ServerId,
        /// Index of the entry preceding `entries`.
        prev_index: u64,
        /// Term of that entry.
        prev_term: u64,
        /// New entries (empty for heartbeats).
        entries: Vec<RaftEntry>,
        /// Leader's commit index.
        commit: u64,
    },
    /// Client command (update) to the leader.
    Command {
        /// RIFL id.
        rpc_id: RpcId,
        /// The mutation.
        op: Op,
    },
    /// Client read-only command to the leader.
    Read {
        /// The read.
        op: Op,
    },
    /// Client asks the leader to commit everything (the 2-RTT slow path).
    Sync,
    /// Term-tagged witness record (§A.2): the witness component of a replica
    /// accepts iff `term` matches its replica's current term and the request
    /// commutes with everything it holds.
    WitnessRecord {
        /// The client's view of the current term.
        term: u64,
        /// The request to save.
        request: RecordedRequest,
    },
    /// New leader collects witness contents during leadership change.
    WitnessCollect,
    /// Asks a replica who it thinks leads (client bootstrap).
    WhoLeads,
}

/// Consensus replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsensusReply {
    /// RequestVote reply.
    Vote {
        /// Voter's term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// AppendEntries reply.
    Appended {
        /// Follower's term.
        term: u64,
        /// Success (log matched at `prev`).
        ok: bool,
        /// Follower's last matching index (for nextIndex repair).
        match_index: u64,
    },
    /// Command executed speculatively (not yet committed).
    Speculative {
        /// Execution result.
        result: OpResult,
    },
    /// Command executed and committed (durable in a majority).
    Committed {
        /// Execution result.
        result: OpResult,
    },
    /// Read result (leader serves reads locally; a read touching an
    /// uncommitted entry forces a commit first, like §3.2.3).
    ReadResult {
        /// The value.
        result: OpResult,
    },
    /// Everything the leader had is committed.
    SyncDone,
    /// This replica is not the leader.
    NotLeader {
        /// Best-known leader, if any.
        hint: Option<ServerId>,
    },
    /// Witness record accepted.
    RecordAccepted,
    /// Witness record rejected (stale term, conflict, or no space).
    RecordRejected,
    /// Witness contents for leadership change.
    WitnessData {
        /// Everything the witness holds.
        requests: Vec<RecordedRequest>,
    },
    /// Leader identity answer.
    Leader {
        /// Current term.
        term: u64,
        /// Best-known leader.
        leader: Option<ServerId>,
    },
    /// Retriable failure.
    Busy {
        /// Reason.
        reason: String,
    },
}

macro_rules! tags {
    ($($name:ident = $val:expr,)*) => {
        $(const $name: u8 = $val;)*
    };
}

tags! {
    RPC_VOTE = 0,
    RPC_APPEND = 1,
    RPC_COMMAND = 2,
    RPC_READ = 3,
    RPC_SYNC = 4,
    RPC_W_RECORD = 5,
    RPC_W_COLLECT = 6,
    RPC_WHO = 7,
}

impl Encode for ConsensusRpc {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            ConsensusRpc::RequestVote { term, candidate, last_log_index, last_log_term } => {
                buf.put_u8(RPC_VOTE);
                term.encode(buf);
                candidate.encode(buf);
                last_log_index.encode(buf);
                last_log_term.encode(buf);
            }
            ConsensusRpc::AppendEntries {
                term,
                leader,
                prev_index,
                prev_term,
                entries,
                commit,
            } => {
                buf.put_u8(RPC_APPEND);
                term.encode(buf);
                leader.encode(buf);
                prev_index.encode(buf);
                prev_term.encode(buf);
                encode_seq(entries, buf);
                commit.encode(buf);
            }
            ConsensusRpc::Command { rpc_id, op } => {
                buf.put_u8(RPC_COMMAND);
                rpc_id.encode(buf);
                op.encode(buf);
            }
            ConsensusRpc::Read { op } => {
                buf.put_u8(RPC_READ);
                op.encode(buf);
            }
            ConsensusRpc::Sync => buf.put_u8(RPC_SYNC),
            ConsensusRpc::WitnessRecord { term, request } => {
                buf.put_u8(RPC_W_RECORD);
                term.encode(buf);
                request.encode(buf);
            }
            ConsensusRpc::WitnessCollect => buf.put_u8(RPC_W_COLLECT),
            ConsensusRpc::WhoLeads => buf.put_u8(RPC_WHO),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            ConsensusRpc::RequestVote { .. } => 32,
            ConsensusRpc::AppendEntries { entries, .. } => 40 + seq_encoded_len(entries),
            ConsensusRpc::Command { rpc_id, op } => rpc_id.encoded_len() + op.encoded_len(),
            ConsensusRpc::Read { op } => op.encoded_len(),
            ConsensusRpc::Sync | ConsensusRpc::WitnessCollect | ConsensusRpc::WhoLeads => 0,
            ConsensusRpc::WitnessRecord { request, .. } => 8 + request.encoded_len(),
        }
    }
}

impl Decode for ConsensusRpc {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(buf, 1)?;
        let tag = buf.get_u8();
        Ok(match tag {
            RPC_VOTE => ConsensusRpc::RequestVote {
                term: u64::decode(buf)?,
                candidate: ServerId::decode(buf)?,
                last_log_index: u64::decode(buf)?,
                last_log_term: u64::decode(buf)?,
            },
            RPC_APPEND => ConsensusRpc::AppendEntries {
                term: u64::decode(buf)?,
                leader: ServerId::decode(buf)?,
                prev_index: u64::decode(buf)?,
                prev_term: u64::decode(buf)?,
                entries: decode_seq(buf)?,
                commit: u64::decode(buf)?,
            },
            RPC_COMMAND => {
                ConsensusRpc::Command { rpc_id: RpcId::decode(buf)?, op: Op::decode(buf)? }
            }
            RPC_READ => ConsensusRpc::Read { op: Op::decode(buf)? },
            RPC_SYNC => ConsensusRpc::Sync,
            RPC_W_RECORD => ConsensusRpc::WitnessRecord {
                term: u64::decode(buf)?,
                request: RecordedRequest::decode(buf)?,
            },
            RPC_W_COLLECT => ConsensusRpc::WitnessCollect,
            RPC_WHO => ConsensusRpc::WhoLeads,
            tag => return Err(DecodeError::InvalidTag { ty: "ConsensusRpc", tag }),
        })
    }
}

tags! {
    RPL_VOTE = 0,
    RPL_APPENDED = 1,
    RPL_SPEC = 2,
    RPL_COMMITTED = 3,
    RPL_READ = 4,
    RPL_SYNC_DONE = 5,
    RPL_NOT_LEADER = 6,
    RPL_REC_OK = 7,
    RPL_REC_NO = 8,
    RPL_W_DATA = 9,
    RPL_LEADER = 10,
    RPL_BUSY = 11,
}

impl Encode for ConsensusReply {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            ConsensusReply::Vote { term, granted } => {
                buf.put_u8(RPL_VOTE);
                term.encode(buf);
                granted.encode(buf);
            }
            ConsensusReply::Appended { term, ok, match_index } => {
                buf.put_u8(RPL_APPENDED);
                term.encode(buf);
                ok.encode(buf);
                match_index.encode(buf);
            }
            ConsensusReply::Speculative { result } => {
                buf.put_u8(RPL_SPEC);
                result.encode(buf);
            }
            ConsensusReply::Committed { result } => {
                buf.put_u8(RPL_COMMITTED);
                result.encode(buf);
            }
            ConsensusReply::ReadResult { result } => {
                buf.put_u8(RPL_READ);
                result.encode(buf);
            }
            ConsensusReply::SyncDone => buf.put_u8(RPL_SYNC_DONE),
            ConsensusReply::NotLeader { hint } => {
                buf.put_u8(RPL_NOT_LEADER);
                hint.encode(buf);
            }
            ConsensusReply::RecordAccepted => buf.put_u8(RPL_REC_OK),
            ConsensusReply::RecordRejected => buf.put_u8(RPL_REC_NO),
            ConsensusReply::WitnessData { requests } => {
                buf.put_u8(RPL_W_DATA);
                encode_seq(requests, buf);
            }
            ConsensusReply::Leader { term, leader } => {
                buf.put_u8(RPL_LEADER);
                term.encode(buf);
                leader.encode(buf);
            }
            ConsensusReply::Busy { reason } => {
                buf.put_u8(RPL_BUSY);
                reason.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            ConsensusReply::Vote { .. } => 9,
            ConsensusReply::Appended { .. } => 17,
            ConsensusReply::Speculative { result }
            | ConsensusReply::Committed { result }
            | ConsensusReply::ReadResult { result } => result.encoded_len(),
            ConsensusReply::SyncDone
            | ConsensusReply::RecordAccepted
            | ConsensusReply::RecordRejected => 0,
            ConsensusReply::NotLeader { hint } => hint.encoded_len(),
            ConsensusReply::WitnessData { requests } => seq_encoded_len(requests),
            ConsensusReply::Leader { term, leader } => term.encoded_len() + leader.encoded_len(),
            ConsensusReply::Busy { reason } => reason.encoded_len(),
        }
    }
}

impl Decode for ConsensusReply {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(buf, 1)?;
        let tag = buf.get_u8();
        Ok(match tag {
            RPL_VOTE => {
                ConsensusReply::Vote { term: u64::decode(buf)?, granted: bool::decode(buf)? }
            }
            RPL_APPENDED => ConsensusReply::Appended {
                term: u64::decode(buf)?,
                ok: bool::decode(buf)?,
                match_index: u64::decode(buf)?,
            },
            RPL_SPEC => ConsensusReply::Speculative { result: OpResult::decode(buf)? },
            RPL_COMMITTED => ConsensusReply::Committed { result: OpResult::decode(buf)? },
            RPL_READ => ConsensusReply::ReadResult { result: OpResult::decode(buf)? },
            RPL_SYNC_DONE => ConsensusReply::SyncDone,
            RPL_NOT_LEADER => ConsensusReply::NotLeader { hint: Option::<ServerId>::decode(buf)? },
            RPL_REC_OK => ConsensusReply::RecordAccepted,
            RPL_REC_NO => ConsensusReply::RecordRejected,
            RPL_W_DATA => ConsensusReply::WitnessData { requests: decode_seq(buf)? },
            RPL_LEADER => ConsensusReply::Leader {
                term: u64::decode(buf)?,
                leader: Option::<ServerId>::decode(buf)?,
            },
            RPL_BUSY => ConsensusReply::Busy { reason: String::decode(buf)? },
            tag => return Err(DecodeError::InvalidTag { ty: "ConsensusReply", tag }),
        })
    }
}

/// Wraps a consensus message for the shared transport.
pub fn wrap_rpc(rpc: &ConsensusRpc) -> curp_proto::message::Request {
    curp_proto::message::Request::Consensus { payload: rpc.to_bytes() }
}

/// Wraps a consensus reply.
pub fn wrap_reply(reply: &ConsensusReply) -> curp_proto::message::Response {
    curp_proto::message::Response::Consensus { payload: reply.to_bytes() }
}

/// Extracts a consensus reply from a transport response.
pub fn unwrap_reply(rsp: &curp_proto::message::Response) -> Option<ConsensusReply> {
    match rsp {
        curp_proto::message::Response::Consensus { payload } => {
            ConsensusReply::from_bytes(payload).ok()
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curp_proto::types::{ClientId, MasterId};
    use curp_proto::wire::roundtrip;

    fn b(s: &str) -> bytes::Bytes {
        bytes::Bytes::copy_from_slice(s.as_bytes())
    }

    fn sample_entry() -> RaftEntry {
        RaftEntry {
            term: 2,
            index: 9,
            rpc_id: Some(RpcId::new(ClientId(1), 4)),
            op: Op::Put { key: b("k"), value: b("v") },
        }
    }

    #[test]
    fn rpcs_roundtrip() {
        let samples = vec![
            ConsensusRpc::RequestVote {
                term: 3,
                candidate: ServerId(1),
                last_log_index: 7,
                last_log_term: 2,
            },
            ConsensusRpc::AppendEntries {
                term: 3,
                leader: ServerId(1),
                prev_index: 6,
                prev_term: 2,
                entries: vec![sample_entry()],
                commit: 5,
            },
            ConsensusRpc::Command {
                rpc_id: RpcId::new(ClientId(2), 8),
                op: Op::Delete { key: b("k") },
            },
            ConsensusRpc::Read { op: Op::Get { key: b("k") } },
            ConsensusRpc::Sync,
            ConsensusRpc::WitnessRecord {
                term: 3,
                request: RecordedRequest {
                    master_id: MasterId(0),
                    rpc_id: RpcId::new(ClientId(2), 8),
                    key_hashes: vec![curp_proto::types::KeyHash(5)].into(),
                    op: Op::Put { key: b("k"), value: b("v") },
                },
            },
            ConsensusRpc::WitnessCollect,
            ConsensusRpc::WhoLeads,
        ];
        for s in samples {
            roundtrip(&s);
        }
    }

    #[test]
    fn replies_roundtrip() {
        let samples = vec![
            ConsensusReply::Vote { term: 1, granted: true },
            ConsensusReply::Appended { term: 1, ok: false, match_index: 4 },
            ConsensusReply::Speculative { result: OpResult::Written { version: 1 } },
            ConsensusReply::Committed { result: OpResult::Counter(3) },
            ConsensusReply::ReadResult { result: OpResult::Value(None) },
            ConsensusReply::SyncDone,
            ConsensusReply::NotLeader { hint: Some(ServerId(2)) },
            ConsensusReply::RecordAccepted,
            ConsensusReply::RecordRejected,
            ConsensusReply::WitnessData { requests: vec![] },
            ConsensusReply::Leader { term: 4, leader: None },
            ConsensusReply::Busy { reason: "electing".into() },
        ];
        for s in samples {
            roundtrip(&s);
        }
    }

    #[test]
    fn tunnel_wrapping() {
        let rpc = ConsensusRpc::Sync;
        let wrapped = wrap_rpc(&rpc);
        match wrapped {
            curp_proto::message::Request::Consensus { payload } => {
                assert_eq!(ConsensusRpc::from_bytes(&payload).unwrap(), rpc);
            }
            other => panic!("unexpected {other:?}"),
        }
        let reply = ConsensusReply::SyncDone;
        assert_eq!(unwrap_reply(&wrap_reply(&reply)), Some(reply));
    }
}
