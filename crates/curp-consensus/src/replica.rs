//! A consensus replica: Raft-style strong-leader RSM with an embedded CURP
//! witness (Appendix A.2).
//!
//! Standard Raft machinery: randomized election timeouts, log matching,
//! current-term commit rule (with a leadership no-op entry), majority
//! commit. The CURP extension changes three things:
//!
//! 1. the leader *executes speculatively*: a commutative command is executed
//!    and answered before it is replicated (non-commutative commands wait
//!    for commit, mirroring §3.2.3);
//! 2. every replica embeds a witness component that accepts term-tagged
//!    records of client commands, enforcing commutativity independently;
//! 3. a newly elected leader completes recovery before serving: it collects
//!    the witness contents of `f + 1` replicas (its own plus `f` peers) and
//!    replays every request found in at least `⌈f/2⌉ + 1` of them — by the
//!    superquorum argument of §A.2 this replays exactly the
//!    completed-but-uncommitted commands.
//!
//! On losing leadership a replica discards its speculative state and
//! rebuilds from the committed log prefix (the paper's "reload from a
//! checkpoint").

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use curp_proto::lockrank;
use curp_proto::message::{RecordedRequest, Request, Response};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{RpcId, ServerId};
use curp_proto::wire::Decode;
use curp_rifl::{CheckResult, RiflTable};
use curp_storage::Store;
use curp_transport::rpc::{BoxFuture, RpcClient, RpcHandler};
use curp_witness::cache::{CacheConfig, RecordOutcome, WitnessCache};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tokio::sync::watch;

use crate::msg::{unwrap_reply, wrap_reply, wrap_rpc, ConsensusReply, ConsensusRpc, RaftEntry};

/// Timing and sizing of a replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Minimum election timeout.
    pub election_timeout_min: Duration,
    /// Maximum election timeout.
    pub election_timeout_max: Duration,
    /// Heartbeat / replication interval (must be << election timeout).
    pub heartbeat_interval: Duration,
    /// Witness cache sizing.
    pub witness: CacheConfig,
    /// RNG seed for this replica's election jitter.
    pub seed: u64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            election_timeout_min: Duration::from_millis(150),
            election_timeout_max: Duration::from_millis(300),
            heartbeat_interval: Duration::from_millis(40),
            witness: CacheConfig::default(),
            seed: 7,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Follower,
    Candidate,
    Leader,
}

struct St {
    term: u64,
    voted_for: Option<ServerId>,
    role: Role,
    leader_hint: Option<ServerId>,
    /// `log[i]` has index `i + 1`.
    log: Vec<RaftEntry>,
    commit: u64,
    /// Entries applied to `store` (leader: == log.len(); follower: == commit).
    applied: u64,
    store: Store,
    /// Store log-head after applying entry `i+1` (leader only; tracks the
    /// synced frontier for the commutativity check).
    exec_heads: Vec<u64>,
    rifl: RiflTable,
    witness: WitnessCache,
    next_index: HashMap<ServerId, u64>,
    match_index: HashMap<ServerId, u64>,
    votes: usize,
    election_deadline: tokio::time::Instant,
    rng: StdRng,
    /// Leaders only: witness recovery finished; safe to serve clients
    /// ("the new leader must recover from witnesses before accepting new
    /// operations", §A.2).
    recovered: bool,
}

/// One consensus replica.
pub struct Replica {
    id: ServerId,
    peers: Vec<ServerId>,
    cfg: ReplicaConfig,
    rpc: Arc<dyn RpcClient>,
    st: Mutex<St>,
    commit_tx: watch::Sender<u64>,
}

impl Replica {
    /// Creates and starts a replica. `peers` excludes `id`.
    pub fn spawn(
        id: ServerId,
        peers: Vec<ServerId>,
        cfg: ReplicaConfig,
        rpc: Arc<dyn RpcClient>,
    ) -> Arc<Replica> {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ id.0);
        let timeout = Self::rand_timeout(&cfg, &mut rng);
        let replica = Arc::new(Replica {
            id,
            peers,
            cfg: cfg.clone(),
            rpc,
            st: Mutex::ranked(
                lockrank::CONSENSUS_REPLICA,
                "consensus.replica.st",
                St {
                    term: 0,
                    voted_for: None,
                    role: Role::Follower,
                    leader_hint: None,
                    log: Vec::new(),
                    commit: 0,
                    applied: 0,
                    store: Store::new(),
                    exec_heads: Vec::new(),
                    rifl: RiflTable::new(),
                    witness: WitnessCache::new(cfg.witness),
                    next_index: HashMap::new(),
                    match_index: HashMap::new(),
                    votes: 0,
                    election_deadline: tokio::time::Instant::now() + timeout,
                    rng,
                    recovered: true,
                },
            ),
            commit_tx: watch::channel(0).0,
        });
        let ticker = Arc::clone(&replica);
        tokio::spawn(async move {
            ticker.run_ticker().await;
        });
        replica
    }

    fn rand_timeout(cfg: &ReplicaConfig, rng: &mut StdRng) -> Duration {
        let min = cfg.election_timeout_min.as_millis() as u64;
        let max = cfg.election_timeout_max.as_millis() as u64;
        Duration::from_millis(rng.gen_range(min..=max.max(min + 1)))
    }

    /// This replica's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Current role/term/leader snapshot (tests).
    pub fn status(&self) -> (u64, bool, Option<ServerId>) {
        let st = self.st.lock();
        (st.term, st.role == Role::Leader, st.leader_hint)
    }

    /// Committed log length (tests).
    pub fn commit_index(&self) -> u64 {
        self.st.lock().commit
    }

    async fn run_ticker(self: Arc<Self>) {
        let tick = self.cfg.heartbeat_interval / 4;
        loop {
            tokio::time::sleep(tick).await;
            let (start_election, is_leader) = {
                let mut st = self.st.lock();
                match st.role {
                    Role::Leader => (false, true),
                    _ => {
                        if tokio::time::Instant::now() >= st.election_deadline {
                            // Become candidate for a new term.
                            st.term += 1;
                            st.role = Role::Candidate;
                            st.voted_for = Some(self.id);
                            st.votes = 1;
                            let t = Self::rand_timeout(&self.cfg, &mut st.rng);
                            st.election_deadline = tokio::time::Instant::now() + t;
                            (true, false)
                        } else {
                            (false, false)
                        }
                    }
                }
            };
            if start_election {
                self.broadcast_votes();
            }
            if is_leader {
                self.replicate_all();
            }
        }
    }

    fn broadcast_votes(self: &Arc<Self>) {
        let (term, lli, llt) = {
            let st = self.st.lock();
            let lli = st.log.len() as u64;
            let llt = st.log.last().map(|e| e.term).unwrap_or(0);
            (st.term, lli, llt)
        };
        for &peer in &self.peers {
            let me = Arc::clone(self);
            tokio::spawn(async move {
                let rpc = ConsensusRpc::RequestVote {
                    term,
                    candidate: me.id,
                    last_log_index: lli,
                    last_log_term: llt,
                };
                let Ok(rsp) = me.rpc.call(peer, wrap_rpc(&rpc)).await else { return };
                let Some(ConsensusReply::Vote { term: vote_term, granted }) = unwrap_reply(&rsp)
                else {
                    return;
                };
                let won = {
                    let mut st = me.st.lock();
                    if vote_term > st.term {
                        Self::step_down(&mut st, vote_term);
                        return;
                    }
                    if st.role != Role::Candidate || st.term != term || !granted {
                        return;
                    }
                    st.votes += 1;
                    let majority = me.peers.len().div_ceil(2) + 1;
                    if st.votes >= majority {
                        st.role = Role::Leader;
                        st.leader_hint = Some(me.id);
                        st.recovered = false;
                        let next = st.log.len() as u64 + 1;
                        for &p in &me.peers {
                            st.next_index.insert(p, next);
                            st.match_index.insert(p, 0);
                        }
                        // The leader's log is authoritative: speculatively
                        // apply any not-yet-applied suffix so the RIFL table
                        // covers *every* log entry before witness replay —
                        // otherwise a replicated-but-uncommitted entry would
                        // be replayed twice.
                        while st.applied < st.log.len() as u64 {
                            let e = st.log[st.applied as usize].clone();
                            let result = st.store.execute(&e.op);
                            if let Some(id) = e.rpc_id {
                                st.rifl.record(id, result);
                            }
                            let head = st.store.log_head();
                            st.exec_heads.push(head);
                            st.applied += 1;
                        }
                        true
                    } else {
                        false
                    }
                };
                if won {
                    me.clone().finish_leadership_transition(term).await;
                }
            });
        }
    }

    /// §A.2 leader recovery: collect `f + 1` witness sets (own + `f` peers),
    /// replay every request present in `≥ ⌈f/2⌉ + 1` of them, then append
    /// the leadership no-op that lets older entries commit.
    async fn finish_leadership_transition(self: Arc<Self>, term: u64) {
        let f = self.peers.len() / 2; // 2f+1 replicas total
        let own = {
            let st = self.st.lock();
            st.witness.all_requests()
        };
        let mut sets: Vec<Vec<RecordedRequest>> = vec![own];
        for &peer in &self.peers {
            if sets.len() > f {
                break;
            }
            let Ok(rsp) = self.rpc.call(peer, wrap_rpc(&ConsensusRpc::WitnessCollect)).await else {
                continue;
            };
            if let Some(ConsensusReply::WitnessData { requests }) = unwrap_reply(&rsp) {
                sets.push(requests);
            }
        }
        if sets.len() < f + 1 {
            // Not enough witness data reachable; step down and let another
            // election happen ("the new master must wait", §3.3).
            let mut st = self.st.lock();
            if st.term == term {
                Self::step_down(&mut st, term);
            }
            return;
        }
        let need = f.div_ceil(2) + 1; // ⌈f/2⌉ + 1
        let mut counts: HashMap<RpcId, (usize, RecordedRequest)> = HashMap::new();
        for set in &sets {
            for req in set {
                let e = counts.entry(req.rpc_id).or_insert_with(|| (0, req.clone()));
                e.0 += 1;
            }
        }
        let mut st = self.st.lock();
        if st.role != Role::Leader || st.term != term {
            return;
        }
        let mut replay: Vec<RecordedRequest> =
            counts.into_values().filter(|(n, _)| *n >= need).map(|(_, r)| r).collect();
        replay.sort_by_key(|r| r.rpc_id); // deterministic order (commutative anyway)
        for req in replay {
            if !matches!(st.rifl.check(req.rpc_id), CheckResult::New) {
                continue; // already in the log
            }
            // Replay trust boundary (DESIGN.md invariant 1): drop requests
            // whose cached footprint lies about the op, as the curp-core
            // master does.
            if !req.footprint_matches_op() {
                continue;
            }
            Self::append_and_apply(&mut st, term, Some(req.rpc_id), req.op.clone());
        }
        // Leadership no-op: commits everything above under the current-term
        // commit rule.
        Self::append_and_apply(&mut st, term, None, Op::Get { key: NOOP_KEY });
        st.recovered = true;
        drop(st);
        self.replicate_all();
    }

    /// Appends an entry, executes it speculatively and records RIFL.
    fn append_and_apply(st: &mut St, term: u64, rpc_id: Option<RpcId>, op: Op) -> OpResult {
        let index = st.log.len() as u64 + 1;
        let result = st.store.execute(&op);
        st.log.push(RaftEntry { term, index, rpc_id, op });
        st.exec_heads.push(st.store.log_head());
        st.applied = index;
        if let Some(id) = rpc_id {
            st.rifl.record(id, result.clone());
        }
        result
    }

    fn step_down(st: &mut St, term: u64) {
        let was_leader = st.role == Role::Leader;
        st.term = term;
        st.role = Role::Follower;
        st.voted_for = None;
        st.votes = 0;
        if was_leader {
            // Discard speculative execution: rebuild from the committed
            // prefix (the §A.2 "reload from a checkpoint").
            Self::rebuild_committed(st);
        }
    }

    /// Resets store/rifl to exactly the committed prefix of the log.
    fn rebuild_committed(st: &mut St) {
        let mut store = Store::new();
        let mut rifl = RiflTable::new();
        let mut exec_heads = Vec::with_capacity(st.commit as usize);
        for e in st.log.iter().take(st.commit as usize) {
            let result = store.execute(&e.op);
            if let Some(id) = e.rpc_id {
                rifl.record(id, result);
            }
            exec_heads.push(store.log_head());
        }
        store.mark_synced(store.log_head());
        st.store = store;
        st.rifl = rifl;
        st.exec_heads = exec_heads;
        st.applied = st.commit;
    }

    fn replicate_all(self: &Arc<Self>) {
        for &peer in &self.peers {
            let me = Arc::clone(self);
            tokio::spawn(async move {
                me.replicate_to(peer).await;
            });
        }
    }

    async fn replicate_to(self: &Arc<Self>, peer: ServerId) {
        let (term, prev_index, prev_term, entries, commit) = {
            let st = self.st.lock();
            if st.role != Role::Leader {
                return;
            }
            let next = st.next_index.get(&peer).copied().unwrap_or(1);
            let prev_index = next - 1;
            let prev_term = if prev_index == 0 { 0 } else { st.log[prev_index as usize - 1].term };
            let entries: Vec<RaftEntry> = st.log[prev_index as usize..].to_vec();
            (st.term, prev_index, prev_term, entries, st.commit)
        };
        let sent = entries.len() as u64;
        let rpc = ConsensusRpc::AppendEntries {
            term,
            leader: self.id,
            prev_index,
            prev_term,
            entries,
            commit,
        };
        let Ok(rsp) = self.rpc.call(peer, wrap_rpc(&rpc)).await else { return };
        let Some(ConsensusReply::Appended { term: rterm, ok, match_index }) = unwrap_reply(&rsp)
        else {
            return;
        };
        let mut st = self.st.lock();
        if rterm > st.term {
            Self::step_down(&mut st, rterm);
            return;
        }
        if st.role != Role::Leader || st.term != term {
            return;
        }
        if ok {
            let matched = prev_index + sent;
            st.match_index.insert(peer, matched);
            st.next_index.insert(peer, matched + 1);
            self.advance_commit(&mut st);
        } else {
            // Log repair: fall back to the follower's hint.
            st.next_index.insert(peer, match_index + 1);
        }
    }

    fn advance_commit(&self, st: &mut St) {
        let majority = self.peers.len().div_ceil(2) + 1;
        let mut n = st.log.len() as u64;
        while n > st.commit {
            // Current-term commit rule.
            if st.log[n as usize - 1].term == st.term {
                let count = 1 + self
                    .peers
                    .iter()
                    .filter(|p| st.match_index.get(p).copied().unwrap_or(0) >= n)
                    .count();
                if count >= majority {
                    break;
                }
            }
            n -= 1;
        }
        if n > st.commit {
            st.commit = n;
            self.on_commit_advanced(st);
        }
    }

    /// Shared commit handling: mark the synced frontier, gc the witness, and
    /// (followers) apply newly committed entries.
    fn on_commit_advanced(&self, st: &mut St) {
        // Followers apply lazily at commit time; the leader already executed.
        while st.applied < st.commit {
            let e = st.log[st.applied as usize].clone();
            let result = st.store.execute(&e.op);
            if let Some(id) = e.rpc_id {
                st.rifl.record(id, result);
            }
            st.exec_heads.push(st.store.log_head());
            st.applied += 1;
        }
        // Synced frontier = store position of the last committed entry.
        if st.commit > 0 {
            if let Some(&pos) = st.exec_heads.get(st.commit as usize - 1) {
                if pos > st.store.synced_pos() {
                    st.store.mark_synced(pos);
                }
            }
        }
        // Witness gc: committed requests no longer need witness slots.
        let mut pairs = Vec::new();
        for e in st.log.iter().take(st.commit as usize) {
            if let Some(id) = e.rpc_id {
                for h in e.op.key_hashes_iter() {
                    pairs.push((h, id));
                }
            }
        }
        if !pairs.is_empty() {
            st.witness.gc(&pairs);
        }
        self.commit_tx.send_modify(|c| *c = (*c).max(st.commit));
    }

    /// Waits until `index` is committed, nudging replication.
    async fn wait_commit(self: &Arc<Self>, index: u64) -> bool {
        let mut rx = self.commit_tx.subscribe();
        self.replicate_all();
        for _ in 0..10_000 {
            if *rx.borrow_and_update() >= index {
                return true;
            }
            if rx.changed().await.is_err() {
                return false;
            }
        }
        false
    }

    /// Handles one consensus RPC.
    pub async fn handle(self: &Arc<Self>, rpc: ConsensusRpc) -> ConsensusReply {
        match rpc {
            ConsensusRpc::RequestVote { term, candidate, last_log_index, last_log_term } => {
                let mut st = self.st.lock();
                if term > st.term {
                    Self::step_down(&mut st, term);
                }
                let (my_lli, my_llt) = {
                    let lli = st.log.len() as u64;
                    let llt = st.log.last().map(|e| e.term).unwrap_or(0);
                    (lli, llt)
                };
                let up_to_date =
                    last_log_term > my_llt || (last_log_term == my_llt && last_log_index >= my_lli);
                let granted = term == st.term
                    && up_to_date
                    && (st.voted_for.is_none() || st.voted_for == Some(candidate));
                if granted {
                    st.voted_for = Some(candidate);
                    let t = Self::rand_timeout(&self.cfg, &mut st.rng);
                    st.election_deadline = tokio::time::Instant::now() + t;
                }
                ConsensusReply::Vote { term: st.term, granted }
            }
            ConsensusRpc::AppendEntries {
                term,
                leader,
                prev_index,
                prev_term,
                entries,
                commit,
            } => {
                let mut st = self.st.lock();
                if term < st.term {
                    return ConsensusReply::Appended {
                        term: st.term,
                        ok: false,
                        match_index: st.commit,
                    };
                }
                if term > st.term || st.role != Role::Follower {
                    Self::step_down(&mut st, term);
                }
                st.leader_hint = Some(leader);
                let t = Self::rand_timeout(&self.cfg, &mut st.rng);
                st.election_deadline = tokio::time::Instant::now() + t;

                // Log matching.
                if prev_index > st.log.len() as u64
                    || (prev_index > 0 && st.log[prev_index as usize - 1].term != prev_term)
                {
                    return ConsensusReply::Appended {
                        term: st.term,
                        ok: false,
                        match_index: st.commit,
                    };
                }
                // Append, truncating conflicts.
                for e in entries {
                    let idx = e.index as usize;
                    if st.log.len() >= idx {
                        if st.log[idx - 1].term == e.term {
                            continue; // already have it
                        }
                        assert!(st.commit < e.index, "attempt to truncate a committed entry");
                        st.log.truncate(idx - 1);
                        // Discard any speculative execution beyond the log.
                        if st.applied > st.log.len() as u64 {
                            Self::rebuild_committed(&mut st);
                        }
                        st.exec_heads.truncate(idx - 1);
                    }
                    st.log.push(e);
                }
                let new_commit = commit.min(st.log.len() as u64);
                if new_commit > st.commit {
                    st.commit = new_commit;
                    self.on_commit_advanced(&mut st);
                }
                ConsensusReply::Appended {
                    term: st.term,
                    ok: true,
                    match_index: st.log.len() as u64,
                }
            }
            ConsensusRpc::Command { rpc_id, op } => {
                let (reply_now, wait_index) = {
                    let mut st = self.st.lock();
                    if st.role != Role::Leader {
                        return ConsensusReply::NotLeader { hint: st.leader_hint };
                    }
                    if !st.recovered {
                        return ConsensusReply::Busy { reason: "leader recovering".into() };
                    }
                    match st.rifl.check(rpc_id) {
                        CheckResult::Duplicate(result) => {
                            // Committed iff its entry is within the commit prefix.
                            let committed = st
                                .log
                                .iter()
                                .take(st.commit as usize)
                                .any(|e| e.rpc_id == Some(rpc_id));
                            let reply = if committed {
                                ConsensusReply::Committed { result }
                            } else {
                                ConsensusReply::Speculative { result }
                            };
                            return reply;
                        }
                        CheckResult::Stale => {
                            return ConsensusReply::Busy { reason: "stale rpc".into() }
                        }
                        CheckResult::New => {}
                    }
                    let term = st.term;
                    let conflict = st.store.touches_unsynced(&op);
                    let result = Self::append_and_apply(&mut st, term, Some(rpc_id), op);
                    let index = st.log.len() as u64;
                    if conflict {
                        (ConsensusReply::Committed { result }, Some(index))
                    } else {
                        (ConsensusReply::Speculative { result }, None)
                    }
                };
                if let Some(index) = wait_index {
                    if !self.wait_commit(index).await {
                        return ConsensusReply::Busy { reason: "commit stalled".into() };
                    }
                } else {
                    // Nudge background replication without blocking.
                    self.replicate_all();
                }
                reply_now
            }
            ConsensusRpc::Read { op } => loop {
                let wait_index = {
                    let mut st = self.st.lock();
                    if st.role != Role::Leader {
                        return ConsensusReply::NotLeader { hint: st.leader_hint };
                    }
                    if !st.recovered {
                        return ConsensusReply::Busy { reason: "leader recovering".into() };
                    }
                    if st.store.touches_unsynced(&op) {
                        Some(st.log.len() as u64)
                    } else {
                        let result = st.store.execute(&op);
                        return ConsensusReply::ReadResult { result };
                    }
                };
                if let Some(index) = wait_index {
                    if !self.wait_commit(index).await {
                        return ConsensusReply::Busy { reason: "commit stalled".into() };
                    }
                }
            },
            ConsensusRpc::Sync => {
                let index = {
                    let st = self.st.lock();
                    if st.role != Role::Leader {
                        return ConsensusReply::NotLeader { hint: st.leader_hint };
                    }
                    if !st.recovered {
                        return ConsensusReply::Busy { reason: "leader recovering".into() };
                    }
                    st.log.len() as u64
                };
                if self.wait_commit(index).await {
                    ConsensusReply::SyncDone
                } else {
                    ConsensusReply::Busy { reason: "commit stalled".into() }
                }
            }
            ConsensusRpc::WitnessRecord { term, request } => {
                let mut st = self.st.lock();
                // §A.2: reject records whose term does not match the
                // replica's — this fences clients of deposed leaders.
                if term != st.term {
                    return ConsensusReply::RecordRejected;
                }
                match st.witness.record(request) {
                    RecordOutcome::Accepted => ConsensusReply::RecordAccepted,
                    _ => ConsensusReply::RecordRejected,
                }
            }
            ConsensusRpc::WitnessCollect => {
                let st = self.st.lock();
                ConsensusReply::WitnessData { requests: st.witness.all_requests() }
            }
            ConsensusRpc::WhoLeads => {
                let st = self.st.lock();
                ConsensusReply::Leader { term: st.term, leader: st.leader_hint }
            }
        }
    }
}

const NOOP_KEY: Bytes = Bytes::from_static(b"__raft_noop__");

/// Transport adapter: decodes tunneled consensus messages.
pub struct ReplicaHandler(pub Arc<Replica>);

impl RpcHandler for ReplicaHandler {
    fn handle(&self, _from: ServerId, req: Request) -> BoxFuture<'static, Response> {
        let replica = Arc::clone(&self.0);
        Box::pin(async move {
            let Request::Consensus { payload } = req else {
                return Response::Retry { reason: "not a consensus message".into() };
            };
            let Ok(rpc) = ConsensusRpc::from_bytes_shared(payload) else {
                return Response::Retry { reason: "bad consensus payload".into() };
            };
            wrap_reply(&replica.handle(rpc).await)
        })
    }
}
