//! CURP on consensus (Appendix A.2): a strong-leader, Raft-style replicated
//! state machine where clients complete updates in **1 RTT** by recording
//! them on a *superquorum* of per-replica witnesses while the leader
//! executes speculatively.
//!
//! The protocol uses `2f + 1` replicas, each embedding a witness component.
//! A client completes an update iff
//!
//! * the leader committed it in a majority (2-RTT path), **or**
//! * the leader executed it speculatively *and* `f + ⌈f/2⌉ + 1` witnesses
//!   accepted the record (1-RTT path).
//!
//! The superquorum size is what makes recovery safe: any `f + 1` available
//! witnesses then contain every completed-but-uncommitted request in at
//! least `⌈f/2⌉ + 1` copies, while non-commutative losers appear in at most
//! `⌊f/2⌋` — so a new leader replays exactly the requests that appear in
//! more than `⌈f/2⌉` of any `f + 1` witness sets (§A.2).
//!
//! Record RPCs are term-tagged: witnesses reject records from deposed
//! leaders' clients, which neutralizes zombie leaders (§A.2).

pub mod client;
pub mod msg;
pub mod replica;

pub use client::ConsensusClient;
pub use msg::{ConsensusReply, ConsensusRpc};
pub use replica::{Replica, ReplicaConfig};
