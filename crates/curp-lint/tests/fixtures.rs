//! Self-tests: every rule must (a) flag its seeded fixture with the right
//! file:line diagnostics and (b) stay quiet on the marked/test/benign
//! lines in the same fixture.

use curp_lint::lexer;
use curp_lint::rules::{self, Allowlist, FileCtx, Finding};

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Lints fixture `name` as if it lived at `as_path`.
fn lint_fixture(name: &str, as_path: &str, crate_has_ranked_locks: bool) -> Vec<Finding> {
    let src = fixture(name);
    let lexed = lexer::lex(&src);
    let test_tokens = rules::test_token_mask(&lexed);
    let ctx =
        FileCtx { path: as_path, lexed: &lexed, test_tokens: &test_tokens, crate_has_ranked_locks };
    let mut out = Vec::new();
    rules::run_all(&ctx, &mut out);
    rules::dedup(&mut out);
    out
}

fn lines_for(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

#[test]
fn std_sync_fixture_fails_with_file_line() {
    let f = lint_fixture("std_sync.rs", "crates/x/src/std_sync.rs", false);
    assert_eq!(lines_for(&f, "std-sync"), vec![4, 7], "grouped import + direct path");
    assert!(f.iter().all(|x| x.path == "crates/x/src/std_sync.rs"));
}

#[test]
fn unranked_fixture_fails_only_when_crate_ranks_locks() {
    let f = lint_fixture("unranked.rs", "crates/x/src/unranked.rs", true);
    assert_eq!(lines_for(&f, "unranked-mutex"), vec![9, 13]);
    // The same file in a crate with no ranked locks is legal.
    let quiet = lint_fixture("unranked.rs", "crates/x/src/unranked.rs", false);
    assert_eq!(lines_for(&quiet, "unranked-mutex"), Vec::<u32>::new());
}

#[test]
fn ranked_lock_detection_reads_the_token_stream() {
    let lexed = lexer::lex(&fixture("unranked.rs"));
    assert!(rules::has_ranked_locks(&[&lexed]));
    let plain = lexer::lex("fn f() { let m = Mutex::new(0); }");
    assert!(!rules::has_ranked_locks(&[&plain]));
}

#[test]
fn std_time_fixture_fails_with_file_line() {
    let f = lint_fixture("std_time.rs", "crates/x/src/std_time.rs", false);
    assert_eq!(lines_for(&f, "std-time"), vec![3, 6], "Instant in group + SystemTime direct");
}

#[test]
fn unwrap_fixture_fails_only_in_fast_path_crates() {
    let f = lint_fixture("unwrap.rs", "crates/curp-core/src/unwrap.rs", false);
    assert_eq!(lines_for(&f, "unwrap-expect"), vec![6, 10]);
    // Same content outside the audited crates: quiet.
    let quiet = lint_fixture("unwrap.rs", "crates/curp-sim/src/unwrap.rs", false);
    assert_eq!(lines_for(&quiet, "unwrap-expect"), Vec::<u32>::new());
}

#[test]
fn ack_fsync_fixture_fails_only_under_durable_names() {
    let f = lint_fixture("ack_fsync.rs", "crates/curp-core/src/backup.rs", false);
    assert_eq!(lines_for(&f, "ack-before-fsync"), vec![5], "marked + after-fsync acks stay quiet");
    // A non-durable module name disables the heuristic.
    let quiet = lint_fixture("ack_fsync.rs", "crates/curp-core/src/client.rs", false);
    assert_eq!(lines_for(&quiet, "ack-before-fsync"), Vec::<u32>::new());
}

#[test]
fn allowlist_suppresses_by_rule_and_suffix() {
    let allow = Allowlist::parse(
        "# comment\n\nunwrap-expect curp-core/src/unwrap.rs\nstd-sync some/other.rs\n",
    );
    let f = lint_fixture("unwrap.rs", "crates/curp-core/src/unwrap.rs", false);
    let surviving: Vec<_> = f.into_iter().filter(|x| !allow.allows(x)).collect();
    assert_eq!(lines_for(&surviving, "unwrap-expect"), Vec::<u32>::new());
}

#[test]
fn findings_render_as_path_line_rule_message() {
    let f = lint_fixture("unwrap.rs", "crates/curp-core/src/unwrap.rs", false);
    let first = f.first().expect("fixture has findings");
    let rendered = first.to_string();
    assert!(
        rendered.starts_with("crates/curp-core/src/unwrap.rs:6: unwrap-expect: "),
        "got {rendered}"
    );
}

#[test]
fn the_workspace_itself_is_clean() {
    // The repo must lint clean with its checked-in allowlist — the same
    // invocation CI runs. Walk up from this crate to the workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allow = curp_lint::load_allowlist(&root);
    let findings = curp_lint::lint_workspace(&root, &allow).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "curp-lint found {} issue(s):\n{}",
        findings.len(),
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
