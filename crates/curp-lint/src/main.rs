//! CLI entry point: `cargo run -p curp-lint [-- --root <path>]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            other => {
                eprintln!("curp-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace this binary was built from.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        manifest.canonicalize().unwrap_or(manifest)
    });

    let allow = curp_lint::load_allowlist(&root);
    match curp_lint::lint_workspace(&root, &allow) {
        Ok(findings) if findings.is_empty() => {
            println!("curp-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("curp-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("curp-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}
