//! The lint rules. Each rule walks the token stream produced by
//! [`crate::lexer`] and emits [`Finding`]s; inline `// lint: <marker>`
//! comments (same line or the line above) suppress individual sites, and
//! `allow.list` suppresses whole files per rule.
//!
//! Rules:
//!
//! | id                | meaning                                               |
//! |-------------------|-------------------------------------------------------|
//! | `std-sync`        | `std::sync::Mutex`/`RwLock` outside the shims         |
//! | `unranked-mutex`  | `Mutex::new`/`RwLock::new` in a crate that ranks locks|
//! | `std-time`        | `std::time::Instant`/`SystemTime` in deterministic code|
//! | `unwrap-expect`   | `.unwrap()`/`.expect(` in audited fast-path crates    |
//! | `ack-before-fsync`| ack construction before a later fsync in durable code |

use std::collections::HashSet;
use std::path::Path;

use crate::lexer::{Lexed, Tok};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (also the allowlist key).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.rule, self.message)
    }
}

/// Per-file context a rule run needs.
pub struct FileCtx<'a> {
    /// Repo-relative path, forward slashes.
    pub path: &'a str,
    /// Lexed source.
    pub lexed: &'a Lexed,
    /// Token indices inside `#[cfg(test)]` / `#[test]` items (excluded from
    /// every rule: tests may use unwraps, real time, plain mutexes freely).
    pub test_tokens: &'a [bool],
    /// Whether the file's crate defines ranked locks (activates
    /// `unranked-mutex`).
    pub crate_has_ranked_locks: bool,
}

/// Crates whose non-test code must be free of `.unwrap()`/`.expect(`
/// (CURP's fast path: master execution, witness path, storage engine).
pub const NO_UNWRAP_CRATES: &[&str] = &["curp-core", "curp-storage"];

/// Durable modules for the `ack-before-fsync` heuristic: files whose
/// contract is "fsync precedes every acknowledgement" (DESIGN.md
/// invariant 7).
pub const DURABLE_FILES: &[&str] =
    &["aof.rs", "frames.rs", "intent.rs", "runfile.rs", "persist.rs", "backup.rs"];

/// Identifiers that construct a positive acknowledgement on the durable
/// path. Appearing textually before a later fsync in a durable module is
/// suspicious (the covering fsync should already have happened).
pub const ACK_TOKENS: &[&str] =
    &["BackupSynced", "BackupInstalled", "RecordAccepted", "SyncDone", "WitnessStarted"];

/// Fsync-performing method names.
const FSYNC_TOKENS: &[&str] = &["sync_data", "sync_all", "fsync_dir"];

/// Runs every rule applicable to `ctx` and appends findings.
pub fn run_all(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    rule_std_sync(ctx, out);
    rule_unranked_mutex(ctx, out);
    rule_std_time(ctx, out);
    rule_unwrap_expect(ctx, out);
    rule_ack_before_fsync(ctx, out);
}

/// Computes, per token index, whether the token sits inside a test-gated
/// item: `#[cfg(test)]`- or `#[test]`-attributed mods/fns/impls.
pub fn test_token_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if is_test_attr_at(lexed, i) {
            // Skip past any further attributes, then mark the item through
            // its closing brace (or terminating semicolon).
            let mut j = skip_attr(lexed, i);
            while is_attr_start(lexed, j) {
                j = skip_attr(lexed, j);
            }
            let mut depth = 0usize;
            let start = i;
            while j < toks.len() {
                match toks[j].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    Tok::Punct(';') if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            for m in mask.iter_mut().take(j).skip(start) {
                *m = true;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

fn is_attr_start(lexed: &Lexed, i: usize) -> bool {
    matches!(lexed.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct('#')))
        && matches!(lexed.tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
}

/// If an attribute starts at `i`, returns the index just past its `]`.
fn skip_attr(lexed: &Lexed, i: usize) -> usize {
    let toks = &lexed.tokens;
    let mut j = i + 2;
    let mut depth = 1usize;
    while j < toks.len() && depth > 0 {
        match toks[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// True when tokens at `i` start `#[test]`, `#[tokio::test]`, or an
/// attribute whose argument list mentions `test` (`#[cfg(test)]`,
/// `#[cfg(all(test, feature = "x"))]`).
fn is_test_attr_at(lexed: &Lexed, i: usize) -> bool {
    if !is_attr_start(lexed, i) {
        return false;
    }
    let end = skip_attr(lexed, i);
    lexed.tokens[i..end].iter().any(|t| matches!(&t.tok, Tok::Ident(s) if s == "test"))
}

fn ident_at(lexed: &Lexed, i: usize) -> Option<&str> {
    match lexed.tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(lexed: &Lexed, i: usize, c: char) -> bool {
    matches!(lexed.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Matches `a :: b` path segments: is there a `::` at `i`?
fn path_sep(lexed: &Lexed, i: usize) -> bool {
    punct_at(lexed, i, ':') && punct_at(lexed, i + 1, ':')
}

/// `std::sync::{Mutex,RwLock}` anywhere outside the shims — the workspace
/// locks through the parking_lot shim so the auditor can see them.
fn rule_std_sync(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    scan_std_path(ctx, out, "sync", &["Mutex", "RwLock"], "std-sync", "std-sync-ok", |name| {
        format!("`std::sync::{name}` bypasses the audited parking_lot shim; use `parking_lot::{name}::ranked`")
    });
}

/// `std::time::{Instant,SystemTime}` — deterministic code must use the
/// virtual clock (`tokio::time`).
fn rule_std_time(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    scan_std_path(
        ctx,
        out,
        "time",
        &["Instant", "SystemTime"],
        "std-time",
        "real-time-ok",
        |name| {
            format!("`std::time::{name}` reads the real clock; deterministic paths must use `tokio::time` (mark audited wallclock sites with `// lint: real-time-ok`)")
        },
    );
}

/// Shared scanner for `std::<module>::X` and `use std::<module>::{.., X, ..}`.
fn scan_std_path(
    ctx: &FileCtx<'_>,
    out: &mut Vec<Finding>,
    module: &str,
    banned: &[&str],
    rule: &'static str,
    marker: &str,
    msg: impl Fn(&str) -> String,
) {
    let lexed = ctx.lexed;
    let n = lexed.tokens.len();
    for i in 0..n {
        if ctx.test_tokens[i] {
            continue;
        }
        if ident_at(lexed, i) != Some("std") || !path_sep(lexed, i + 1) {
            continue;
        }
        if ident_at(lexed, i + 3) != Some(module) || !path_sep(lexed, i + 4) {
            continue;
        }
        // Direct path: std::<module>::Name
        if let Some(name) = ident_at(lexed, i + 6) {
            if banned.contains(&name) {
                let line = lexed.tokens[i + 6].line;
                if !lexed.marked(line, marker) {
                    out.push(Finding { path: ctx.path.into(), line, rule, message: msg(name) });
                }
                continue;
            }
        }
        // Grouped import: std::<module>::{A, B, ...}
        if punct_at(lexed, i + 6, '{') {
            let mut j = i + 7;
            while j < n && !punct_at(lexed, j, '}') {
                if let Some(name) = ident_at(lexed, j) {
                    if banned.contains(&name) {
                        let line = lexed.tokens[j].line;
                        if !lexed.marked(line, marker) {
                            out.push(Finding {
                                path: ctx.path.into(),
                                line,
                                rule,
                                message: msg(name),
                            });
                        }
                    }
                }
                j += 1;
            }
        }
    }
}

/// `Mutex::new` / `RwLock::new` in a crate that already defines ranked
/// locks: new locks must declare their place in the rank table.
fn rule_unranked_mutex(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.crate_has_ranked_locks {
        return;
    }
    let lexed = ctx.lexed;
    for i in 0..lexed.tokens.len() {
        if ctx.test_tokens[i] {
            continue;
        }
        let Some(name) = ident_at(lexed, i) else { continue };
        if name != "Mutex" && name != "RwLock" {
            continue;
        }
        if !path_sep(lexed, i + 1) || ident_at(lexed, i + 3) != Some("new") {
            continue;
        }
        // `tokio::sync::Mutex::new` is an async lock outside the auditor's
        // scope; `std::sync::Mutex::new` is rule `std-sync`'s problem.
        let stdlike = i >= 6
            && path_sep(lexed, i - 2)
            && matches!(ident_at(lexed, i - 3), Some("sync"))
            && path_sep(lexed, i - 5)
            && matches!(ident_at(lexed, i - 6), Some("tokio") | Some("std"));
        if stdlike {
            continue;
        }
        let line = lexed.tokens[i].line;
        if !lexed.marked(line, "unranked-ok") {
            out.push(Finding {
                path: ctx.path.into(),
                line,
                rule: "unranked-mutex",
                message: format!(
                    "unranked `{name}::new` in a crate with ranked locks; use `{name}::ranked(lockrank::…, \"name\", …)` or mark `// lint: unranked-ok`"
                ),
            });
        }
    }
}

/// `.unwrap()` / `.expect(` in the fast-path crates. Audited sites carry
/// `// lint: audited-unwrap <why>`.
fn rule_unwrap_expect(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !NO_UNWRAP_CRATES.iter().any(|c| ctx.path.contains(&format!("{c}/src/"))) {
        return;
    }
    let lexed = ctx.lexed;
    for i in 0..lexed.tokens.len() {
        if ctx.test_tokens[i] {
            continue;
        }
        if !punct_at(lexed, i, '.') {
            continue;
        }
        let Some(name) = ident_at(lexed, i + 1) else { continue };
        let is_unwrap =
            name == "unwrap" && punct_at(lexed, i + 2, '(') && punct_at(lexed, i + 3, ')');
        let is_expect = name == "expect" && punct_at(lexed, i + 2, '(');
        if !is_unwrap && !is_expect {
            continue;
        }
        let line = lexed.tokens[i + 1].line;
        if !lexed.marked(line, "audited-unwrap") {
            out.push(Finding {
                path: ctx.path.into(),
                line,
                rule: "unwrap-expect",
                message: format!(
                    "`.{name}(…)` on the fast path; propagate the error or justify with `// lint: audited-unwrap <why>`"
                ),
            });
        }
    }
}

/// Heuristic ordering check for durable modules: constructing a positive
/// ack (e.g. `Response::BackupSynced`) textually *before* a later fsync
/// call in the same file suggests the ack does not cover the write. Sites
/// where the ordering is correct anyway carry `// lint: ack-after-fsync`.
fn rule_ack_before_fsync(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let file_name = Path::new(ctx.path).file_name().and_then(|s| s.to_str()).unwrap_or("");
    if !DURABLE_FILES.contains(&file_name) {
        return;
    }
    let lexed = ctx.lexed;
    // Collect non-test fsync call lines.
    let fsync_lines: Vec<u32> = lexed
        .tokens
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            !ctx.test_tokens[*i]
                && matches!(&t.tok, Tok::Ident(s) if FSYNC_TOKENS.contains(&s.as_str()))
        })
        .map(|(_, t)| t.line)
        .collect();
    let Some(&last_fsync) = fsync_lines.iter().max() else { return };
    for (i, t) in lexed.tokens.iter().enumerate() {
        if ctx.test_tokens[i] {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        if !ACK_TOKENS.contains(&name.as_str()) {
            continue;
        }
        if t.line < last_fsync && !lexed.marked(t.line, "ack-after-fsync") {
            out.push(Finding {
                path: ctx.path.into(),
                line: t.line,
                rule: "ack-before-fsync",
                message: format!(
                    "`{name}` constructed before a later fsync in a durable module; verify the covering fsync precedes the ack and mark `// lint: ack-after-fsync`"
                ),
            });
        }
    }
}

/// The allowlist: `rule path-suffix` pairs, one per line, `#` comments.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Parses the `allow.list` format.
    pub fn parse(text: &str) -> Self {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(rule), Some(suffix)) = (parts.next(), parts.next()) {
                entries.push((rule.to_string(), suffix.to_string()));
            }
        }
        Allowlist { entries }
    }

    /// Whether `finding` is allowlisted.
    pub fn allows(&self, finding: &Finding) -> bool {
        self.entries
            .iter()
            .any(|(rule, suffix)| rule == finding.rule && finding.path.ends_with(suffix.as_str()))
    }
}

/// Detects whether a crate ranks its locks: any `::ranked(`/`::ranked_leaf(`
/// call in any of the crate's (lexed) sources.
pub fn has_ranked_locks(lexed_sources: &[&Lexed]) -> bool {
    lexed_sources.iter().any(|l| {
        l.tokens.iter().enumerate().any(|(i, t)| {
            matches!(&t.tok, Tok::Ident(s) if s == "ranked" || s == "ranked_leaf")
                && i >= 2
                && path_sep(l, i - 2)
        })
    })
}

/// Deduplicates findings (grouped imports can hit a line twice).
pub fn dedup(findings: &mut Vec<Finding>) {
    let mut seen = HashSet::new();
    findings.retain(|f| seen.insert((f.path.clone(), f.line, f.rule)));
}
