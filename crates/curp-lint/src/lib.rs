//! `curp-lint`: the workspace's own static pass (see DESIGN.md invariant 6
//! and ISSUE history). Complements the runtime lock auditor in the
//! parking_lot shim: the auditor proves the discipline holds on executed
//! paths; this pass keeps the source free of constructs the auditor cannot
//! see (unranked locks, raw `std::sync`, real clocks in deterministic
//! code, unaudited unwraps, ack-before-fsync orderings).
//!
//! Run with `cargo run -p curp-lint` from anywhere in the workspace; CI
//! runs it beside clippy. Exit status 1 means findings were printed, one
//! `path:line: rule: message` per line.

pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use rules::{Allowlist, FileCtx, Finding};

/// Lints every `crates/*/src/**/*.rs` under `root` (the workspace root),
/// applying `allow` and returning the surviving findings sorted by path
/// and line.
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> std::io::Result<Vec<Finding>> {
    // crate dir -> its source files.
    let mut by_crate: BTreeMap<PathBuf, Vec<PathBuf>> = BTreeMap::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let crate_dir = entry?.path();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        by_crate.insert(crate_dir, files);
    }

    let mut findings = Vec::new();
    for (crate_dir, files) in &by_crate {
        // curp-lint itself hosts the rule fixtures as test data; linting
        // the linter is what its own unit tests are for.
        if crate_dir.file_name().is_some_and(|n| n == "curp-lint") {
            continue;
        }
        let sources: Vec<(String, lexer::Lexed)> = files
            .iter()
            .map(|f| {
                let text = std::fs::read_to_string(f)?;
                let rel = f.strip_prefix(root).unwrap_or(f).to_string_lossy().replace('\\', "/");
                Ok((rel, lexer::lex(&text)))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let lexed_refs: Vec<&lexer::Lexed> = sources.iter().map(|(_, l)| l).collect();
        let crate_has_ranked_locks = rules::has_ranked_locks(&lexed_refs);
        for (rel, lexed) in &sources {
            let test_tokens = rules::test_token_mask(lexed);
            let ctx =
                FileCtx { path: rel, lexed, test_tokens: &test_tokens, crate_has_ranked_locks };
            rules::run_all(&ctx, &mut findings);
        }
    }
    rules::dedup(&mut findings);
    findings.retain(|f| !allow.allows(f));
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads `crates/curp-lint/allow.list` from `root` (missing file = empty).
pub fn load_allowlist(root: &Path) -> Allowlist {
    let path = root.join("crates/curp-lint/allow.list");
    match std::fs::read_to_string(path) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    }
}
