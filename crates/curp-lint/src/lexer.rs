//! A minimal hand-rolled Rust lexer: just enough to walk real source as a
//! token stream without being fooled by the classic text-scanner traps —
//! string literals (including raw/byte forms), nested block comments,
//! lifetimes vs char literals, doc comments, and macro bodies (which are
//! ordinary token trees and need no special casing).
//!
//! Deliberately dependency-free (no `syn`): the workspace builds offline
//! and the lint must never be a bootstrapping problem for the crates it
//! checks. Literal *contents* are dropped on the floor — rules match on
//! identifier/punctuation sequences, so a rule pattern appearing inside a
//! string (e.g. in this very crate) can never self-flag.

use std::collections::HashMap;

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `Punct(':')`).
    Punct(char),
    /// Any string-ish literal (str, raw str, byte str, char). Contents
    /// intentionally discarded.
    Literal,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A numeric literal.
    Number,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Lexer output: the token stream plus `// lint: <marker>` comments by line.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// Line number of the comment → marker names found on it. A marker
    /// suppresses findings on its own line and the line below, so both
    /// trailing comments and line-above comments work.
    pub markers: HashMap<u32, Vec<String>>,
}

impl Lexed {
    /// True if `marker` appears on `line` or the line directly above it.
    pub fn marked(&self, line: u32, marker: &str) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.markers.get(l).is_some_and(|ms| ms.iter().any(|m| m == marker)))
    }
}

/// Lexes `src` into tokens and lint markers.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances past `n` bytes, counting newlines.
    macro_rules! advance {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < b.len() {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < b.len() {
        let c = b[i];
        // Line comment (incl. doc comments). Harvest `lint:` markers.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            harvest_markers(&src[start..i], line, &mut out.markers);
            continue; // the \n is consumed by the whitespace arm below
        }
        // Block comment, possibly nested. Markers attach to the start line.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            advance!(2);
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    advance!(2);
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    advance!(2);
                } else {
                    advance!(1);
                }
            }
            harvest_markers(&src[start..i], start_line, &mut out.markers);
            continue;
        }
        // Whitespace.
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }
        // Identifier, keyword, or a prefixed string literal (r"", b"", br#""#, …).
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            let next = b.get(i).copied();
            let is_str_prefix = matches!(word, "r" | "b" | "br" | "rb" | "c" | "cr")
                && matches!(next, Some(b'"') | Some(b'#'));
            if is_str_prefix && word.contains('r') {
                // Raw form: r#*" … "#*  (also br/cr). A lone `r#ident` is a
                // raw identifier, not a string — only commit once we see
                // the opening quote after the hashes.
                let mut j = i;
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    let tok_line = line;
                    advance!(j + 1 - i); // consume hashes + opening quote
                                         // Scan for `"` followed by `hashes` hashes.
                    'raw: while i < b.len() {
                        if b[i] == b'"' {
                            let mut k = i + 1;
                            let mut seen = 0usize;
                            while k < b.len() && b[k] == b'#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                advance!(k - i);
                                break 'raw;
                            }
                        }
                        advance!(1);
                    }
                    out.tokens.push(Token { tok: Tok::Literal, line: tok_line });
                    continue;
                }
                // Raw identifier `r#foo`: fall through, emit `r` as ident
                // (good enough — rules never match on raw identifiers).
            } else if is_str_prefix && next == Some(b'"') {
                // Plain-escaped byte/c string: b"…" / c"…".
                let tok_line = line;
                advance!(1); // opening quote
                scan_escaped_string(b, &mut i, &mut line);
                out.tokens.push(Token { tok: Tok::Literal, line: tok_line });
                continue;
            }
            out.tokens.push(Token { tok: Tok::Ident(word.to_string()), line });
            continue;
        }
        // Ordinary string literal.
        if c == b'"' {
            let tok_line = line;
            advance!(1);
            scan_escaped_string(b, &mut i, &mut line);
            out.tokens.push(Token { tok: Tok::Literal, line: tok_line });
            continue;
        }
        // `'`: lifetime or char literal.
        if c == b'\'' {
            let tok_line = line;
            // Escaped char: definitely a literal.
            if b.get(i + 1) == Some(&b'\\') {
                advance!(2); // ' and backslash
                advance!(1); // escaped char (enough: closing quote found below)
                while i < b.len() && b[i] != b'\'' {
                    advance!(1);
                }
                advance!(1); // closing quote
                out.tokens.push(Token { tok: Tok::Literal, line: tok_line });
                continue;
            }
            // `'x` where x is ident-ish: char literal iff a `'` follows the
            // ident run (`'a'`), otherwise a lifetime (`'a`, `'static`).
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            if j > i + 1 && b.get(j) != Some(&b'\'') {
                advance!(j - i);
                out.tokens.push(Token { tok: Tok::Lifetime, line: tok_line });
                continue;
            }
            // Char literal: `'a'` or punctuation like `'('`.
            advance!(1); // opening quote
            while i < b.len() && b[i] != b'\'' {
                advance!(1);
            }
            advance!(1); // closing quote
            out.tokens.push(Token { tok: Tok::Literal, line: tok_line });
            continue;
        }
        // Number (suffixes and hex digits folded in; `.` excluded so method
        // calls on numeric results still lex as Punct('.')).
        if c.is_ascii_digit() {
            let tok_line = line;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.tokens.push(Token { tok: Tok::Number, line: tok_line });
            continue;
        }
        // Everything else: single punctuation character.
        out.tokens.push(Token { tok: Tok::Punct(c as char), line });
        advance!(1);
    }
    out
}

/// Consumes an escaped string body up to and including the closing quote.
/// `i` must point just past the opening quote.
fn scan_escaped_string(b: &[u8], i: &mut usize, line: &mut u32) {
    while *i < b.len() {
        match b[*i] {
            b'\\' => {
                *i += 2; // skip the escape pair (\" \\ \n …)
            }
            b'"' => {
                *i += 1;
                return;
            }
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// Pulls `lint: <name>` markers out of a comment's text.
fn harvest_markers(comment: &str, line: u32, markers: &mut HashMap<u32, Vec<String>>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:") {
        rest = &rest[pos + "lint:".len()..];
        let name: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if !name.is_empty() {
            markers.entry(line).or_default().push(name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raw_strings_are_opaque() {
        // The rule pattern inside the raw string must not surface as idents.
        let src = r##"let x = r#"std::sync::Mutex::new"#; let y = other;"##;
        assert_eq!(idents(src), ["let", "x", "let", "y", "other"]);
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let src = "let s = r##\"inner \"# quote\"##; after();";
        assert_eq!(idents(src), ["let", "s", "after"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = "let a = b\"std::sync\"; let c = br#\"Mutex::new\"#; done();";
        assert_eq!(idents(src), ["let", "a", "let", "c", "done"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "before(); /* outer /* inner Mutex::new */ still comment */ after();";
        assert_eq!(idents(src), ["before", "after"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { let c = 'x'; let p = '('; x }";
        let lexed = lex(src);
        let lifetimes = lexed.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let literals = lexed.tokens.iter().filter(|t| t.tok == Tok::Literal).count();
        assert_eq!(lifetimes, 3, "'a, 'a, 'static");
        assert_eq!(literals, 2, "'x' and '('");
    }

    #[test]
    fn escaped_char_and_string_quotes() {
        let src = r#"let q = '\''; let s = "a \" b"; end();"#;
        assert_eq!(idents(src), ["let", "q", "let", "s", "end"]);
    }

    #[test]
    fn macro_bodies_are_plain_token_streams() {
        // Tokens inside macro_rules! bodies and macro invocations are
        // visible to rules exactly like ordinary code.
        let src = "macro_rules! m { () => { std::sync::Mutex::new(()) }; } m!();";
        let ids = idents(src);
        assert!(ids.contains(&"std".to_string()));
        assert!(ids.contains(&"Mutex".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline string\"\nb /* c\nc */ d\n'\\n'\ne";
        let lexed = lex(src);
        let find = |name: &str| {
            lexed.tokens.iter().find(|t| t.tok == Tok::Ident(name.to_string())).map(|t| t.line)
        };
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("d"), Some(5));
        assert_eq!(find("e"), Some(7));
    }

    #[test]
    fn markers_are_harvested_with_lines() {
        let src = "x(); // lint: audited-unwrap reason here\ny(); /* lint: ack-after-fsync */";
        let lexed = lex(src);
        assert!(lexed.marked(1, "audited-unwrap"));
        assert!(lexed.marked(2, "audited-unwrap"), "marker covers the next line");
        assert!(lexed.marked(2, "ack-after-fsync"));
        assert!(!lexed.marked(1, "ack-after-fsync"));
    }

    #[test]
    fn raw_identifiers_do_not_eat_source() {
        let src = "let r#type = 1; follow();";
        let ids = idents(src);
        assert!(ids.contains(&"follow".to_string()));
    }
}
