//! Seeded violation fixture for rule `std-time`.

use std::time::{Duration, Instant}; // line 3: flagged (Instant only)

fn direct() {
    let _t = std::time::SystemTime::now(); // line 6: flagged
}

fn fine() {
    let _d = Duration::from_millis(1); // Duration alone is fine
    let _v = tokio::time::Instant::now(); // virtual clock is the point
}

fn audited() {
    let _w = std::time::Instant::now(); // lint: real-time-ok — wallclock meter
}
