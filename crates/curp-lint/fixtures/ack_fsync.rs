//! Seeded violation fixture for rule `ack-before-fsync`. The self-test
//! presents this file under a durable-module name (`backup.rs`).

fn handle() -> Response {
    Response::BackupSynced { accepted: true } // line 5: flagged (fsync below)
}

fn marked_ok() -> Response {
    // lint: ack-after-fsync — append() fsynced before we got here
    Response::RecordAccepted
}

fn sync_everything(f: &std::fs::File) {
    f.sync_data().unwrap_or(());
}

fn after_all_fsyncs() -> Response {
    Response::SyncDone // after the last fsync line: not flagged
}
