//! Seeded violation fixture for rule `std-sync`. Not compiled; lexed by
//! curp-lint's self-tests.

use std::sync::{Arc, Mutex}; // line 4: flagged (Mutex in grouped import)

fn direct() {
    let _l = std::sync::RwLock::new(0); // line 7: flagged (direct path)
}

fn fine() {
    let _a: Arc<u32> = Arc::new(0); // Arc alone is fine
    let _s = "std::sync::Mutex"; // string contents never flag
}

fn audited() {
    // lint: std-sync-ok
    let _m = std::sync::Mutex::new(0); // line 17: suppressed by marker
}

#[cfg(test)]
mod tests {
    fn in_tests() {
        let _m = std::sync::Mutex::new(0); // test code: never flagged
    }
}
