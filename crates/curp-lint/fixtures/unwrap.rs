//! Seeded violation fixture for rule `unwrap-expect`. Only takes effect
//! when the path looks like a fast-path crate (the self-test passes a
//! `curp-core/src/...` path).

fn naked_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // line 6: flagged
}

fn naked_expect(x: Option<u32>) -> u32 {
    x.expect("boom") // line 10: flagged
}

fn audited(x: Option<u32>) -> u32 {
    // lint: audited-unwrap — x is Some by construction here
    x.unwrap()
}

fn unwrap_or_is_fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0) // different method; not flagged
}

#[test]
fn in_test_fn() {
    let _ = Some(1).unwrap(); // test code: never flagged
}

#[cfg(test)]
mod tests {
    fn helper(x: Option<u32>) -> u32 {
        x.expect("tests may expect freely")
    }
}
