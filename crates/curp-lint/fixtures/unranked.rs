//! Seeded violation fixture for rule `unranked-mutex`. The crate counts as
//! "ranking its locks" because of the `ranked` call below.

fn ranked_lock() {
    let _m = Mutex::ranked(0x100, "fixture.ranked", 0);
}

fn unranked_lock() {
    let _m = Mutex::new(0); // line 9: flagged
}

fn unranked_rwlock() {
    let _l = RwLock::new(0); // line 13: flagged
}

fn async_lock_is_fine() {
    let _m = tokio::sync::Mutex::new(0); // async lock: out of scope
}

fn audited() {
    // lint: unranked-ok
    let _m = Mutex::new(0); // line 22: suppressed by marker
}
