//! In-process simulated network.
//!
//! [`MemNetwork`] routes [`Request`]s between registered handlers, imposing:
//!
//! * per-link one-way delays drawn from a [`LatencyModel`] (global default
//!   plus per-link overrides, so geo-replication setups can make one witness
//!   "nearby"),
//! * seeded per-link fault injection (message loss and duplication) and
//!   one- or two-way partitions,
//! * server crashes (requests to a crashed server vanish, like a dead NIC),
//! * a per-server *dispatch cost*: every message a server sends or receives
//!   occupies a FIFO dispatch resource for a fixed virtual duration. This
//!   models the RAMCloud dispatch thread that §5.1 identifies as the
//!   throughput bottleneck ("masters are bottlenecked by a dispatch thread"),
//!   and is what makes the Figure 6/12 throughput curves reproducible.
//!
//! All waiting uses `tokio::time`, so running under a *paused* clock
//! (`tokio::time::pause`, or `start_paused` in tests) turns the network into
//! a deterministic discrete-event simulation: virtual microseconds elapse
//! instantly in wall time.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use curp_proto::lockrank;
use curp_proto::message::{Request, Response};
use curp_proto::types::ServerId;
use curp_proto::wire::Encode;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::RpcError;
use crate::latency::{Fixed, LatencyModel};
use crate::rpc::{join_all, BoxFuture, RpcClient, SharedHandler};

/// Per-server simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServerSpec {
    /// Virtual time the server's dispatch resource is occupied per message
    /// sent or received. `Duration::ZERO` disables dispatch modeling.
    pub dispatch_cost: Duration,
}

impl Default for ServerSpec {
    fn default() -> Self {
        ServerSpec { dispatch_cost: Duration::ZERO }
    }
}

/// Message counters kept per server (both directions), used by the §5.2
/// resource-consumption experiment.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests delivered to this server.
    pub requests_in: AtomicU64,
    /// Responses produced by this server.
    pub responses_out: AtomicU64,
    /// Total encoded bytes received.
    pub bytes_in: AtomicU64,
    /// Total encoded bytes sent.
    pub bytes_out: AtomicU64,
}

struct ServerEntry {
    handler: SharedHandler,
    spec: ServerSpec,
    dispatch: Arc<tokio::sync::Mutex<()>>,
    crashed: bool,
    stats: Arc<ServerStats>,
}

/// Fault-injection parameters for one directed link (or the network-wide
/// default). Decisions are drawn from a dedicated RNG seeded with `seed`, so
/// a schedule built from a given seed replays byte-identically: the draw
/// sequence depends only on the messages crossing *this* link, never on
/// unrelated traffic.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Probability that a message on the link is silently lost.
    pub drop_rate: f64,
    /// Probability that a (non-lost) request is delivered twice. Responses
    /// are never duplicated: the caller keeps only one anyway, so a dup
    /// there is invisible — request dups are what stress exactly-once.
    pub dup_rate: f64,
    /// Seed for this link's decision RNG.
    pub seed: u64,
}

impl FaultSpec {
    fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.drop_rate), "drop_rate {}", self.drop_rate);
        assert!((0.0..=1.0).contains(&self.dup_rate), "dup_rate {}", self.dup_rate);
    }
}

/// One per-message fault decision.
#[derive(Debug, Clone, Copy, Default)]
struct FaultRoll {
    lost: bool,
    dup: bool,
}

struct LinkFault {
    drop_rate: f64,
    dup_rate: f64,
    rng: StdRng,
}

impl LinkFault {
    fn new(spec: FaultSpec) -> Self {
        spec.validate();
        LinkFault {
            drop_rate: spec.drop_rate,
            dup_rate: spec.dup_rate,
            rng: StdRng::seed_from_u64(spec.seed),
        }
    }

    fn roll(&mut self) -> FaultRoll {
        let lost = self.drop_rate > 0.0 && self.rng.gen_bool(self.drop_rate);
        let dup = !lost && self.dup_rate > 0.0 && self.rng.gen_bool(self.dup_rate);
        FaultRoll { lost, dup }
    }
}

struct Inner {
    servers: Mutex<HashMap<ServerId, ServerEntry>>,
    default_latency: Mutex<Arc<dyn LatencyModel>>,
    link_latency: Mutex<HashMap<(ServerId, ServerId), Arc<dyn LatencyModel>>>,
    partitions: Mutex<HashSet<(ServerId, ServerId)>>,
    link_faults: Mutex<HashMap<(ServerId, ServerId), LinkFault>>,
    default_fault: Mutex<Option<LinkFault>>,
    /// Latency draws also use one RNG per directed link (lazily seeded from
    /// `seed`), for the same replayability reason as [`LinkFault`].
    latency_rngs: Mutex<HashMap<(ServerId, ServerId), StdRng>>,
    seed: u64,
    rpc_timeout: Mutex<Duration>,
}

/// Derives a stable per-directed-link seed from the network seed.
fn link_seed(seed: u64, from: ServerId, to: ServerId) -> u64 {
    seed ^ from.0.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
        ^ to.0.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// The simulated network. Cheap to clone (shared state).
#[derive(Clone)]
pub struct MemNetwork {
    inner: Arc<Inner>,
}

impl MemNetwork {
    /// Creates a network with a fixed 1 µs one-way delay and the given RNG
    /// seed. Replace the latency model with
    /// [`set_default_latency`](Self::set_default_latency) as needed.
    pub fn new(seed: u64) -> Self {
        MemNetwork {
            inner: Arc::new(Inner {
                servers: Mutex::ranked(
                    lockrank::TRANSPORT_SERVERS,
                    "transport.mem.servers",
                    HashMap::new(),
                ),
                default_latency: Mutex::ranked(
                    lockrank::TRANSPORT_DEFAULT_LATENCY,
                    "transport.mem.default_latency",
                    Arc::new(Fixed(Duration::from_micros(1))),
                ),
                link_latency: Mutex::ranked(
                    lockrank::TRANSPORT_LINK_LATENCY,
                    "transport.mem.link_latency",
                    HashMap::new(),
                ),
                partitions: Mutex::ranked(
                    lockrank::TRANSPORT_PARTITIONS,
                    "transport.mem.partitions",
                    HashSet::new(),
                ),
                link_faults: Mutex::ranked(
                    lockrank::TRANSPORT_LINK_FAULTS,
                    "transport.mem.link_faults",
                    HashMap::new(),
                ),
                default_fault: Mutex::ranked(
                    lockrank::TRANSPORT_DEFAULT_FAULT,
                    "transport.mem.default_fault",
                    None,
                ),
                latency_rngs: Mutex::ranked(
                    lockrank::TRANSPORT_LATENCY_RNGS,
                    "transport.mem.latency_rngs",
                    HashMap::new(),
                ),
                seed,
                rpc_timeout: Mutex::ranked(
                    lockrank::TRANSPORT_RPC_TIMEOUT,
                    "transport.mem.rpc_timeout",
                    Duration::from_millis(200),
                ),
            }),
        }
    }

    /// Registers (or replaces) the handler for `id`.
    pub fn add_server(&self, id: ServerId, handler: SharedHandler, spec: ServerSpec) {
        let mut servers = self.inner.servers.lock();
        let stats = servers.get(&id).map(|e| Arc::clone(&e.stats)).unwrap_or_default();
        servers.insert(
            id,
            ServerEntry {
                handler,
                spec,
                dispatch: Arc::new(tokio::sync::Mutex::new(())),
                crashed: false,
                stats,
            },
        );
    }

    /// Registers a handler with default spec (no dispatch modeling).
    pub fn add_simple_server(&self, id: ServerId, handler: SharedHandler) {
        self.add_server(id, handler, ServerSpec::default());
    }

    /// Sets the network-wide default one-way latency model.
    pub fn set_default_latency(&self, model: Arc<dyn LatencyModel>) {
        *self.inner.default_latency.lock() = model;
    }

    /// Overrides the latency of the directed link `from → to`.
    pub fn set_link_latency(&self, from: ServerId, to: ServerId, model: Arc<dyn LatencyModel>) {
        self.inner.link_latency.lock().insert((from, to), model);
    }

    /// Removes a per-link latency override (falls back to the default).
    pub fn clear_link_latency(&self, from: ServerId, to: ServerId) {
        self.inner.link_latency.lock().remove(&(from, to));
    }

    /// Sets the probability that any individual message is silently lost.
    ///
    /// Convenience wrapper over [`set_default_fault`](Self::set_default_fault):
    /// the decision RNG is seeded from the network seed, so the loss pattern
    /// is deterministic per seed (but shared across links — per-link
    /// [`set_link_fault`](Self::set_link_fault) is the replay-exact path).
    pub fn set_drop_rate(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        let spec = (p > 0.0).then_some(FaultSpec {
            drop_rate: p,
            dup_rate: 0.0,
            seed: self.inner.seed ^ 0xD20B,
        });
        self.set_default_fault(spec);
    }

    /// Installs (or replaces) the fault model for the directed link
    /// `from → to`. Each installation restarts the link's decision RNG from
    /// `spec.seed`.
    pub fn set_link_fault(&self, from: ServerId, to: ServerId, spec: FaultSpec) {
        self.inner.link_faults.lock().insert((from, to), LinkFault::new(spec));
    }

    /// Removes the fault model for `from → to` (falls back to the default).
    pub fn clear_link_fault(&self, from: ServerId, to: ServerId) {
        self.inner.link_faults.lock().remove(&(from, to));
    }

    /// Installs (or with `None` clears) the fault model applied to every
    /// link without its own [`set_link_fault`](Self::set_link_fault) entry.
    pub fn set_default_fault(&self, spec: Option<FaultSpec>) {
        *self.inner.default_fault.lock() = spec.map(LinkFault::new);
    }

    /// Sets how long callers wait before reporting [`RpcError::Timeout`].
    pub fn set_rpc_timeout(&self, d: Duration) {
        *self.inner.rpc_timeout.lock() = d;
    }

    /// Marks `id` as crashed: requests to it are silently dropped (callers
    /// time out, as with a dead machine) until [`restart`](Self::restart).
    pub fn crash(&self, id: ServerId) {
        if let Some(e) = self.inner.servers.lock().get_mut(&id) {
            e.crashed = true;
        }
    }

    /// Clears the crashed flag for `id` (the handler keeps its state; models
    /// a zombie returning from a network outage rather than a reboot).
    pub fn restart(&self, id: ServerId) {
        if let Some(e) = self.inner.servers.lock().get_mut(&id) {
            e.crashed = false;
        }
    }

    /// Returns `true` if `id` is currently marked crashed.
    pub fn is_crashed(&self, id: ServerId) -> bool {
        self.inner.servers.lock().get(&id).map(|e| e.crashed).unwrap_or(false)
    }

    /// Cuts both directions of the link between `a` and `b`.
    pub fn partition(&self, a: ServerId, b: ServerId) {
        let mut p = self.inner.partitions.lock();
        p.insert((a, b));
        p.insert((b, a));
    }

    /// Heals a previous [`partition`](Self::partition).
    pub fn heal(&self, a: ServerId, b: ServerId) {
        let mut p = self.inner.partitions.lock();
        p.remove(&(a, b));
        p.remove(&(b, a));
    }

    /// Cuts only the direction `from → to` (an *asymmetric* partition: `to`
    /// still reaches `from`, so e.g. a master can send but never hear acks).
    pub fn partition_oneway(&self, from: ServerId, to: ServerId) {
        self.inner.partitions.lock().insert((from, to));
    }

    /// Heals a previous [`partition_oneway`](Self::partition_oneway).
    pub fn heal_oneway(&self, from: ServerId, to: ServerId) {
        self.inner.partitions.lock().remove(&(from, to));
    }

    /// Heals every partition (both kinds) at once.
    pub fn heal_all(&self) {
        self.inner.partitions.lock().clear();
    }

    /// Every piece of injected network state still in force, one line per
    /// item — partitions, per-link faults, the default fault, per-link
    /// latency overrides. A fault-injection schedule that claims to have
    /// healed must leave this empty; the chaos fleet asserts exactly that
    /// at the end of every run.
    pub fn residual_faults(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut cuts: Vec<_> = self.inner.partitions.lock().iter().copied().collect();
        cuts.sort();
        for (from, to) in cuts {
            out.push(format!("partition s{} -> s{}", from.0, to.0));
        }
        let mut faults: Vec<_> = self.inner.link_faults.lock().keys().copied().collect();
        faults.sort();
        for (from, to) in faults {
            out.push(format!("link fault s{} -> s{}", from.0, to.0));
        }
        if self.inner.default_fault.lock().is_some() {
            out.push("default fault on all links".into());
        }
        let mut slow: Vec<_> = self.inner.link_latency.lock().keys().copied().collect();
        slow.sort();
        for (from, to) in slow {
            out.push(format!("latency override s{} -> s{}", from.0, to.0));
        }
        out
    }

    /// Per-server message statistics.
    pub fn stats(&self, id: ServerId) -> Option<Arc<ServerStats>> {
        self.inner.servers.lock().get(&id).map(|e| Arc::clone(&e.stats))
    }

    /// Returns an [`RpcClient`] whose calls originate from `from`.
    ///
    /// `from` does not need to be a registered server (clients usually
    /// aren't); if it is, its dispatch cost is charged for each message.
    pub fn client(&self, from: ServerId) -> Arc<dyn RpcClient> {
        Arc::new(MemClient { net: self.clone(), from })
    }

    fn sample_delay(&self, from: ServerId, to: ServerId) -> Duration {
        let model = {
            let links = self.inner.link_latency.lock();
            links.get(&(from, to)).cloned()
        };
        let model = model.unwrap_or_else(|| Arc::clone(&self.inner.default_latency.lock()));
        let mut rngs = self.inner.latency_rngs.lock();
        let rng = rngs
            .entry((from, to))
            .or_insert_with(|| StdRng::seed_from_u64(link_seed(self.inner.seed, from, to)));
        model.sample(rng)
    }

    fn fault_roll(&self, from: ServerId, to: ServerId) -> FaultRoll {
        if let Some(f) = self.inner.link_faults.lock().get_mut(&(from, to)) {
            return f.roll();
        }
        self.inner.default_fault.lock().as_mut().map(LinkFault::roll).unwrap_or_default()
    }

    fn is_partitioned(&self, from: ServerId, to: ServerId) -> bool {
        self.inner.partitions.lock().contains(&(from, to))
    }

    fn dispatch_of(&self, id: ServerId) -> Option<(Arc<tokio::sync::Mutex<()>>, Duration)> {
        self.inner.servers.lock().get(&id).and_then(|e| {
            if e.spec.dispatch_cost.is_zero() {
                None
            } else {
                Some((Arc::clone(&e.dispatch), e.spec.dispatch_cost))
            }
        })
    }

    /// Occupies `id`'s dispatch resource for one message, if modeled.
    async fn occupy_dispatch(&self, id: ServerId) {
        if let Some((lock, cost)) = self.dispatch_of(id) {
            let _guard = lock.lock().await;
            tokio::time::sleep(cost).await;
        }
    }

    async fn do_call(
        self,
        from: ServerId,
        to: ServerId,
        req: Request,
    ) -> Result<Response, RpcError> {
        let timeout = *self.inner.rpc_timeout.lock();
        let fut = async {
            let req_len = req.encoded_len() as u64;
            // Outgoing request occupies the sender's dispatch thread.
            self.occupy_dispatch(from).await;
            let d_out = self.sample_delay(from, to);
            tokio::time::sleep(d_out).await;
            if self.is_partitioned(from, to) {
                std::future::pending::<()>().await;
            }
            let roll = self.fault_roll(from, to);
            if roll.lost {
                std::future::pending::<()>().await;
            }
            let (handler, stats) = {
                let servers = self.inner.servers.lock();
                match servers.get(&to) {
                    // A crashed machine neither NACKs nor replies; surface the
                    // loss as a timeout (after the propagation delay already
                    // paid, so retry loops still advance virtual time).
                    Some(e) if e.crashed => return Err(RpcError::Timeout { to }),
                    Some(e) => (Arc::clone(&e.handler), Arc::clone(&e.stats)),
                    None => return Err(RpcError::Unreachable { to }),
                }
            };
            if roll.dup {
                // The network delivered a second copy of the request. It is
                // its own message — it pays its own dispatch charge and runs
                // through the handler concurrently with the original — but
                // its response is discarded (the caller awaits only one).
                // This is exactly the retransmission scenario RIFL's
                // exactly-once table must absorb.
                stats.requests_in.fetch_add(1, Ordering::Relaxed);
                stats.bytes_in.fetch_add(req_len, Ordering::Relaxed);
                let net = self.clone();
                let dup_handler = Arc::clone(&handler);
                let dup_req = req.clone();
                tokio::spawn(async move {
                    net.occupy_dispatch(to).await;
                    let _ = deliver(&dup_handler, from, dup_req).await;
                });
            }
            stats.requests_in.fetch_add(1, Ordering::Relaxed);
            stats.bytes_in.fetch_add(req_len, Ordering::Relaxed);
            // Incoming request occupies the receiver's dispatch thread. A
            // batch is ONE message: it pays one dispatch charge per direction
            // no matter how many inner requests it carries — exactly the
            // amortization that makes client batching pay off against a
            // dispatch-bound server (§C.1).
            self.occupy_dispatch(to).await;
            let rsp = deliver(&handler, from, req).await;
            // If the server crashed while processing, its response is lost.
            if self.is_crashed(to) {
                std::future::pending::<()>().await;
            }
            stats.responses_out.fetch_add(1, Ordering::Relaxed);
            stats.bytes_out.fetch_add(rsp.encoded_len() as u64, Ordering::Relaxed);
            // Outgoing response occupies the receiver's dispatch thread.
            self.occupy_dispatch(to).await;
            let d_back = self.sample_delay(to, from);
            tokio::time::sleep(d_back).await;
            // Response leg: duplication is meaningless here (see
            // [`FaultSpec::dup_rate`]), only loss applies.
            if self.is_partitioned(to, from) || self.fault_roll(to, from).lost {
                std::future::pending::<()>().await;
            }
            // Incoming response occupies the sender's dispatch thread.
            self.occupy_dispatch(from).await;
            Ok(rsp)
        };
        match tokio::time::timeout(timeout, fut).await {
            Ok(r) => r,
            Err(_) => Err(RpcError::Timeout { to }),
        }
    }
}

/// Hands one delivered message to the destination handler. A batch is
/// unwrapped here: inner requests are handled independently and
/// concurrently; responses stay in request order however the handlers
/// interleave.
async fn deliver(handler: &SharedHandler, from: ServerId, req: Request) -> Response {
    match req {
        Request::Batch { requests } => {
            let futs: Vec<_> = requests.into_iter().map(|r| handler.handle(from, r)).collect();
            Response::Batch { responses: join_all(futs).await }
        }
        req => handler.handle(from, req).await,
    }
}

/// Wait-for-crashed-server behaviour: a crashed destination produces a
/// timeout, not an instant error, so we surface it through the same path.
struct MemClient {
    net: MemNetwork,
    from: ServerId,
}

impl RpcClient for MemClient {
    fn call(&self, to: ServerId, req: Request) -> BoxFuture<'static, Result<Response, RpcError>> {
        let net = self.net.clone();
        let from = self.from;
        Box::pin(net.do_call(from, to, req))
    }

    fn call_batch(
        &self,
        to: ServerId,
        reqs: Vec<Request>,
    ) -> BoxFuture<'static, Result<Vec<Response>, RpcError>> {
        let net = self.net.clone();
        let from = self.from;
        Box::pin(async move {
            if reqs.is_empty() {
                return Ok(Vec::new());
            }
            let n = reqs.len();
            match net.do_call(from, to, Request::Batch { requests: reqs }).await? {
                Response::Batch { responses } if responses.len() == n => Ok(responses),
                _ => Err(RpcError::BatchMismatch { to }),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curp_proto::types::MasterId;
    use std::sync::atomic::AtomicUsize;

    fn echo_handler() -> SharedHandler {
        Arc::new(|_from: ServerId, req: Request| async move {
            match req {
                Request::Sync { .. } => Response::SyncDone,
                _ => Response::Retry { reason: "unexpected".into() },
            }
        })
    }

    #[tokio::test(start_paused = true)]
    async fn basic_call_roundtrips() {
        let net = MemNetwork::new(1);
        net.add_simple_server(ServerId(1), echo_handler());
        let client = net.client(ServerId(100));
        let rsp = client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.unwrap();
        assert_eq!(rsp, Response::SyncDone);
    }

    #[tokio::test(start_paused = true)]
    async fn unknown_server_is_unreachable() {
        let net = MemNetwork::new(1);
        let client = net.client(ServerId(100));
        let err =
            client.call(ServerId(9), Request::Sync { master_id: MasterId(1) }).await.unwrap_err();
        assert_eq!(err, RpcError::Unreachable { to: ServerId(9) });
    }

    #[tokio::test(start_paused = true)]
    async fn crashed_server_times_out() {
        let net = MemNetwork::new(1);
        net.add_simple_server(ServerId(1), echo_handler());
        net.crash(ServerId(1));
        let client = net.client(ServerId(100));
        let err =
            client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.unwrap_err();
        assert_eq!(err, RpcError::Timeout { to: ServerId(1) });
        net.restart(ServerId(1));
        assert!(client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.is_ok());
    }

    #[tokio::test(start_paused = true)]
    async fn partition_blocks_and_heals() {
        let net = MemNetwork::new(1);
        net.add_simple_server(ServerId(1), echo_handler());
        net.partition(ServerId(100), ServerId(1));
        let client = net.client(ServerId(100));
        assert!(client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.is_err());
        net.heal(ServerId(100), ServerId(1));
        assert!(client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.is_ok());
    }

    #[tokio::test(start_paused = true)]
    async fn full_drop_rate_loses_everything() {
        let net = MemNetwork::new(1);
        net.add_simple_server(ServerId(1), echo_handler());
        net.set_drop_rate(1.0);
        let client = net.client(ServerId(100));
        assert!(client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.is_err());
    }

    #[tokio::test(start_paused = true)]
    async fn oneway_partition_cuts_only_one_direction() {
        let net = MemNetwork::new(1);
        net.add_simple_server(ServerId(1), echo_handler());
        net.add_simple_server(ServerId(2), echo_handler());
        // Requests 1→2 still flow, but 2's *responses* (the 2→1 leg) are cut,
        // so the caller at 1 times out while 2→1 request traffic also dies.
        net.partition_oneway(ServerId(2), ServerId(1));
        let c1 = net.client(ServerId(1));
        let c2 = net.client(ServerId(2));
        assert!(
            c1.call(ServerId(2), Request::Sync { master_id: MasterId(1) }).await.is_err(),
            "response leg is cut"
        );
        assert!(
            c2.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.is_err(),
            "request leg is cut"
        );
        // The reverse direction was never touched: 2 can be *called* by a
        // third party unaffected by the 2→1 cut.
        let c9 = net.client(ServerId(9));
        assert!(c9.call(ServerId(2), Request::Sync { master_id: MasterId(1) }).await.is_ok());
        net.heal_oneway(ServerId(2), ServerId(1));
        assert!(c1.call(ServerId(2), Request::Sync { master_id: MasterId(1) }).await.is_ok());
        assert!(c2.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.is_ok());
    }

    #[tokio::test(start_paused = true)]
    async fn dup_fault_delivers_request_exactly_twice() {
        static HITS: AtomicUsize = AtomicUsize::new(0);
        let net = MemNetwork::new(1);
        net.add_simple_server(
            ServerId(1),
            Arc::new(|_f: ServerId, _r: Request| async {
                HITS.fetch_add(1, Ordering::Relaxed);
                Response::SyncDone
            }),
        );
        net.set_link_fault(
            ServerId(100),
            ServerId(1),
            FaultSpec { drop_rate: 0.0, dup_rate: 1.0, seed: 9 },
        );
        let client = net.client(ServerId(100));
        let rsp = client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.unwrap();
        assert_eq!(rsp, Response::SyncDone, "the caller still gets exactly one response");
        // Let the fire-and-forget duplicate leg land.
        tokio::time::sleep(Duration::from_millis(10)).await;
        assert_eq!(HITS.load(Ordering::Relaxed), 2, "duplicate delivered exactly twice");
        let stats = net.stats(ServerId(1)).unwrap();
        assert_eq!(stats.requests_in.load(Ordering::Relaxed), 2);
        assert_eq!(stats.responses_out.load(Ordering::Relaxed), 1);
    }

    #[tokio::test(start_paused = true)]
    async fn link_fault_drop_pattern_replays_from_seed() {
        // Two networks with identical per-link fault seeds must lose exactly
        // the same messages — the property chaos-schedule replay rests on.
        async fn pattern(seed: u64) -> Vec<bool> {
            let net = MemNetwork::new(7);
            net.set_rpc_timeout(Duration::from_millis(50));
            net.add_simple_server(ServerId(1), echo_handler());
            net.set_link_fault(
                ServerId(100),
                ServerId(1),
                FaultSpec { drop_rate: 0.5, dup_rate: 0.0, seed },
            );
            let client = net.client(ServerId(100));
            let mut out = Vec::new();
            for _ in 0..24 {
                out.push(
                    client
                        .call(ServerId(1), Request::Sync { master_id: MasterId(1) })
                        .await
                        .is_ok(),
                );
            }
            out
        }
        let a = pattern(42).await;
        let b = pattern(42).await;
        let c = pattern(43).await;
        assert_eq!(a, b, "same fault seed, same losses");
        assert_ne!(a, c, "different fault seed, different losses");
        assert!(a.iter().any(|x| *x) && a.iter().any(|x| !*x), "p=0.5 mixes both outcomes");
    }

    // NOTE on units: tokio's timer has 1 ms resolution (sleeps round up to
    // the next millisecond, even under a paused clock). Simulations that need
    // microsecond precision therefore express virtual time at a coarser tokio
    // scale (see `curp-sim`, which maps 1 virtual ns -> 1 tokio ms). The
    // transport itself is unit-agnostic; these tests use ms-scale durations.

    #[tokio::test(start_paused = true)]
    async fn latency_is_imposed_in_virtual_time() {
        let net = MemNetwork::new(1);
        net.set_default_latency(Arc::new(Fixed(Duration::from_millis(10))));
        net.add_simple_server(ServerId(1), echo_handler());
        let client = net.client(ServerId(100));
        let t0 = tokio::time::Instant::now();
        client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.unwrap();
        let rtt = t0.elapsed();
        assert_eq!(rtt, Duration::from_millis(20), "two one-way hops of 10ms");
    }

    #[tokio::test(start_paused = true)]
    async fn dispatch_cost_serializes_messages() {
        // One server with 5 ms dispatch cost per message; 10 concurrent
        // callers. Each call charges the server 2 messages (in + out), so
        // total virtual time must be >= 10 * 2 * 5 ms.
        let net = MemNetwork::new(1);
        net.set_default_latency(Arc::new(Fixed(Duration::ZERO)));
        net.set_rpc_timeout(Duration::from_secs(10));
        net.add_server(
            ServerId(1),
            echo_handler(),
            ServerSpec { dispatch_cost: Duration::from_millis(5) },
        );
        let t0 = tokio::time::Instant::now();
        let mut handles = Vec::new();
        for i in 0..10 {
            let client = net.client(ServerId(100 + i));
            handles.push(tokio::spawn(async move {
                client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.unwrap()
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_millis(100), "elapsed {:?}", t0.elapsed());
    }

    #[tokio::test(start_paused = true)]
    async fn per_link_latency_override() {
        let net = MemNetwork::new(1);
        net.set_default_latency(Arc::new(Fixed(Duration::from_millis(10))));
        net.add_simple_server(ServerId(1), echo_handler());
        // Make this client's link fast in both directions.
        net.set_link_latency(ServerId(100), ServerId(1), Arc::new(Fixed(Duration::ZERO)));
        net.set_link_latency(ServerId(1), ServerId(100), Arc::new(Fixed(Duration::ZERO)));
        let t0 = tokio::time::Instant::now();
        net.client(ServerId(100))
            .call(ServerId(1), Request::Sync { master_id: MasterId(1) })
            .await
            .unwrap();
        assert_eq!(t0.elapsed(), Duration::ZERO);
    }

    #[tokio::test(start_paused = true)]
    async fn stats_count_messages_and_bytes() {
        let net = MemNetwork::new(1);
        net.add_simple_server(ServerId(1), echo_handler());
        let client = net.client(ServerId(100));
        for _ in 0..3 {
            client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.unwrap();
        }
        let stats = net.stats(ServerId(1)).unwrap();
        assert_eq!(stats.requests_in.load(Ordering::Relaxed), 3);
        assert_eq!(stats.responses_out.load(Ordering::Relaxed), 3);
        assert!(stats.bytes_in.load(Ordering::Relaxed) > 0);
    }

    /// Handler whose per-request latency *decreases* with arrival order, so
    /// inner batch responses complete out of order and demultiplexing by
    /// position is actually exercised.
    fn staggered_handler() -> SharedHandler {
        use std::sync::atomic::AtomicU64;
        let arrivals = Arc::new(AtomicU64::new(0));
        Arc::new(move |_from: ServerId, req: Request| {
            let order = arrivals.fetch_add(1, Ordering::Relaxed);
            async move {
                // First arrival sleeps longest: completion order reverses.
                tokio::time::sleep(Duration::from_millis(50u64.saturating_sub(order * 10))).await;
                match req {
                    Request::RenewLease { client } => Response::Lease { client, ttl_ms: order },
                    _ => Response::Retry { reason: "unexpected".into() },
                }
            }
        })
    }

    #[tokio::test(start_paused = true)]
    async fn batch_is_one_message_and_demuxes_in_order() {
        use curp_proto::types::ClientId;
        let net = MemNetwork::new(1);
        net.add_simple_server(ServerId(1), staggered_handler());
        let client = net.client(ServerId(100));
        let reqs: Vec<Request> =
            (0..4).map(|i| Request::RenewLease { client: ClientId(i) }).collect();
        let rsps = client.call_batch(ServerId(1), reqs).await.unwrap();
        // responses[i] answers requests[i] even though handler completion
        // order was reversed (ttl_ms records arrival order).
        for (i, rsp) in rsps.iter().enumerate() {
            assert_eq!(
                *rsp,
                Response::Lease { client: ClientId(i as u64), ttl_ms: i as u64 },
                "response {i} mismatched"
            );
        }
        // The whole batch crossed the network as one message.
        let stats = net.stats(ServerId(1)).unwrap();
        assert_eq!(stats.requests_in.load(Ordering::Relaxed), 1);
        assert_eq!(stats.responses_out.load(Ordering::Relaxed), 1);
    }

    #[tokio::test(start_paused = true)]
    async fn empty_batch_resolves_without_network() {
        let net = MemNetwork::new(1);
        // No servers registered: any real call would be Unreachable.
        let client = net.client(ServerId(100));
        assert_eq!(client.call_batch(ServerId(9), Vec::new()).await.unwrap(), Vec::new());
    }

    #[tokio::test(start_paused = true)]
    async fn batch_amortizes_dispatch_cost() {
        // 8 ops through a 5 ms/message dispatch-bound server: one batch pays
        // 2 dispatch charges total, serial calls pay 2 per op.
        let net = MemNetwork::new(1);
        net.set_default_latency(Arc::new(Fixed(Duration::ZERO)));
        net.set_rpc_timeout(Duration::from_secs(10));
        net.add_server(
            ServerId(1),
            echo_handler(),
            ServerSpec { dispatch_cost: Duration::from_millis(5) },
        );
        let client = net.client(ServerId(100));
        let t0 = tokio::time::Instant::now();
        let rsps = client
            .call_batch(ServerId(1), vec![Request::Sync { master_id: MasterId(1) }; 8])
            .await
            .unwrap();
        assert_eq!(rsps, vec![Response::SyncDone; 8]);
        assert_eq!(t0.elapsed(), Duration::from_millis(10), "one message each way");
    }

    #[tokio::test(start_paused = true)]
    async fn concurrent_calls_do_not_interfere() {
        static HITS: AtomicUsize = AtomicUsize::new(0);
        let net = MemNetwork::new(7);
        net.add_simple_server(
            ServerId(1),
            Arc::new(|_f: ServerId, _r: Request| async {
                HITS.fetch_add(1, Ordering::Relaxed);
                tokio::time::sleep(Duration::from_micros(50)).await;
                Response::SyncDone
            }),
        );
        let mut handles = Vec::new();
        for i in 0..64 {
            let client = net.client(ServerId(200 + i));
            handles.push(tokio::spawn(async move {
                client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await
            }));
        }
        for h in handles {
            assert!(h.await.unwrap().is_ok());
        }
        assert_eq!(HITS.load(Ordering::Relaxed), 64);
    }
}
