//! Latency models for the in-memory simulated network.
//!
//! The paper's latency results come from two very different fabrics:
//! kernel-bypass InfiniBand for RAMCloud (Table 1, consistent latency out to
//! the 99th percentile, §5.4) and kernel TCP for Redis (high tail latency
//! above the ~80th percentile, §5.4). Both are modeled here as one-way delay
//! distributions of the form
//!
//! ```text
//! delay = base + Uniform(0, jitter) + Bernoulli(tail_prob) * Exp(tail_scale)
//! ```
//!
//! which captures a tight body plus an exponential tail whose weight and
//! scale differ per fabric. Samples are drawn from a caller-provided seeded
//! RNG, so simulations are reproducible.

use std::time::Duration;

use rand::Rng;

/// A one-way message-delay distribution.
pub trait LatencyModel: Send + Sync + 'static {
    /// Draws one one-way delay.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Duration;

    /// The distribution's baseline (used for documentation and sanity tests).
    fn base(&self) -> Duration;
}

/// A constant delay — useful for deterministic unit tests.
#[derive(Debug, Clone, Copy)]
pub struct Fixed(pub Duration);

impl LatencyModel for Fixed {
    fn sample(&self, _rng: &mut dyn rand::RngCore) -> Duration {
        self.0
    }
    fn base(&self) -> Duration {
        self.0
    }
}

/// Base + uniform jitter + occasional exponential tail (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct TailMix {
    /// Deterministic floor of the delay.
    pub base: Duration,
    /// Width of the uniform jitter added to every sample.
    pub jitter: Duration,
    /// Probability that a sample additionally lands in the tail.
    pub tail_prob: f64,
    /// Mean of the exponential tail component.
    pub tail_scale: Duration,
}

impl TailMix {
    /// A delay with jitter but no tail.
    pub fn jittered(base: Duration, jitter: Duration) -> Self {
        TailMix { base, jitter, tail_prob: 0.0, tail_scale: Duration::ZERO }
    }
}

impl TailMix {
    /// Multiplies every time constant by `factor`.
    ///
    /// Used by the simulator to re-express a physical-time model in scaled
    /// virtual time (tokio's timer rounds sleeps up to 1 ms, so µs-precision
    /// simulations run with 1 virtual ns mapped to 1 tokio ms).
    pub fn scaled(self, factor: u32) -> Self {
        TailMix {
            base: self.base * factor,
            jitter: self.jitter * factor,
            tail_prob: self.tail_prob,
            tail_scale: self.tail_scale * factor,
        }
    }
}

impl LatencyModel for TailMix {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Duration {
        let mut d = self.base;
        if !self.jitter.is_zero() {
            d += Duration::from_nanos(rng.gen_range(0..=self.jitter.as_nanos() as u64));
        }
        if self.tail_prob > 0.0 && rng.gen_bool(self.tail_prob) {
            // Inverse-CDF sample of Exp(1/tail_scale).
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let exp = -u.ln() * self.tail_scale.as_nanos() as f64;
            d += Duration::from_nanos(exp as u64);
        }
        d
    }
    fn base(&self) -> Duration {
        self.base
    }
}

/// Named network profiles calibrated against Table 1 of the paper.
///
/// The absolute values are a *model*, not a measurement of this machine;
/// they are chosen so the end-to-end medians match the paper's reported
/// numbers (e.g. 14 µs synchronous RAMCloud writes, §5.1) and so relative
/// comparisons (the actual subject of the figures) carry over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetProfile {
    /// Kernel-bypass InfiniBand (RAMCloud cluster, Table 1): ~2.2 µs one-way,
    /// tiny jitter, negligible tail — "latency is consistent out to the 99th
    /// percentile" (§5.4).
    Infiniband,
    /// Kernel TCP over 10 GbE (Redis cluster, Table 1): ~7 µs one-way
    /// including syscall costs (~2.5 µs per send/recv, §5.4), with a heavy
    /// tail that "degrades rapidly above the 80th percentile".
    TcpDatacenter,
}

impl NetProfile {
    /// Returns the one-way delay model for this profile.
    pub fn model(self) -> TailMix {
        match self {
            NetProfile::Infiniband => TailMix {
                base: Duration::from_nanos(2_200),
                jitter: Duration::from_nanos(400),
                tail_prob: 0.002,
                tail_scale: Duration::from_nanos(4_000),
            },
            NetProfile::TcpDatacenter => TailMix {
                base: Duration::from_nanos(7_000),
                jitter: Duration::from_nanos(3_000),
                tail_prob: 0.18,
                tail_scale: Duration::from_nanos(25_000),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let m = Fixed(Duration::from_micros(5));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), Duration::from_micros(5));
        }
    }

    #[test]
    fn tailmix_respects_floor() {
        let m = NetProfile::Infiniband.model();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            assert!(m.sample(&mut rng) >= m.base);
        }
    }

    #[test]
    fn tailmix_jitter_bounded_without_tail() {
        let m = TailMix::jittered(Duration::from_micros(2), Duration::from_micros(1));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let d = m.sample(&mut rng);
            assert!(d >= Duration::from_micros(2) && d <= Duration::from_micros(3));
        }
    }

    #[test]
    fn tcp_profile_has_heavier_tail_than_infiniband() {
        let mut rng = StdRng::seed_from_u64(3);
        let p99 = |m: &TailMix, rng: &mut StdRng| {
            let mut xs: Vec<Duration> = (0..20_000).map(|_| m.sample(rng)).collect();
            xs.sort();
            xs[(xs.len() as f64 * 0.99) as usize]
        };
        let ib = NetProfile::Infiniband.model();
        let tcp = NetProfile::TcpDatacenter.model();
        let ib99 = p99(&ib, &mut rng);
        let tcp99 = p99(&tcp, &mut rng);
        // Tail amplification relative to base must be much worse for TCP.
        let ib_ratio = ib99.as_nanos() as f64 / ib.base.as_nanos() as f64;
        let tcp_ratio = tcp99.as_nanos() as f64 / tcp.base.as_nanos() as f64;
        assert!(tcp_ratio > ib_ratio * 2.0, "ib={ib_ratio:.2} tcp={tcp_ratio:.2}");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = NetProfile::TcpDatacenter.model();
        let run = || {
            let mut rng = StdRng::seed_from_u64(99);
            (0..100).map(|_| m.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
