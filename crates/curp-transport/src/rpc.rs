//! The transport-agnostic RPC interface.
//!
//! The protocol crates depend on these two traits only. Handlers are
//! `Arc`-shared, object-safe, and return boxed futures so that both the
//! in-memory simulator and the TCP transport can drive them.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

use curp_proto::message::{Request, Response};
use curp_proto::types::ServerId;

use crate::error::RpcError;

/// A boxed, sendable future — the return type of object-safe async traits.
pub type BoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + Send + 'a>>;

/// Drives a set of futures concurrently and collects their outputs in input
/// order (a minimal `futures::future::join_all`).
pub async fn join_all<F, T>(futs: impl IntoIterator<Item = F>) -> Vec<T>
where
    F: Future<Output = T> + Send + 'static,
    T: Send + 'static,
{
    let handles: Vec<_> = futs.into_iter().map(tokio::spawn).collect();
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await.expect("joined task panicked"));
    }
    out
}

/// Client half: issue a request to a server and await its response.
pub trait RpcClient: Send + Sync + 'static {
    /// Sends `req` to `to` and resolves with its response.
    ///
    /// Implementations must be safe to call concurrently from many tasks;
    /// CURP clients deliberately issue the master update and all witness
    /// records in parallel (§3.2.1).
    fn call(&self, to: ServerId, req: Request) -> BoxFuture<'static, Result<Response, RpcError>>;

    /// Sends a batch of independent requests to `to` and resolves with the
    /// positionally matched responses (`responses[i]` answers `reqs[i]`).
    ///
    /// Transports that understand [`Request::Batch`] override this to flush
    /// the whole batch as one write and demultiplex the single
    /// [`Response::Batch`] reply; the default implementation issues the
    /// calls individually but concurrently, so any `RpcClient` is batchable.
    /// An empty batch resolves to an empty vector without touching the
    /// network. On `Ok`, the response count always equals the request count.
    fn call_batch(
        &self,
        to: ServerId,
        reqs: Vec<Request>,
    ) -> BoxFuture<'static, Result<Vec<Response>, RpcError>> {
        let futs: Vec<_> = reqs.into_iter().map(|r| self.call(to, r)).collect();
        Box::pin(async move { join_all(futs).await.into_iter().collect() })
    }
}

/// Server half: handle one request.
pub trait RpcHandler: Send + Sync + 'static {
    /// Processes `req` from `from` and produces a response.
    fn handle(&self, from: ServerId, req: Request) -> BoxFuture<'static, Response>;
}

/// Blanket impl so plain async closures can serve as handlers in tests.
impl<F, Fut> RpcHandler for F
where
    F: Fn(ServerId, Request) -> Fut + Send + Sync + 'static,
    Fut: Future<Output = Response> + Send + 'static,
{
    fn handle(&self, from: ServerId, req: Request) -> BoxFuture<'static, Response> {
        Box::pin(self(from, req))
    }
}

/// An [`RpcClient`] that is shared behind an `Arc`.
pub type SharedClient = Arc<dyn RpcClient>;

/// An [`RpcHandler`] that is shared behind an `Arc`.
pub type SharedHandler = Arc<dyn RpcHandler>;

impl RpcClient for Arc<dyn RpcClient> {
    fn call(&self, to: ServerId, req: Request) -> BoxFuture<'static, Result<Response, RpcError>> {
        (**self).call(to, req)
    }

    fn call_batch(
        &self,
        to: ServerId,
        reqs: Vec<Request>,
    ) -> BoxFuture<'static, Result<Vec<Response>, RpcError>> {
        // Forward explicitly so the inner transport's batched fast path is
        // reached through `Arc<dyn RpcClient>` too (the default method would
        // otherwise silently fall back to one-call-per-request).
        (**self).call_batch(to, reqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curp_proto::types::MasterId;

    #[tokio::test]
    async fn closures_are_handlers() {
        let h: SharedHandler = Arc::new(|_from: ServerId, req: Request| async move {
            match req {
                Request::Sync { .. } => Response::SyncDone,
                _ => Response::NotOwner,
            }
        });
        assert_eq!(
            h.handle(ServerId(1), Request::Sync { master_id: MasterId(1) }).await,
            Response::SyncDone
        );
        assert_eq!(h.handle(ServerId(1), Request::GetConfig).await, Response::NotOwner);
    }
}
