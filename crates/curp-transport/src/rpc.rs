//! The transport-agnostic RPC interface.
//!
//! The protocol crates depend on these two traits only. Handlers are
//! `Arc`-shared, object-safe, and return boxed futures so that both the
//! in-memory simulator and the TCP transport can drive them.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

use curp_proto::message::{Request, Response};
use curp_proto::types::ServerId;

use crate::error::RpcError;

/// A boxed, sendable future — the return type of object-safe async traits.
pub type BoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + Send + 'a>>;

/// Client half: issue a request to a server and await its response.
pub trait RpcClient: Send + Sync + 'static {
    /// Sends `req` to `to` and resolves with its response.
    ///
    /// Implementations must be safe to call concurrently from many tasks;
    /// CURP clients deliberately issue the master update and all witness
    /// records in parallel (§3.2.1).
    fn call(&self, to: ServerId, req: Request) -> BoxFuture<'static, Result<Response, RpcError>>;
}

/// Server half: handle one request.
pub trait RpcHandler: Send + Sync + 'static {
    /// Processes `req` from `from` and produces a response.
    fn handle(&self, from: ServerId, req: Request) -> BoxFuture<'static, Response>;
}

/// Blanket impl so plain async closures can serve as handlers in tests.
impl<F, Fut> RpcHandler for F
where
    F: Fn(ServerId, Request) -> Fut + Send + Sync + 'static,
    Fut: Future<Output = Response> + Send + 'static,
{
    fn handle(&self, from: ServerId, req: Request) -> BoxFuture<'static, Response> {
        Box::pin(self(from, req))
    }
}

/// An [`RpcClient`] that is shared behind an `Arc`.
pub type SharedClient = Arc<dyn RpcClient>;

/// An [`RpcHandler`] that is shared behind an `Arc`.
pub type SharedHandler = Arc<dyn RpcHandler>;

impl RpcClient for Arc<dyn RpcClient> {
    fn call(&self, to: ServerId, req: Request) -> BoxFuture<'static, Result<Response, RpcError>> {
        (**self).call(to, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn closures_are_handlers() {
        let h: SharedHandler = Arc::new(|_from: ServerId, req: Request| async move {
            match req {
                Request::Sync => Response::SyncDone,
                _ => Response::NotOwner,
            }
        });
        assert_eq!(h.handle(ServerId(1), Request::Sync).await, Response::SyncDone);
        assert_eq!(h.handle(ServerId(1), Request::GetConfig).await, Response::NotOwner);
    }
}
