//! Transport layer for CURP.
//!
//! CURP makes *no assumptions about the network* (§3.1): it tolerates
//! arbitrary delay, reordering and loss. This crate provides the two
//! transports the rest of the workspace runs on, behind one pair of traits:
//!
//! * [`mem::MemNetwork`] — an in-process network whose per-link
//!   latencies are drawn from configurable [`latency`] models and which can
//!   inject drops, partitions and crashes. Under tokio's *paused* clock it
//!   behaves as a deterministic discrete-event simulator, which is how the
//!   paper's latency figures are regenerated on any machine.
//! * [`tcp`] — a real tokio TCP transport with length-prefixed frames and
//!   per-connection multiplexing, used by the runnable examples.
//!
//! Protocol code (masters, witnesses, clients, …) is written against
//! [`rpc::RpcClient`]/[`rpc::RpcHandler`] only and is
//! oblivious to which transport carries its messages.

pub mod error;
pub mod latency;
pub mod mem;
pub mod rpc;
pub mod tcp;

pub use error::RpcError;
pub use latency::{LatencyModel, NetProfile};
pub use mem::MemNetwork;
pub use rpc::{BoxFuture, RpcClient, RpcHandler};
