//! Transport-level errors.

use std::fmt;

use curp_proto::types::ServerId;
use curp_proto::wire::DecodeError;

/// Errors surfaced by an RPC call.
///
/// These are *transport* failures only. Protocol-level refusals (witness
/// rejection, stale witness lists, …) travel inside
/// [`Response`](curp_proto::message::Response) variants, because the caller
/// must distinguish "the network lost my request" (retry) from "the server
/// told me no" (take the slow path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// No response arrived within the caller's deadline. The request may or
    /// may not have executed — exactly the ambiguity RIFL exists to resolve.
    Timeout {
        /// The unresponsive server.
        to: ServerId,
    },
    /// The destination is not reachable (crashed, partitioned, or never
    /// registered).
    Unreachable {
        /// The unreachable server.
        to: ServerId,
    },
    /// The connection failed mid-call (TCP transport).
    ConnectionReset {
        /// The peer whose connection dropped.
        to: ServerId,
    },
    /// The peer sent bytes that did not decode.
    Malformed(DecodeError),
    /// The peer's reply to a [`curp_proto::message::Request::Batch`] was not
    /// a batch of the same arity, so responses cannot be matched to their
    /// requests.
    BatchMismatch {
        /// The misbehaving server.
        to: ServerId,
    },
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout { to } => write!(f, "rpc to {to} timed out"),
            RpcError::Unreachable { to } => write!(f, "server {to} unreachable"),
            RpcError::ConnectionReset { to } => write!(f, "connection to {to} reset"),
            RpcError::Malformed(e) => write!(f, "malformed response: {e}"),
            RpcError::BatchMismatch { to } => {
                write!(f, "batch reply from {to} did not match the request batch")
            }
        }
    }
}

impl std::error::Error for RpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for RpcError {
    fn from(e: DecodeError) -> Self {
        RpcError::Malformed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_server() {
        let e = RpcError::Timeout { to: ServerId(7) };
        assert!(e.to_string().contains("s7"));
    }

    #[test]
    fn decode_error_converts() {
        let e: RpcError = DecodeError::InvalidBool(3).into();
        assert!(matches!(e, RpcError::Malformed(_)));
    }
}
