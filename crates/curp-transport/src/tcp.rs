//! Real TCP transport on tokio.
//!
//! Wire format: each connection carries length-prefixed frames
//! ([`curp_proto::frame`]) containing [`RpcEnvelope`]s. Requests and
//! responses are multiplexed on one connection per peer pair and correlated
//! by `corr_id`, so many RPCs can be in flight concurrently — a CURP client
//! issues its master update and witness records in parallel over independent
//! connections.
//!
//! Topology: every server binds a [`TcpServer`]; a [`TcpRouter`] maps logical
//! [`ServerId`]s to socket addresses and lends out [`RpcClient`] handles that
//! lazily open (and cache) one connection per destination.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::BytesMut;
use curp_proto::frame::{write_frame, write_frame_encoded, FrameDecoder};
use curp_proto::lockrank;
use curp_proto::message::{Request, Response, RpcEnvelope};
use curp_proto::types::ServerId;
use curp_proto::wire::{Decode, Encode};
use parking_lot::Mutex;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::{mpsc, oneshot};

use crate::error::RpcError;
use crate::rpc::{join_all, BoxFuture, RpcClient, SharedHandler};

/// Default per-RPC deadline for the TCP transport.
pub const DEFAULT_RPC_TIMEOUT: Duration = Duration::from_secs(5);

/// A running TCP RPC server.
///
/// Dropping the handle does not stop the accept loop; call
/// [`shutdown`](TcpServer::shutdown) for a clean stop (used by the crash
/// tests and examples).
pub struct TcpServer {
    local_addr: SocketAddr,
    shutdown: Option<oneshot::Sender<()>>,
}

impl TcpServer {
    /// Binds `addr` and serves `handler` until shut down.
    ///
    /// `id` is the logical identity this server reports as the *source* of
    /// responses; the handler receives the peer's claimed id from the
    /// envelope-carrying connection (first frame of each connection is a
    /// hello frame carrying the peer's [`ServerId`]).
    pub async fn bind(addr: SocketAddr, handler: SharedHandler) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        let (tx, mut rx) = oneshot::channel();
        tokio::spawn(async move {
            loop {
                tokio::select! {
                    _ = &mut rx => break,
                    accepted = listener.accept() => {
                        let Ok((stream, _peer)) = accepted else { break };
                        let handler = Arc::clone(&handler);
                        tokio::spawn(async move {
                            let _ = serve_connection(stream, handler).await;
                        });
                    }
                }
            }
        });
        Ok(TcpServer { local_addr, shutdown: Some(tx) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting new connections. In-flight connections finish their
    /// current requests and then error out.
    pub fn shutdown(mut self) {
        if let Some(tx) = self.shutdown.take() {
            let _ = tx.send(());
        }
    }
}

async fn serve_connection(stream: TcpStream, handler: SharedHandler) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let (mut rd, wr) = stream.into_split();
    // The write half shares one persistent encode buffer: every response
    // frame is encoded into it under the write lock and the buffer's
    // capacity is reused across the connection's lifetime (no fresh
    // `BytesMut` per outbound frame).
    let wr = Arc::new(tokio::sync::Mutex::new((wr, BytesMut::new())));
    let mut decoder = FrameDecoder::new();
    let mut read_buf = vec![0u8; 64 * 1024];
    // First frame identifies the peer.
    let mut peer_id: Option<ServerId> = None;
    loop {
        let n = rd.read(&mut read_buf).await?;
        if n == 0 {
            return Ok(());
        }
        decoder.push(&read_buf[..n]);
        while let Some(frame) =
            decoder.next_frame().map_err(|e| std::io::Error::other(e.to_string()))?
        {
            let Some(from) = peer_id else {
                // Hello frame: 8-byte peer id.
                let id = ServerId::from_bytes(&frame)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                peer_id = Some(id);
                continue;
            };
            // Zero-copy decode chain: the envelope's payload windows into
            // the frame, and the request's keys/values window into the
            // payload — one allocation (the read buffer) per frame.
            let env = RpcEnvelope::from_bytes_shared(frame)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            if env.is_response {
                // Servers only receive requests on inbound connections.
                continue;
            }
            let corr_id = env.corr_id;
            let req = match Request::from_bytes_shared(env.payload) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let handler = Arc::clone(&handler);
            let wr = Arc::clone(&wr);
            tokio::spawn(async move {
                let rsp = match req {
                    // A batch frame: handle every inner request concurrently
                    // and flush ONE positionally-ordered reply envelope (one
                    // write), however the handlers' completions interleave.
                    Request::Batch { requests } => {
                        let futs: Vec<_> =
                            requests.into_iter().map(|r| handler.handle(from, r)).collect();
                        Response::Batch { responses: join_all(futs).await }
                    }
                    req => handler.handle(from, req).await,
                };
                let reply = RpcEnvelope { corr_id, is_response: true, payload: rsp.to_bytes() };
                let mut guard = wr.lock().await;
                let (wr, buf) = &mut *guard;
                buf.clear();
                write_frame_encoded(&reply, buf);
                let _ = wr.write_all(buf).await;
                // One oversized response (snapshot transfer) must not pin
                // its capacity for the connection's lifetime.
                if buf.capacity() > 1024 * 1024 {
                    *buf = BytesMut::new();
                }
            });
        }
    }
}

type Pending = Arc<Mutex<HashMap<u64, oneshot::Sender<Response>>>>;

struct Connection {
    tx: mpsc::UnboundedSender<RpcEnvelope>,
    pending: Pending,
}

struct RouterInner {
    self_id: ServerId,
    routes: Mutex<HashMap<ServerId, SocketAddr>>,
    conns: tokio::sync::Mutex<HashMap<ServerId, Arc<Connection>>>,
    next_corr: AtomicU64,
    timeout: Duration,
}

/// Maps logical server ids to socket addresses and issues RPC clients.
#[derive(Clone)]
pub struct TcpRouter {
    inner: Arc<RouterInner>,
}

impl TcpRouter {
    /// Creates a router that identifies itself as `self_id` to peers.
    pub fn new(self_id: ServerId) -> Self {
        TcpRouter {
            inner: Arc::new(RouterInner {
                self_id,
                routes: Mutex::ranked(lockrank::TCP_ROUTES, "transport.tcp.routes", HashMap::new()),
                conns: tokio::sync::Mutex::new(HashMap::new()),
                next_corr: AtomicU64::new(1),
                timeout: DEFAULT_RPC_TIMEOUT,
            }),
        }
    }

    /// Registers the address of a logical server.
    pub fn add_route(&self, id: ServerId, addr: SocketAddr) {
        self.inner.routes.lock().insert(id, addr);
    }

    /// Returns an [`RpcClient`] that dials through this router.
    pub fn client(&self) -> Arc<dyn RpcClient> {
        Arc::new(self.clone())
    }

    async fn connection(&self, to: ServerId) -> Result<Arc<Connection>, RpcError> {
        let mut conns = self.inner.conns.lock().await;
        if let Some(c) = conns.get(&to) {
            if !c.tx.is_closed() {
                return Ok(Arc::clone(c));
            }
            conns.remove(&to);
        }
        let addr =
            self.inner.routes.lock().get(&to).copied().ok_or(RpcError::Unreachable { to })?;
        let stream = TcpStream::connect(addr).await.map_err(|_| RpcError::Unreachable { to })?;
        stream.set_nodelay(true).ok();
        let (mut rd, mut wr) = stream.into_split();
        let pending: Pending =
            Arc::new(Mutex::ranked(lockrank::TCP_PENDING, "transport.tcp.pending", HashMap::new()));

        // Writer task: owns one persistent encode buffer for the life of
        // the connection — envelopes are framed into it in place (no fresh
        // `BytesMut` per outbound frame) and queued envelopes coalesce into
        // a single write. The hello frame identifying this peer is staged
        // in the buffer up front and rides out with the first payload
        // write: one packet instead of two under TCP_NODELAY.
        let (tx, mut rx) = mpsc::unbounded_channel::<RpcEnvelope>();
        let self_id = self.inner.self_id;
        tokio::spawn(async move {
            // Cap how much backlog one write coalesces (a slow peer can
            // queue arbitrarily much), and release capacity after a burst
            // so one multi-megabyte sync doesn't pin its high-water
            // allocation for the connection's lifetime.
            const COALESCE_LIMIT: usize = 256 * 1024;
            const RETAIN_LIMIT: usize = 1024 * 1024;
            let mut buf = BytesMut::new();
            write_frame(&self_id.to_bytes(), &mut buf);
            while let Some(env) = rx.recv().await {
                write_frame_encoded(&env, &mut buf);
                // Coalesce whatever else is already queued, up to the cap.
                while buf.len() < COALESCE_LIMIT {
                    let Ok(next) = rx.try_recv() else { break };
                    write_frame_encoded(&next, &mut buf);
                }
                if wr.write_all(&buf).await.is_err() {
                    break;
                }
                buf.clear();
                if buf.capacity() > RETAIN_LIMIT {
                    buf = BytesMut::new();
                }
            }
        });

        // Reader task: correlate responses.
        let pending_rd = Arc::clone(&pending);
        tokio::spawn(async move {
            let mut decoder = FrameDecoder::new();
            let mut buf = vec![0u8; 64 * 1024];
            while let Ok(n) = rd.read(&mut buf).await {
                if n == 0 {
                    break;
                }
                decoder.push(&buf[..n]);
                loop {
                    let frame = match decoder.next_frame() {
                        Ok(Some(frame)) => frame,
                        Ok(None) => break,
                        Err(_) => return,
                    };
                    let Ok(env) = RpcEnvelope::from_bytes_shared(frame) else { continue };
                    if !env.is_response {
                        continue;
                    }
                    let Ok(rsp) = Response::from_bytes_shared(env.payload) else { continue };
                    if let Some(waiter) = pending_rd.lock().remove(&env.corr_id) {
                        let _ = waiter.send(rsp);
                    }
                }
            }
            // Connection died: fail all waiters by dropping their senders.
            pending_rd.lock().clear();
        });

        let conn = Arc::new(Connection { tx, pending });
        conns.insert(to, Arc::clone(&conn));
        Ok(conn)
    }

    async fn do_call(self, to: ServerId, req: Request) -> Result<Response, RpcError> {
        let conn = self.connection(to).await?;
        let corr_id = self.inner.next_corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = oneshot::channel();
        conn.pending.lock().insert(corr_id, tx);
        let env = RpcEnvelope { corr_id, is_response: false, payload: req.to_bytes() };
        if conn.tx.send(env).is_err() {
            conn.pending.lock().remove(&corr_id);
            return Err(RpcError::ConnectionReset { to });
        }
        match tokio::time::timeout(self.inner.timeout, rx).await {
            Ok(Ok(rsp)) => Ok(rsp),
            Ok(Err(_)) => Err(RpcError::ConnectionReset { to }),
            Err(_) => {
                conn.pending.lock().remove(&corr_id);
                Err(RpcError::Timeout { to })
            }
        }
    }
}

impl RpcClient for TcpRouter {
    fn call(&self, to: ServerId, req: Request) -> BoxFuture<'static, Result<Response, RpcError>> {
        Box::pin(self.clone().do_call(to, req))
    }

    fn call_batch(
        &self,
        to: ServerId,
        reqs: Vec<Request>,
    ) -> BoxFuture<'static, Result<Vec<Response>, RpcError>> {
        // One Batch frame, one envelope, one writer-task write; the reply is
        // a single Response::Batch demultiplexed back into per-op responses.
        let router = self.clone();
        Box::pin(async move {
            if reqs.is_empty() {
                return Ok(Vec::new());
            }
            let n = reqs.len();
            match router.do_call(to, Request::Batch { requests: reqs }).await? {
                Response::Batch { responses } if responses.len() == n => Ok(responses),
                _ => Err(RpcError::BatchMismatch { to }),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curp_proto::types::MasterId;

    fn handler() -> SharedHandler {
        Arc::new(|from: ServerId, req: Request| async move {
            match req {
                Request::Sync { .. } => Response::SyncDone,
                Request::RenewLease { client } => Response::Lease {
                    client,
                    // Echo the peer id back so tests can verify the hello frame.
                    ttl_ms: from.0,
                },
                _ => Response::NotOwner,
            }
        })
    }

    #[tokio::test]
    async fn tcp_roundtrip() {
        let server = TcpServer::bind("127.0.0.1:0".parse().unwrap(), handler()).await.unwrap();
        let router = TcpRouter::new(ServerId(77));
        router.add_route(ServerId(1), server.local_addr());
        let client = router.client();
        let rsp = client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.unwrap();
        assert_eq!(rsp, Response::SyncDone);
        server.shutdown();
    }

    #[tokio::test]
    async fn hello_frame_identifies_peer() {
        let server = TcpServer::bind("127.0.0.1:0".parse().unwrap(), handler()).await.unwrap();
        let router = TcpRouter::new(ServerId(42));
        router.add_route(ServerId(1), server.local_addr());
        let rsp = router
            .client()
            .call(ServerId(1), Request::RenewLease { client: curp_proto::types::ClientId(0) })
            .await
            .unwrap();
        assert_eq!(rsp, Response::Lease { client: curp_proto::types::ClientId(0), ttl_ms: 42 });
        server.shutdown();
    }

    #[tokio::test]
    async fn concurrent_calls_multiplex_one_connection() {
        let server = TcpServer::bind("127.0.0.1:0".parse().unwrap(), handler()).await.unwrap();
        let router = TcpRouter::new(ServerId(7));
        router.add_route(ServerId(1), server.local_addr());
        let client = router.client();
        let mut joins = Vec::new();
        for _ in 0..100 {
            let c = Arc::clone(&client);
            joins.push(tokio::spawn(async move {
                c.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await
            }));
        }
        for j in joins {
            assert_eq!(j.await.unwrap().unwrap(), Response::SyncDone);
        }
        server.shutdown();
    }

    #[tokio::test]
    async fn batch_flushes_once_and_demuxes_out_of_order_completions() {
        use curp_proto::types::ClientId;
        use std::sync::atomic::AtomicU64;
        // Earlier requests sleep longer, so inner handlers complete in
        // reverse order; the reply must still be positionally correct.
        let arrivals = Arc::new(AtomicU64::new(0));
        let handler: SharedHandler = Arc::new(move |_from: ServerId, req: Request| {
            let order = arrivals.fetch_add(1, Ordering::Relaxed);
            async move {
                tokio::time::sleep(Duration::from_millis(40u64.saturating_sub(order * 10))).await;
                match req {
                    Request::RenewLease { client } => Response::Lease { client, ttl_ms: order },
                    _ => Response::NotOwner,
                }
            }
        });
        let server = TcpServer::bind("127.0.0.1:0".parse().unwrap(), handler).await.unwrap();
        let router = TcpRouter::new(ServerId(7));
        router.add_route(ServerId(1), server.local_addr());
        let reqs: Vec<Request> =
            (0..4).map(|i| Request::RenewLease { client: ClientId(i) }).collect();
        let rsps = router.client().call_batch(ServerId(1), reqs).await.unwrap();
        for (i, rsp) in rsps.iter().enumerate() {
            assert_eq!(*rsp, Response::Lease { client: ClientId(i as u64), ttl_ms: i as u64 });
        }
        server.shutdown();
    }

    #[tokio::test]
    async fn unknown_route_unreachable() {
        let router = TcpRouter::new(ServerId(7));
        let err = router
            .client()
            .call(ServerId(5), Request::Sync { master_id: MasterId(1) })
            .await
            .unwrap_err();
        assert_eq!(err, RpcError::Unreachable { to: ServerId(5) });
    }

    #[tokio::test]
    async fn reconnects_after_server_restart() {
        let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let server = TcpServer::bind(addr, handler()).await.unwrap();
        let bound = server.local_addr();
        let router = TcpRouter::new(ServerId(7));
        router.add_route(ServerId(1), bound);
        let client = router.client();
        assert!(client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.is_ok());
        server.shutdown();
        // Give the OS a moment to tear down, then restart on the same port.
        tokio::time::sleep(Duration::from_millis(50)).await;
        let server2 = TcpServer::bind(bound, handler()).await.unwrap();
        // First call may race the dead connection; retry once.
        let mut ok = false;
        for _ in 0..20 {
            if client.call(ServerId(1), Request::Sync { master_id: MasterId(1) }).await.is_ok() {
                ok = true;
                break;
            }
            tokio::time::sleep(Duration::from_millis(20)).await;
        }
        assert!(ok, "client never reconnected");
        server2.shutdown();
    }
}
