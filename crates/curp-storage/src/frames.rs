//! The one torn-tail-vs-corruption load discipline, shared by every
//! length-prefixed log in the system (the backup AOF, the coordinator's
//! intent log, the witness journal, and the tiered store's run files).
//!
//! All of these logs are append-only streams of [`write_frame`]-encoded
//! records whose fsync precedes the ack, so a crash can only leave a
//! *prefix* of the bytes that were written. Loading therefore
//! distinguishes exactly three shapes:
//!
//! * clean EOF — every frame decodes; `truncated == false`;
//! * torn tail — leftover bytes after the last complete frame, or a
//!   *final* complete-but-undecodable frame (a tear can land inside the
//!   payload after the length prefix): the tail is dropped and reported
//!   via `truncated`, never an error, because the record it described was
//!   never acknowledged;
//! * mid-log corruption — an undecodable record with complete frames
//!   *after* it, or an out-of-bounds length prefix (a torn append writes
//!   the 4 header bytes before any payload, so a tear leaves a *short*
//!   header, not a wrong one): `InvalidData`, because silently skipping
//!   it would drop acknowledged state.
//!
//! Known limit (shared by all call sites): an in-place bit flip that turns
//! a length prefix into a different *in-bounds* value makes the rest of
//! the file parse as one incomplete frame, indistinguishable from a tear
//! without per-record checksums — this loader detects torn writes and
//! payload corruption, not adversarial in-place media corruption.
//!
//! [`write_frame`]: curp_proto::frame::write_frame

use std::fs::File;
use std::io::Read;
use std::path::Path;

use bytes::Bytes;
use curp_proto::frame::FrameDecoder;

/// What [`decode_frames`] found in a raw log byte stream.
#[derive(Debug, Default)]
pub struct FramesOutcome<T> {
    /// Every record of the clean prefix, in append order.
    pub records: Vec<T>,
    /// Whether a torn tail (incomplete or undecodable final record) was
    /// dropped. The file must be cut back to `clean_len` before appending
    /// again: a new record written after leftover torn bytes hides behind
    /// their stale length prefix and poisons the next load.
    pub truncated: bool,
    /// Byte length of the clean prefix (`records` re-encoded).
    pub clean_len: u64,
}

/// Reads and decodes the log at `path`; a missing file is an empty log.
/// See [`decode_frames`] for the torn-tail-vs-corruption semantics.
pub fn load_framed<T>(
    path: &Path,
    what: &str,
    decode: impl FnMut(Bytes) -> Result<T, String>,
) -> std::io::Result<FramesOutcome<T>> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    decode_frames(&raw, what, decode)
}

/// Decodes a raw framed byte stream under the module's discipline.
///
/// `what` names the log in error messages (`"intent"`, `"journal"`, …; an
/// empty string for the plain AOF). `decode` turns one complete frame into
/// a record; its `Err` string is appended to the corruption message when
/// non-empty. A decode failure on the *final* frame is treated as a torn
/// tail; anywhere else it is `InvalidData`.
pub fn decode_frames<T>(
    raw: &[u8],
    what: &str,
    mut decode: impl FnMut(Bytes) -> Result<T, String>,
) -> std::io::Result<FramesOutcome<T>> {
    let corrupt = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let noun = |base: &str| {
        if what.is_empty() {
            base.to_string()
        } else {
            format!("{what} {base}")
        }
    };
    let mut decoder = FrameDecoder::new();
    decoder.push(raw);
    let mut frames = Vec::new();
    loop {
        match decoder.next_frame() {
            Ok(Some(frame)) => frames.push(frame),
            // Leftover bytes are a torn (incomplete) final record.
            Ok(None) => break,
            Err(e) => return Err(corrupt(format!("corrupt {} header: {e}", noun("frame")))),
        }
    }
    let mut outcome =
        FramesOutcome { records: Vec::new(), truncated: decoder.buffered() > 0, clean_len: 0 };
    let last = frames.len();
    for (i, frame) in frames.into_iter().enumerate() {
        let frame_len = 4 + frame.len() as u64;
        match decode(frame) {
            Ok(r) => {
                outcome.records.push(r);
                outcome.clean_len += frame_len;
            }
            // A final undecodable frame is indistinguishable from a torn
            // write; one followed by complete frames is not.
            Err(_) if i + 1 == last => {
                outcome.truncated = true;
                break;
            }
            Err(e) => {
                let detail = if e.is_empty() { String::new() } else { format!(": {e}") };
                return Err(corrupt(format!(
                    "corrupt {} {i} with {} complete frames after it{detail}",
                    noun("record"),
                    last - i - 1
                )));
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use curp_proto::frame::write_frame;

    fn framed(payloads: &[&[u8]]) -> Vec<u8> {
        let mut buf = BytesMut::new();
        for p in payloads {
            write_frame(p, &mut buf);
        }
        buf.to_vec()
    }

    fn utf8(frame: Bytes) -> Result<String, String> {
        String::from_utf8(frame.to_vec()).map_err(|e| e.to_string())
    }

    #[test]
    fn clean_stream_decodes_every_record() {
        let raw = framed(&[b"a", b"bc"]);
        let out = decode_frames(&raw, "", utf8).unwrap();
        assert_eq!(out.records, vec!["a".to_string(), "bc".to_string()]);
        assert!(!out.truncated);
        assert_eq!(out.clean_len, raw.len() as u64);
    }

    #[test]
    fn leftover_bytes_are_a_tear_not_an_error() {
        let mut raw = framed(&[b"a"]);
        let clean = raw.len() as u64;
        raw.extend_from_slice(&[9, 0, 0]); // short header
        let out = decode_frames(&raw, "", utf8).unwrap();
        assert_eq!(out.records.len(), 1);
        assert!(out.truncated);
        assert_eq!(out.clean_len, clean);
    }

    #[test]
    fn final_undecodable_frame_is_a_tear() {
        let raw = framed(&[b"a", &[0xFF, 0xFE]]);
        let out = decode_frames(&raw, "", utf8).unwrap();
        assert_eq!(out.records.len(), 1);
        assert!(out.truncated);
        assert_eq!(out.clean_len, framed(&[b"a"]).len() as u64);
    }

    #[test]
    fn mid_log_bad_record_is_invalid_data() {
        let raw = framed(&[&[0xFF, 0xFE], b"a"]);
        let err = decode_frames(&raw, "journal", utf8).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
        assert!(err.to_string().contains("journal record 0"), "{err}");
    }

    #[test]
    fn out_of_bounds_length_prefix_is_invalid_data() {
        let mut raw = framed(&[b"a"]);
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(b"junk");
        let err = decode_frames(&raw, "", utf8).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn missing_file_loads_empty() {
        let out = load_framed(Path::new("/nonexistent/curp-frames-test"), "", utf8).unwrap();
        assert!(out.records.is_empty() && !out.truncated && out.clean_len == 0);
    }
}
