//! In-memory, log-position-tracking object store.
//!
//! Models RAMCloud's log-structured memory closely enough for CURP: every
//! mutation is assigned a monotonically increasing log position and the
//! object's index entry remembers the position of its last update. The
//! master's commutativity check (§4.3) then reduces to a comparison of that
//! position against the last synced position: *"If the object values are
//! stored in a log structure, masters can determine if an object value is
//! synced or not by comparing its position in the log against the last
//! synced position."*
//!
//! The store is deterministic: executing the same operation sequence on two
//! stores yields identical state and identical results. Backups and recovery
//! masters rely on this to rebuild state by replaying the replicated
//! operation log.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use curp_proto::op::{Op, OpResult};

/// A stored value. Redis-style typed values share the store with plain
/// strings; type confusion yields [`OpResult::WrongType`], as in Redis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A byte-string value (`PUT`/`GET`).
    Str(Bytes),
    /// A field map (`HSET`/`HGET`).
    Hash(HashMap<Bytes, Bytes>),
    /// A 64-bit signed counter (`INCR`).
    Counter(i64),
    /// An ordered list (`RPUSH`).
    List(Vec<Bytes>),
    /// An unordered set (`SADD`).
    Set(HashSet<Bytes>),
}

/// An object plus its replication metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// Current value.
    pub value: Value,
    /// Version, monotonically increasing per key. Versions survive deletion
    /// (RAMCloud semantics), so a `ConditionalPut` cannot be fooled by a
    /// delete/re-create cycle.
    pub version: u64,
    /// Log position of the last mutation of this key.
    pub write_pos: u64,
}

/// Exported store state: live `(key, object)` pairs plus `(key, version)`
/// memory for deleted keys, both sorted by key.
pub type StoreExport = (Vec<(Bytes, Object)>, Vec<(Bytes, u64)>);

/// One key space: the per-key state of a store *without* the log counters.
///
/// [`Store`] owns exactly one key space plus a local position counter; the
/// sharded engine ([`ShardedStore`](crate::sharded::ShardedStore)) owns one
/// key space per shard behind its own lock, all sharing a global atomic
/// position counter. Every mutation path is written once, here, against an
/// injected position allocator, so the two engines cannot drift.
#[derive(Debug, Default, Clone)]
pub(crate) struct KeySpace {
    pub(crate) objects: HashMap<Bytes, Object>,
    /// Version memory for deleted keys (see [`Object::version`]).
    pub(crate) dead_versions: HashMap<Bytes, u64>,
    /// Log positions of unsynced deletions; entries are pruned once synced
    /// or when the key is re-created.
    pub(crate) tombstones: HashMap<Bytes, u64>,
}

impl KeySpace {
    /// Executes `op` against this key space, drawing log positions from
    /// `next_pos` only for successful mutations (see [`Store::execute`] for
    /// the contract). `MultiPut` writes every pair into *this* space — the
    /// sharded engine routes each pair itself and never sends a multi-key op
    /// here.
    pub(crate) fn execute(&mut self, op: &Op, next_pos: &mut impl FnMut() -> u64) -> OpResult {
        match op {
            Op::Get { key } => match self.objects.get(key).map(|o| &o.value) {
                None => OpResult::Value(None),
                Some(Value::Str(b)) => OpResult::Value(Some(b.clone())),
                Some(Value::Counter(c)) => OpResult::Value(Some(Bytes::from(c.to_string()))),
                Some(_) => OpResult::WrongType,
            },
            Op::Put { key, value } => {
                let version = self.write(key, Value::Str(value.clone()), next_pos);
                OpResult::Written { version }
            }
            Op::Delete { key } => OpResult::Written { version: self.delete(key, next_pos()) },
            Op::ConditionalPut { key, expected_version, value } => {
                let actual = self.current_version(key);
                if actual != *expected_version {
                    return OpResult::ConditionFailed { actual_version: actual };
                }
                let version = self.write(key, Value::Str(value.clone()), next_pos);
                OpResult::Written { version }
            }
            Op::MultiPut { kvs } => {
                let mut last_version = 0;
                for (key, value) in kvs {
                    last_version = self.write(key, Value::Str(value.clone()), next_pos);
                }
                OpResult::Written { version: last_version }
            }
            Op::Incr { key, delta } => match self.objects.get_mut(key) {
                Some(obj) => {
                    let new = match &obj.value {
                        Value::Counter(c) => c.wrapping_add(*delta),
                        Value::Str(s) => {
                            match std::str::from_utf8(s).ok().and_then(|s| s.parse::<i64>().ok()) {
                                Some(c) => c.wrapping_add(*delta),
                                None => return OpResult::WrongType,
                            }
                        }
                        _ => return OpResult::WrongType,
                    };
                    obj.value = Value::Counter(new);
                    Self::touch_in_place(obj, next_pos());
                    OpResult::Counter(new)
                }
                None => {
                    self.write(key, Value::Counter(*delta), next_pos);
                    OpResult::Counter(*delta)
                }
            },
            Op::HSet { key, field, value } => match self.objects.get_mut(key) {
                Some(obj) => match &mut obj.value {
                    Value::Hash(h) => {
                        h.insert(field.clone(), value.clone());
                        let version = Self::touch_in_place(obj, next_pos());
                        OpResult::Written { version }
                    }
                    _ => OpResult::WrongType,
                },
                None => {
                    let hash = HashMap::from([(field.clone(), value.clone())]);
                    let version = self.write(key, Value::Hash(hash), next_pos);
                    OpResult::Written { version }
                }
            },
            Op::HGet { key, field } => match self.objects.get(key).map(|o| &o.value) {
                None => OpResult::Value(None),
                Some(Value::Hash(h)) => OpResult::Value(h.get(field).cloned()),
                Some(_) => OpResult::WrongType,
            },
            Op::ListPush { key, value } => match self.objects.get_mut(key) {
                Some(obj) => match &mut obj.value {
                    Value::List(l) => {
                        l.push(value.clone());
                        let len = l.len() as i64;
                        Self::touch_in_place(obj, next_pos());
                        OpResult::Counter(len)
                    }
                    _ => OpResult::WrongType,
                },
                None => {
                    self.write(key, Value::List(vec![value.clone()]), next_pos);
                    OpResult::Counter(1)
                }
            },
            Op::SetAdd { key, member } => match self.objects.get_mut(key) {
                Some(obj) => match &mut obj.value {
                    Value::Set(s) => {
                        let added = s.insert(member.clone()) as i64;
                        Self::touch_in_place(obj, next_pos());
                        OpResult::Counter(added)
                    }
                    _ => OpResult::WrongType,
                },
                None => {
                    self.write(key, Value::Set(HashSet::from([member.clone()])), next_pos);
                    OpResult::Counter(1)
                }
            },
        }
    }

    /// Commits an in-place mutation of a live object at log position `pos`:
    /// bumps the version and returns it. Call only after the mutation
    /// succeeded — failed ops must not consume a log position.
    fn touch_in_place(obj: &mut Object, pos: u64) -> u64 {
        obj.write_pos = pos;
        obj.version += 1;
        obj.version
    }

    /// Removes `key` at log position `pos`, remembering its version, and
    /// returns the (surviving) current version.
    pub(crate) fn delete(&mut self, key: &Bytes, pos: u64) -> u64 {
        if let Some(obj) = self.objects.remove(key) {
            self.dead_versions.insert(key.clone(), obj.version);
        }
        self.tombstones.insert(key.clone(), pos);
        self.current_version(key)
    }

    pub(crate) fn current_version(&self, key: &Bytes) -> u64 {
        self.objects
            .get(key)
            .map(|o| o.version)
            .or_else(|| self.dead_versions.get(key).copied())
            .unwrap_or(0)
    }

    /// Returns `true` if `key`'s last mutation sits at or past `synced_pos`.
    pub(crate) fn is_unsynced(&self, key: &[u8], synced_pos: u64) -> bool {
        if let Some(obj) = self.objects.get(key) {
            return obj.write_pos >= synced_pos;
        }
        self.tombstones.get(key).is_some_and(|&pos| pos >= synced_pos)
    }

    /// Drops tombstones whose deletion is now synced (position `< pos`).
    pub(crate) fn prune_tombstones(&mut self, pos: u64) {
        self.tombstones.retain(|_, &mut p| p >= pos);
    }

    /// Appends this space's live objects and dead versions to the caller's
    /// export vectors (unsorted; the caller sorts the merged result).
    pub(crate) fn export_into(
        &self,
        objects: &mut Vec<(Bytes, Object)>,
        dead: &mut Vec<(Bytes, u64)>,
    ) {
        objects.extend(self.objects.iter().map(|(k, o)| (k.clone(), o.clone())));
        dead.extend(self.dead_versions.iter().map(|(k, &v)| (k.clone(), v)));
    }

    /// Moves every entry whose key hash satisfies `belongs` into the
    /// caller's export vectors (unsorted) — the extraction step of a
    /// partition migration.
    pub(crate) fn split_off_into(
        &mut self,
        belongs: &dyn Fn(curp_proto::types::KeyHash) -> bool,
        objects: &mut Vec<(Bytes, Object)>,
        dead: &mut Vec<(Bytes, u64)>,
    ) {
        use curp_proto::types::KeyHash;
        let keys: Vec<Bytes> =
            self.objects.keys().filter(|k| belongs(KeyHash::of(k))).cloned().collect();
        for k in keys {
            // lint: audited-unwrap — key came from self.objects.keys() above
            let o = self.objects.remove(&k).expect("key just listed");
            objects.push((k, o));
        }
        let dead_keys: Vec<Bytes> =
            self.dead_versions.keys().filter(|k| belongs(KeyHash::of(k))).cloned().collect();
        for k in dead_keys {
            // lint: audited-unwrap — key came from self.dead_versions.keys() above
            let v = self.dead_versions.remove(&k).expect("key just listed");
            dead.push((k, v));
        }
    }

    /// Writes `value` at `key` with the next version, drawing the log
    /// position from `next_pos`.
    ///
    /// Overwrites mutate the existing entry in place — no key re-clone, no
    /// hash-map re-insert; only first writes of a key clone it into the map.
    pub(crate) fn write(
        &mut self,
        key: &Bytes,
        value: Value,
        next_pos: &mut impl FnMut() -> u64,
    ) -> u64 {
        let pos = next_pos();
        match self.objects.get_mut(key) {
            Some(obj) => {
                obj.value = value;
                obj.version += 1;
                obj.write_pos = pos;
                obj.version
            }
            None => {
                let version = self.dead_versions.remove(key).unwrap_or(0) + 1;
                self.tombstones.remove(key);
                self.objects.insert(key.clone(), Object { value, version, write_pos: pos });
                version
            }
        }
    }
}

/// The object store. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct Store {
    pub(crate) space: KeySpace,
    /// Next log position to assign (== number of mutations executed).
    pub(crate) log_head: u64,
    /// All mutations with `write_pos < synced_pos` are replicated to backups.
    pub(crate) synced_pos: u64,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.space.objects.len()
    }

    /// Whether the store holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.space.objects.is_empty()
    }

    /// Next log position to be assigned; equals the count of mutations
    /// executed so far.
    pub fn log_head(&self) -> u64 {
        self.log_head
    }

    /// The position up to which mutations are known durable on backups.
    pub fn synced_pos(&self) -> u64 {
        self.synced_pos
    }

    /// Marks every mutation with position `< pos` as synced.
    ///
    /// Called by the master after a successful backup sync. `pos` may not
    /// exceed [`log_head`](Self::log_head) and may not move backwards.
    pub fn mark_synced(&mut self, pos: u64) {
        assert!(pos <= self.log_head, "cannot sync beyond the log head");
        assert!(pos >= self.synced_pos, "synced position cannot move backwards");
        self.synced_pos = pos;
        self.space.prune_tombstones(pos);
    }

    /// Returns `true` if the store has speculative (unsynced) mutations.
    pub fn has_unsynced(&self) -> bool {
        self.synced_pos < self.log_head
    }

    /// Returns `true` if `key`'s last mutation has not been synced.
    ///
    /// This is the §4.3 check. Keys that were never written are synced by
    /// definition; deletion is a mutation, tracked via tombstones.
    pub fn is_unsynced(&self, key: &[u8]) -> bool {
        self.space.is_unsynced(key, self.synced_pos)
    }

    /// Returns `true` if executing `op` would touch (read *or* write, §4.3)
    /// any unsynced object — i.e. `op` does not commute with the set of
    /// currently unsynced operations.
    pub fn touches_unsynced(&self, op: &Op) -> bool {
        op.keys().any(|k| self.is_unsynced(k))
    }

    /// Reads an object (test/debug accessor).
    pub fn get_object(&self, key: &[u8]) -> Option<&Object> {
        self.space.objects.get(key)
    }

    /// Executes `op`, mutating state and returning its result.
    ///
    /// Failed operations (wrong type, failed conditional) do not mutate
    /// state and do not consume a log position, so a log of *executed*
    /// mutations replays to identical state.
    ///
    /// Typed mutations (`HSet`/`ListPush`/`SetAdd`/`Incr`) update the stored
    /// collection *in place* — O(1) amortized per mutation, like Redis —
    /// rather than clone-modify-reinsert (which made every hash/list/set
    /// update O(n) in the collection size). The live-key invariant makes
    /// this safe: a key present in `objects` never appears in
    /// `dead_versions` or `tombstones` (writes purge both; deletes remove
    /// the object first), so the in-place path can skip those purges.
    pub fn execute(&mut self, op: &Op) -> OpResult {
        let mut head = self.log_head;
        let mut next_pos = || {
            let pos = head;
            head += 1;
            pos
        };
        let result = self.space.execute(op, &mut next_pos);
        self.log_head = head;
        result
    }

    /// Exports the full state for snapshotting: live objects plus version
    /// memory of deleted keys, both in deterministic (sorted) order.
    pub fn export(&self) -> StoreExport {
        let mut objects = Vec::with_capacity(self.space.objects.len());
        let mut dead = Vec::with_capacity(self.space.dead_versions.len());
        self.space.export_into(&mut objects, &mut dead);
        objects.sort_by(|a, b| a.0.cmp(&b.0));
        dead.sort_by(|a, b| a.0.cmp(&b.0));
        (objects, dead)
    }

    /// Rebuilds a store from exported state. The imported state is entirely
    /// *synced* (it came from a backup): `log_head == synced_pos == 1` and
    /// every object carries `write_pos == 0`, so nothing reads as unsynced
    /// until the first new mutation.
    pub fn import(objects: Vec<(Bytes, Object)>, dead_versions: Vec<(Bytes, u64)>) -> Self {
        let mut store = Store::new();
        for (k, mut o) in objects {
            o.write_pos = 0;
            store.space.objects.insert(k, o);
        }
        store.space.dead_versions = dead_versions.into_iter().collect();
        store.log_head = 1;
        store.synced_pos = 1;
        store
    }

    /// Removes and returns every object (and dead-version entry) whose key
    /// hash satisfies `belongs`, in sorted order — the data-extraction step
    /// of a partition migration (§3.6). The caller must have synced first so
    /// no unsynced state is silently dropped.
    pub fn split_off(
        &mut self,
        belongs: impl Fn(curp_proto::types::KeyHash) -> bool,
    ) -> StoreExport {
        assert!(!self.has_unsynced(), "must sync before migrating data out");
        let mut objects = Vec::new();
        let mut dead = Vec::new();
        self.space.split_off_into(&belongs, &mut objects, &mut dead);
        objects.sort_by(|a, b| a.0.cmp(&b.0));
        dead.sort_by(|a, b| a.0.cmp(&b.0));
        (objects, dead)
    }
}

// ---- wire codec for snapshot transfer --------------------------------------
//
// Backups ship their materialized state to recovery masters as an opaque
// snapshot blob (Response::BackupData); these impls give `Value` and `Object`
// a deterministic encoding. Hash/set contents are sorted so that equal stores
// encode to identical bytes.

use bytes::{Buf, BufMut};
use curp_proto::wire::{
    decode_seq, encode_seq, need, seq_encoded_len, Decode, DecodeError, Encode,
};

const VAL_STR: u8 = 0;
const VAL_HASH: u8 = 1;
const VAL_COUNTER: u8 = 2;
const VAL_LIST: u8 = 3;
const VAL_SET: u8 = 4;

impl Encode for Value {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Value::Str(b) => {
                buf.put_u8(VAL_STR);
                b.encode(buf);
            }
            Value::Hash(h) => {
                buf.put_u8(VAL_HASH);
                // Sort references, not cloned pairs: determinism costs a
                // pointer sort, never a deep copy of the collection.
                let mut pairs: Vec<(&Bytes, &Bytes)> = h.iter().collect();
                pairs.sort_by(|a, b| a.0.cmp(b.0));
                encode_seq(&pairs, buf);
            }
            Value::Counter(c) => {
                buf.put_u8(VAL_COUNTER);
                c.encode(buf);
            }
            Value::List(l) => {
                buf.put_u8(VAL_LIST);
                encode_seq(l, buf);
            }
            Value::Set(s) => {
                buf.put_u8(VAL_SET);
                let mut members: Vec<&Bytes> = s.iter().collect();
                members.sort();
                encode_seq(&members, buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            Value::Str(b) => b.encoded_len(),
            Value::Hash(h) => {
                4 + h.iter().map(|(k, v)| k.encoded_len() + v.encoded_len()).sum::<usize>()
            }
            Value::Counter(c) => c.encoded_len(),
            Value::List(l) => seq_encoded_len(l),
            Value::Set(s) => 4 + s.iter().map(|m| m.encoded_len()).sum::<usize>(),
        }
    }
}

impl Decode for Value {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(buf, 1)?;
        let tag = buf.get_u8();
        Ok(match tag {
            VAL_STR => Value::Str(Bytes::decode(buf)?),
            VAL_HASH => {
                let pairs: Vec<(Bytes, Bytes)> = decode_seq(buf)?;
                Value::Hash(pairs.into_iter().collect())
            }
            VAL_COUNTER => Value::Counter(i64::decode(buf)?),
            VAL_LIST => Value::List(decode_seq(buf)?),
            VAL_SET => {
                let members: Vec<Bytes> = decode_seq(buf)?;
                Value::Set(members.into_iter().collect())
            }
            tag => return Err(DecodeError::InvalidTag { ty: "Value", tag }),
        })
    }
}

impl Encode for Object {
    fn encode(&self, buf: &mut impl BufMut) {
        self.value.encode(buf);
        self.version.encode(buf);
        self.write_pos.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.value.encoded_len() + 16
    }
}

impl Decode for Object {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(Object {
            value: Value::decode(buf)?,
            version: u64::decode(buf)?,
            write_pos: u64::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn put(store: &mut Store, k: &str, v: &str) -> OpResult {
        store.execute(&Op::Put { key: b(k), value: b(v) })
    }

    fn get(store: &mut Store, k: &str) -> OpResult {
        store.execute(&Op::Get { key: b(k) })
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = Store::new();
        assert_eq!(get(&mut s, "k"), OpResult::Value(None));
        assert_eq!(put(&mut s, "k", "v"), OpResult::Written { version: 1 });
        assert_eq!(get(&mut s, "k"), OpResult::Value(Some(b("v"))));
    }

    #[test]
    fn versions_increase_monotonically() {
        let mut s = Store::new();
        assert_eq!(put(&mut s, "k", "a"), OpResult::Written { version: 1 });
        assert_eq!(put(&mut s, "k", "b"), OpResult::Written { version: 2 });
        s.execute(&Op::Delete { key: b("k") });
        // Version memory survives deletion.
        assert_eq!(put(&mut s, "k", "c"), OpResult::Written { version: 3 });
    }

    #[test]
    fn delete_removes_and_reports_missing() {
        let mut s = Store::new();
        put(&mut s, "k", "v");
        s.execute(&Op::Delete { key: b("k") });
        assert_eq!(get(&mut s, "k"), OpResult::Value(None));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn conditional_put_checks_version() {
        let mut s = Store::new();
        assert_eq!(
            s.execute(&Op::ConditionalPut { key: b("k"), expected_version: 0, value: b("a") }),
            OpResult::Written { version: 1 }
        );
        assert_eq!(
            s.execute(&Op::ConditionalPut { key: b("k"), expected_version: 0, value: b("x") }),
            OpResult::ConditionFailed { actual_version: 1 }
        );
        assert_eq!(
            s.execute(&Op::ConditionalPut { key: b("k"), expected_version: 1, value: b("b") }),
            OpResult::Written { version: 2 }
        );
        assert_eq!(get(&mut s, "k"), OpResult::Value(Some(b("b"))));
    }

    #[test]
    fn failed_conditional_put_consumes_no_log_position() {
        let mut s = Store::new();
        put(&mut s, "k", "a");
        let head = s.log_head();
        s.execute(&Op::ConditionalPut { key: b("k"), expected_version: 99, value: b("x") });
        assert_eq!(s.log_head(), head);
    }

    #[test]
    fn multiput_writes_all_keys() {
        let mut s = Store::new();
        s.execute(&Op::MultiPut { kvs: vec![(b("a"), b("1")), (b("b"), b("2"))] });
        assert_eq!(get(&mut s, "a"), OpResult::Value(Some(b("1"))));
        assert_eq!(get(&mut s, "b"), OpResult::Value(Some(b("2"))));
    }

    #[test]
    fn incr_counts_from_zero_and_wraps_strings() {
        let mut s = Store::new();
        assert_eq!(s.execute(&Op::Incr { key: b("c"), delta: 5 }), OpResult::Counter(5));
        assert_eq!(s.execute(&Op::Incr { key: b("c"), delta: -2 }), OpResult::Counter(3));
        // A numeric string upgrades to a counter, like Redis.
        put(&mut s, "n", "41");
        assert_eq!(s.execute(&Op::Incr { key: b("n"), delta: 1 }), OpResult::Counter(42));
        // GET of a counter renders as its decimal string.
        assert_eq!(get(&mut s, "n"), OpResult::Value(Some(b("42"))));
    }

    #[test]
    fn incr_on_non_numeric_is_wrongtype() {
        let mut s = Store::new();
        put(&mut s, "k", "not-a-number");
        assert_eq!(s.execute(&Op::Incr { key: b("k"), delta: 1 }), OpResult::WrongType);
    }

    #[test]
    fn hash_ops() {
        let mut s = Store::new();
        assert_eq!(s.execute(&Op::HGet { key: b("h"), field: b("f") }), OpResult::Value(None));
        s.execute(&Op::HSet { key: b("h"), field: b("f"), value: b("v") });
        s.execute(&Op::HSet { key: b("h"), field: b("g"), value: b("w") });
        assert_eq!(
            s.execute(&Op::HGet { key: b("h"), field: b("f") }),
            OpResult::Value(Some(b("v")))
        );
        assert_eq!(
            s.execute(&Op::HGet { key: b("h"), field: b("g") }),
            OpResult::Value(Some(b("w")))
        );
        // GET on a hash is a type error.
        assert_eq!(get(&mut s, "h"), OpResult::WrongType);
    }

    #[test]
    fn list_push_returns_length() {
        let mut s = Store::new();
        assert_eq!(s.execute(&Op::ListPush { key: b("l"), value: b("a") }), OpResult::Counter(1));
        assert_eq!(s.execute(&Op::ListPush { key: b("l"), value: b("b") }), OpResult::Counter(2));
    }

    #[test]
    fn set_add_reports_novelty() {
        let mut s = Store::new();
        assert_eq!(s.execute(&Op::SetAdd { key: b("s"), member: b("m") }), OpResult::Counter(1));
        assert_eq!(s.execute(&Op::SetAdd { key: b("s"), member: b("m") }), OpResult::Counter(0));
    }

    #[test]
    fn type_confusion_is_rejected_without_mutation() {
        let mut s = Store::new();
        s.execute(&Op::ListPush { key: b("l"), value: b("a") });
        let head = s.log_head();
        assert_eq!(s.execute(&Op::Incr { key: b("l"), delta: 1 }), OpResult::WrongType);
        assert_eq!(
            s.execute(&Op::HSet { key: b("l"), field: b("f"), value: b("v") }),
            OpResult::WrongType
        );
        assert_eq!(s.execute(&Op::SetAdd { key: b("l"), member: b("m") }), OpResult::WrongType);
        assert_eq!(s.log_head(), head);
    }

    #[test]
    fn unsynced_tracking_follows_sync_frontier() {
        let mut s = Store::new();
        put(&mut s, "a", "1"); // pos 0
        put(&mut s, "b", "2"); // pos 1
        assert!(s.is_unsynced(b"a"));
        assert!(s.is_unsynced(b"b"));
        assert!(!s.is_unsynced(b"never-written"));
        s.mark_synced(1);
        assert!(!s.is_unsynced(b"a"));
        assert!(s.is_unsynced(b"b"));
        s.mark_synced(2);
        assert!(!s.has_unsynced());
    }

    #[test]
    fn rewrite_makes_key_unsynced_again() {
        let mut s = Store::new();
        put(&mut s, "a", "1");
        s.mark_synced(1);
        assert!(!s.is_unsynced(b"a"));
        put(&mut s, "a", "2");
        assert!(s.is_unsynced(b"a"));
    }

    #[test]
    fn unsynced_delete_is_tracked_via_tombstone() {
        let mut s = Store::new();
        put(&mut s, "a", "1");
        s.mark_synced(1);
        s.execute(&Op::Delete { key: b("a") });
        // The delete itself is an unsynced mutation of "a".
        assert!(s.is_unsynced(b"a"));
        s.mark_synced(2);
        assert!(!s.is_unsynced(b"a"));
    }

    #[test]
    fn touches_unsynced_matches_footprint() {
        let mut s = Store::new();
        put(&mut s, "hot", "1");
        assert!(s.touches_unsynced(&Op::Get { key: b("hot") }));
        assert!(!s.touches_unsynced(&Op::Get { key: b("cold") }));
        assert!(s.touches_unsynced(&Op::MultiPut {
            kvs: vec![(b("cold"), b("x")), (b("hot"), b("y"))]
        }));
    }

    #[test]
    #[should_panic(expected = "beyond the log head")]
    fn mark_synced_beyond_head_panics() {
        let mut s = Store::new();
        s.mark_synced(1);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn mark_synced_backwards_panics() {
        let mut s = Store::new();
        put(&mut s, "a", "1");
        put(&mut s, "b", "1");
        s.mark_synced(2);
        s.mark_synced(1);
    }

    #[test]
    fn export_import_roundtrip_is_fully_synced() {
        let mut s = Store::new();
        put(&mut s, "a", "1");
        s.execute(&Op::Incr { key: b("c"), delta: 7 });
        s.execute(&Op::HSet { key: b("h"), field: b("f"), value: b("v") });
        s.execute(&Op::Delete { key: b("dead") }); // version memory for "dead"
        put(&mut s, "dead", "x");
        s.execute(&Op::Delete { key: b("dead") });

        let (objects, dead) = s.export();
        let restored = Store::import(objects, dead);
        assert!(!restored.has_unsynced(), "imported state must be fully synced");
        assert!(!restored.is_unsynced(b"a"));
        let mut r = restored.clone();
        assert_eq!(get(&mut r, "a"), OpResult::Value(Some(b("1"))));
        assert_eq!(r.execute(&Op::Incr { key: b("c"), delta: 1 }), OpResult::Counter(8));
        // Deleted-key version memory survives the snapshot: "dead" reached
        // version 1 before deletion, so its next write is version 2.
        assert_eq!(put(&mut r, "dead", "y"), OpResult::Written { version: 2 });
        // New mutations become unsynced again.
        assert!(r.is_unsynced(b"c"));
    }

    #[test]
    fn value_and_object_codec_roundtrip() {
        use curp_proto::wire::roundtrip;
        roundtrip(&Value::Str(b("hello")));
        roundtrip(&Value::Counter(-9));
        roundtrip(&Value::Hash([(b("f"), b("v")), (b("g"), b("w"))].into_iter().collect()));
        roundtrip(&Value::List(vec![b("a"), b("b")]));
        roundtrip(&Value::Set([b("x"), b("y")].into_iter().collect()));
        roundtrip(&Object { value: Value::Str(b("v")), version: 3, write_pos: 9 });
    }

    #[test]
    fn equal_stores_encode_identically() {
        // Hash maps iterate nondeterministically; the codec must sort.
        let mut h1 = HashMap::new();
        let mut h2 = HashMap::new();
        for i in 0..50 {
            h1.insert(b(&format!("k{i}")), b("v"));
        }
        for i in (0..50).rev() {
            h2.insert(b(&format!("k{i}")), b("v"));
        }
        use curp_proto::wire::Encode;
        assert_eq!(Value::Hash(h1).to_bytes(), Value::Hash(h2).to_bytes());
    }

    #[test]
    fn deterministic_replay_reproduces_state() {
        let ops = [
            Op::Put { key: b("a"), value: b("1") },
            Op::Incr { key: b("c"), delta: 3 },
            Op::HSet { key: b("h"), field: b("f"), value: b("v") },
            Op::Delete { key: b("a") },
            Op::Put { key: b("a"), value: b("2") },
            Op::ListPush { key: b("l"), value: b("x") },
            Op::SetAdd { key: b("s"), member: b("m") },
        ];
        let mut s1 = Store::new();
        let mut s2 = Store::new();
        let r1: Vec<_> = ops.iter().map(|op| s1.execute(op)).collect();
        let r2: Vec<_> = ops.iter().map(|op| s2.execute(op)).collect();
        assert_eq!(r1, r2);
        assert_eq!(s1.space.objects, s2.space.objects);
        assert_eq!(s1.log_head(), s2.log_head());
    }
}
