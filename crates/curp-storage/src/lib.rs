//! Storage substrates for CURP.
//!
//! Two pieces, mirroring the two systems the paper modified:
//!
//! * [`store`] — an in-memory, log-position-tracking object store that plays
//!   the role of RAMCloud's log-structured memory: every mutation is assigned
//!   a monotonically increasing log position, and the store can answer the
//!   question at the heart of the master's commutativity check (§4.3):
//!   *"has the last update of this object been synced to backups?"* by
//!   comparing the object's write position against the last synced position.
//!   Values are typed (string/hash/counter/list/set) so the same store also
//!   backs the Redis experiments (Figures 8–10).
//! * [`sharded`] — the same store split `N` ways by key hash, one lock per
//!   shard and global atomic log counters, so commuting operations (CURP's
//!   fast-path case) execute without contending on a single global lock.
//! * [`aof`] — a Redis-style append-only file with configurable fsync
//!   policy, used to make a cache durable exactly the way §5.4 describes.
//! * [`intent`] — a write-ahead journal of orchestration plans (the same
//!   frame discipline as the AOF), letting a coordinator that crashed
//!   mid-reconfiguration resume-or-abort the in-flight plan on restart.

pub mod aof;
pub mod intent;
pub mod sharded;
pub mod store;
pub mod tempdir;

pub use aof::{fsync_dir, Aof, FsyncPolicy, LoadOutcome};
pub use intent::{IntentLog, OpenPlan};
pub use sharded::{ShardGuards, ShardedStore, DEFAULT_STORE_SHARDS};
pub use store::{Object, Store, Value};
pub use tempdir::TempDir;
