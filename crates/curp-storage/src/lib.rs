//! Storage substrates for CURP.
//!
//! The crate's public surface is the [`StateStore`] trait — the exact
//! boundary `curp-core`'s master and backup consume (execute under shard
//! locks, snapshot export, durable-frontier bookkeeping, quiesce) — plus
//! two engines implementing it and the durable-log primitives they share:
//!
//! * [`ShardedStore`] — the in-memory engine: one [`Store`] key space per
//!   shard behind its own lock, global atomic log counters, so commuting
//!   operations (CURP's fast-path case, §4.3) execute without contending
//!   on a single global lock.
//! * [`TieredStore`] — the larger-than-memory engine: a `ShardedStore`
//!   memtable over sorted-run files ([`RunFile`]) flushed in write
//!   batches with the AOF frame/fsync discipline, a sparse index for
//!   reads that miss the memtable, and background run merging.
//! * [`Store`] — the single-space building block both engines are made
//!   of (and the unit the snapshot codec round-trips through).
//! * [`Aof`] — a Redis-style append-only file with configurable fsync
//!   policy (§5.4), including crash-safe whole-log rewrite
//!   ([`Aof::rewrite`]) for bounded-log compaction.
//! * [`IntentLog`] — a write-ahead journal of orchestration plans,
//!   letting a coordinator that crashed mid-reconfiguration
//!   resume-or-abort the in-flight plan on restart.
//! * [`frames`] — the one torn-tail-vs-corruption framed-log reader all
//!   of the above (and the witness journal in `curp-witness`) share.
//!
//! Construction goes through [`StoreConfig`]: callers pick a shard count
//! and optionally a tier, and get a `Box<dyn StateStore<_>>` without
//! naming an engine.

mod aof;
pub mod frames;
mod intent;
mod runfile;
mod sharded;
mod store;
pub mod tempdir;
mod tiered;

use std::path::PathBuf;

use bytes::Bytes;
use curp_proto::op::Op;

pub use aof::{fsync_dir, Aof, FsyncPolicy, LoadOutcome};
pub use frames::{decode_frames, load_framed, FramesOutcome};
pub use intent::{IntentLog, OpenPlan};
pub use runfile::{RunFile, RunRecord};
pub use sharded::{ShardGuards, ShardedStore, DEFAULT_STORE_SHARDS};
pub use store::{Object, Store, StoreExport, Value};
pub use tempdir::TempDir;
pub use tiered::TieredStore;

/// The storage boundary `curp-core` programs against.
///
/// A `StateStore` is a key-hash-sharded object store with global log
/// counters: every mutation is assigned a monotonically increasing log
/// position, and the store answers the §4.3 commutativity question —
/// *"has the last update of this object been synced to backups?"* — by
/// comparing write positions against the synced frontier.
///
/// All execution goes through [`ShardGuards`], acquired from one of the
/// lock methods: the commute check and the execute that depends on it
/// stay atomic under the same shard locks. `Ext` is the embedding
/// layer's per-shard state (the master's pending-sync queues), carried
/// inside each shard's mutex so it shares the shard's lock.
///
/// # Implementor obligations (DESIGN.md invariant 12)
///
/// * **Locking**: shard locks are acquired in ascending index order,
///   [`lock_all_for`](Self::lock_all_for) quiesces the store, and any
///   engine-internal lock (a tier's run list) is a leaf acquired *after*
///   shard locks, never before.
/// * **Lock-time readiness**: after `lock_for(shards, Some(op))`, every
///   key `op` touches must behave exactly as it would in the in-memory
///   engine — same versions, same dead-key version memory — no matter
///   where the engine keeps cold state. (The tiered engine promotes
///   run-resident keys into its memtable here.)
/// * **Frontier**: no engine may evict, compact, or otherwise discard
///   state recording a mutation at-or-above the synced frontier; only
///   mutations strictly below `synced_pos` are eligible to leave memory.
/// * **Durability**: background file writes (run flushes, merges) follow
///   the AOF discipline — framed records, fsync before the file is
///   relied upon, tmp + rename for atomic replacement.
pub trait StateStore<Ext = ()>: Send + Sync {
    /// Number of shards keys are routed across.
    fn num_shards(&self) -> usize;
    /// The shard index `key` routes to.
    fn shard_of(&self, key: &[u8]) -> usize;
    /// Next log position to be assigned.
    fn log_head(&self) -> u64;
    /// The position up to which mutations are known durable on backups.
    fn synced_pos(&self) -> u64;
    /// Whether the store has speculative (unsynced) mutations.
    fn has_unsynced(&self) -> bool;
    /// Number of live objects resident in memory plus cold tiers.
    fn len(&self) -> usize;
    /// Whether the store holds no live objects anywhere.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Reads an object by cloning it out (test/debug accessor); sees cold
    /// tiers as well as the memtable.
    fn get_object(&self, key: &[u8]) -> Option<Object>;

    /// Locks `shard_set` (strictly ascending, as produced by
    /// [`Footprint::shard_set`](curp_proto::footprint::Footprint::shard_set))
    /// and readies every key of `op` in those shards (see the trait docs'
    /// lock-time readiness obligation).
    fn lock_for<'a>(&'a self, shard_set: &[usize], op: Option<&Op>) -> ShardGuards<'a, Ext>;

    /// Locks every shard in ascending order (quiesce), readying `op`'s
    /// keys if given. While the guards are held no execution is in flight
    /// anywhere in the store.
    fn lock_all_for<'a>(&'a self, op: Option<&Op>) -> ShardGuards<'a, Ext>;

    /// Folds all cold (run-resident) state back into the memtable under
    /// already-held all-shard guards, so guard-level whole-store
    /// operations ([`ShardGuards::export`], [`ShardGuards::split_off`])
    /// see every key. No-op for purely in-memory engines.
    ///
    /// # Panics
    /// Panics if `guards` does not hold all shards or belongs to a
    /// different store.
    fn absorb_runs(&self, guards: &mut ShardGuards<'_, Ext>);

    /// Exports the full state — memtable overlaid on any cold tier — in
    /// deterministic (sorted) order, locking internally for a consistent
    /// cut. Read-only: unlike [`absorb_runs`](Self::absorb_runs) it does
    /// not disturb the tiering.
    fn export(&self) -> StoreExport;

    /// Exports one shard's slice of the state (memtable overlaid on cold
    /// tier, sorted) — the unit of incremental checkpointing.
    fn export_shard(&self, shard: usize) -> StoreExport;

    /// One tick of background maintenance: flush the memtable if it
    /// exceeds its budget, merge runs past the threshold. Never discards
    /// entries at-or-above the durable frontier; on error the store is
    /// unchanged (nothing is evicted before its spill is durable). No-op
    /// for purely in-memory engines.
    fn maintain(&self) -> std::io::Result<()>;
}

/// Tier parameters for [`StoreConfig`].
#[derive(Clone, Debug)]
pub struct TierConfig {
    /// Directory under which the engine creates its private run
    /// directory. Run files are a rebuildable cache: each engine instance
    /// starts from an empty directory and removes it on drop.
    pub root: PathBuf,
    /// Approximate memtable payload bytes above which
    /// [`StateStore::maintain`] flushes synced state to a run file.
    pub memtable_budget: u64,
    /// Run-count threshold above which `maintain` merges all runs into
    /// one.
    pub merge_threshold: usize,
    /// Whether run files are fsynced before use. Disabled only by
    /// benchmarks isolating the software share of the flush path; real
    /// deployments keep it on.
    pub fsync: bool,
}

impl TierConfig {
    /// A tier rooted at `root` with default budget (256 KiB) and merge
    /// threshold (4 runs).
    pub fn new(root: impl Into<PathBuf>) -> TierConfig {
        TierConfig {
            root: root.into(),
            memtable_budget: 256 * 1024,
            merge_threshold: 4,
            fsync: true,
        }
    }
}

/// Engine-agnostic store construction: shard count plus an optional tier.
///
/// This is the one place `curp-core` (and everything above it) decides
/// which [`StateStore`] engine backs a master or backup replica; no
/// caller names `ShardedStore`/`TieredStore` directly.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Shard count for the (mem)table.
    pub shards: usize,
    /// `Some` puts an LSM-lite tier under the memtable.
    pub tier: Option<TierConfig>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig::memory(DEFAULT_STORE_SHARDS)
    }
}

impl StoreConfig {
    /// A purely in-memory store with `shards` shards.
    pub fn memory(shards: usize) -> StoreConfig {
        StoreConfig { shards: shards.max(1), tier: None }
    }

    /// A tiered store: `shards`-way memtable over runs rooted at `root`.
    pub fn tiered(shards: usize, root: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig { shards: shards.max(1), tier: Some(TierConfig::new(root)) }
    }

    /// Builds an empty store.
    ///
    /// # Panics
    /// Panics if a configured tier root cannot be created — a tiered
    /// store without its run directory cannot uphold its eviction
    /// contract, and construction is the config-error boundary.
    pub fn build<Ext: Default + Send + 'static>(&self) -> Box<dyn StateStore<Ext>> {
        self.wrap(ShardedStore::new(self.shards))
    }

    /// Builds a store from a recovered single-space [`Store`], preserving
    /// log positions, the synced frontier, and unsynced-deletion
    /// tombstones (mirrors [`ShardedStore::from_store`]).
    pub fn build_from_store<Ext: Default + Send + 'static>(
        &self,
        store: Store,
    ) -> Box<dyn StateStore<Ext>> {
        self.wrap(ShardedStore::from_store(self.shards, store))
    }

    /// Builds a store from exported state; the result is entirely synced
    /// (mirrors [`ShardedStore::import`]).
    pub fn build_import<Ext: Default + Send + 'static>(
        &self,
        objects: Vec<(Bytes, Object)>,
        dead_versions: Vec<(Bytes, u64)>,
    ) -> Box<dyn StateStore<Ext>> {
        self.wrap(ShardedStore::import(self.shards, objects, dead_versions))
    }

    fn wrap<Ext: Default + Send + 'static>(
        &self,
        mem: ShardedStore<Ext>,
    ) -> Box<dyn StateStore<Ext>> {
        match &self.tier {
            None => Box::new(mem),
            Some(tier) => Box::new(
                TieredStore::over(mem, tier.clone())
                    // deliberate fail-fast: a master must not start over an
                    // unusable tier root. lint: audited-unwrap
                    .expect("tier root unusable; tiered StoreConfig cannot build"),
            ),
        }
    }
}
