//! Redis-style append-only file (AOF).
//!
//! §5.4 of the paper: *"the only way to achieve durability and consistency
//! after crashes is to log client requests to an append-only file and invoke
//! fsync before responding to clients."* This module implements exactly that
//! log: length-prefixed encoded [`LogEntry`]s appended to a file, with an
//! fsync policy controlling when the OS is forced to make them durable.
//!
//! Loading tolerates a torn tail (a crash mid-append): decoding stops at the
//! first incomplete or corrupt record, mirroring Redis' `aof-load-truncated`.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use bytes::BytesMut;
use curp_proto::frame::{write_frame, FrameDecoder};
use curp_proto::message::LogEntry;
use curp_proto::wire::{Decode, Encode};

/// When the AOF forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append — Redis `appendfsync always`, the durable
    /// configuration measured as "Original Redis (durable)" in Figure 8.
    Always,
    /// Caller invokes [`Aof::sync`] explicitly (used with CURP: the log is
    /// written in the background and synced in batches).
    Manual,
    /// Never fsync — Redis' default cache-like behaviour ("Original Redis
    /// (non-durable)").
    Never,
}

/// An append-only log of executed operations.
pub struct Aof {
    file: File,
    policy: FsyncPolicy,
    appended: u64,
    synced: u64,
}

impl Aof {
    /// Opens (creating if missing) the AOF at `path` for appending.
    pub fn open(path: &Path, policy: FsyncPolicy) -> std::io::Result<Aof> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Aof { file, policy, appended: 0, synced: 0 })
    }

    /// Appends one entry; fsyncs if the policy is [`FsyncPolicy::Always`].
    pub fn append(&mut self, entry: &LogEntry) -> std::io::Result<()> {
        let mut buf = BytesMut::with_capacity(entry.encoded_len() + 4);
        write_frame(&entry.to_bytes(), &mut buf);
        self.file.write_all(&buf)?;
        self.appended += 1;
        if self.policy == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(())
    }

    /// Appends a batch of entries with a single write and (policy-dependent)
    /// a single fsync — the batching §C.2 describes for durable Redis.
    pub fn append_batch(&mut self, entries: &[LogEntry]) -> std::io::Result<()> {
        let mut buf = BytesMut::new();
        for e in entries {
            write_frame(&e.to_bytes(), &mut buf);
        }
        self.file.write_all(&buf)?;
        self.appended += entries.len() as u64;
        if self.policy == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces appended entries to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.policy != FsyncPolicy::Never {
            self.file.sync_data()?;
        }
        self.synced = self.appended;
        Ok(())
    }

    /// Entries appended so far in this session.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Entries known durable (fsynced) in this session.
    pub fn synced(&self) -> u64 {
        self.synced
    }

    /// Loads all complete entries from `path`.
    ///
    /// A torn final record (crash mid-write) is silently discarded; any
    /// complete-but-corrupt record stops the load at that point, returning
    /// everything before it.
    pub fn load(path: &Path) -> std::io::Result<Vec<LogEntry>> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let mut decoder = FrameDecoder::new();
        decoder.push(&raw);
        let mut entries = Vec::new();
        while let Ok(Some(frame)) = decoder.next_frame() {
            match LogEntry::from_bytes_shared(frame) {
                Ok(e) => entries.push(e),
                Err(_) => break,
            }
        }
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use curp_proto::op::{Op, OpResult};
    use curp_proto::types::{ClientId, RpcId};

    fn entry(seq: u64) -> LogEntry {
        LogEntry {
            seq,
            rpc_id: Some(RpcId::new(ClientId(1), seq)),
            op: Op::Put { key: Bytes::from(format!("k{seq}")), value: Bytes::from(vec![0u8; 100]) },
            result: OpResult::Written { version: seq + 1 },
        }
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("curp-aof-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_and_load() {
        let path = tmpfile("roundtrip");
        {
            let mut aof = Aof::open(&path, FsyncPolicy::Always).unwrap();
            for i in 0..10 {
                aof.append(&entry(i)).unwrap();
            }
            assert_eq!(aof.appended(), 10);
            assert_eq!(aof.synced(), 10);
        }
        let loaded = Aof::load(&path).unwrap();
        assert_eq!(loaded.len(), 10);
        assert_eq!(loaded[3], entry(3));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_append_counts() {
        let path = tmpfile("batch");
        let mut aof = Aof::open(&path, FsyncPolicy::Manual).unwrap();
        let batch: Vec<_> = (0..5).map(entry).collect();
        aof.append_batch(&batch).unwrap();
        assert_eq!(aof.appended(), 5);
        assert_eq!(aof.synced(), 0, "manual policy defers fsync");
        aof.sync().unwrap();
        assert_eq!(aof.synced(), 5);
        assert_eq!(Aof::load(&path).unwrap().len(), 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_loads_empty() {
        let path = tmpfile("missing");
        assert!(Aof::load(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = tmpfile("torn");
        {
            let mut aof = Aof::open(&path, FsyncPolicy::Always).unwrap();
            for i in 0..3 {
                aof.append(&entry(i)).unwrap();
            }
        }
        // Simulate a crash mid-append: truncate the last record in half.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 20).unwrap();
        drop(f);
        let loaded = Aof::load(&path).unwrap();
        assert_eq!(loaded.len(), 2, "torn third record dropped");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_appends_after_existing_entries() {
        let path = tmpfile("reopen");
        {
            let mut aof = Aof::open(&path, FsyncPolicy::Always).unwrap();
            aof.append(&entry(0)).unwrap();
        }
        {
            let mut aof = Aof::open(&path, FsyncPolicy::Always).unwrap();
            aof.append(&entry(1)).unwrap();
        }
        let loaded = Aof::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[1].seq, 1);
        std::fs::remove_file(&path).unwrap();
    }
}
