//! Redis-style append-only file (AOF).
//!
//! §5.4 of the paper: *"the only way to achieve durability and consistency
//! after crashes is to log client requests to an append-only file and invoke
//! fsync before responding to clients."* This module implements exactly that
//! log: length-prefixed encoded [`LogEntry`]s appended to a file, with an
//! fsync policy controlling when the OS is forced to make them durable.
//!
//! Loading tolerates a torn tail (a crash mid-append, mirroring Redis'
//! `aof-load-truncated`) but refuses real mid-log corruption: the two look
//! nothing alike on disk — a torn append is a missing suffix, while a bad
//! record *followed by complete frames* means the medium lied — and recovery
//! must not silently drop the durable entries behind a corrupt one. The
//! distinction is reported through [`LoadOutcome`].

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use bytes::BytesMut;
use curp_proto::frame::write_frame;
use curp_proto::message::LogEntry;
use curp_proto::wire::{Decode, Encode};

/// When the AOF forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append — Redis `appendfsync always`, the durable
    /// configuration measured as "Original Redis (durable)" in Figure 8.
    Always,
    /// Caller invokes [`Aof::sync`] explicitly (used with CURP: the log is
    /// written in the background and synced in batches).
    Manual,
    /// Never fsync — Redis' default cache-like behaviour ("Original Redis
    /// (non-durable)").
    Never,
}

/// Result of loading an AOF from disk.
///
/// Distinguishes the three on-disk conditions recovery cares about:
///
/// * clean EOF — `truncated == false`;
/// * torn tail (crash mid-append) — `truncated == true`: the incomplete or
///   undecodable final record was discarded, everything before it loaded;
/// * mid-log corruption — [`Aof::load`] returns an error instead (a corrupt
///   record with complete frames *after* it cannot be explained by a torn
///   write, and truncating there would drop durable entries).
#[must_use = "recovery must inspect how much of the log survived"]
#[derive(Debug, Default)]
pub struct LoadOutcome {
    /// Every complete, decodable entry, in file order.
    pub entries: Vec<LogEntry>,
    /// Whether a torn final record was discarded.
    pub truncated: bool,
    /// Byte length of the clean prefix — the frames behind `entries`.
    /// When `truncated`, the file must be cut back to this length before
    /// any further append: new records written after the torn bytes would
    /// sit behind a garbage length prefix and poison the *next* load.
    pub clean_len: u64,
}

/// An append-only log of executed operations.
pub struct Aof {
    file: File,
    policy: FsyncPolicy,
    appended: u64,
    synced: u64,
}

/// Fsyncs `dir` itself, making directory-entry mutations (file creation,
/// rename) durable. On ext4/xfs a file whose *contents* were fsynced can
/// still vanish in a power loss if the directory entry pointing at it was
/// never flushed — every durable-creation path must call this.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

impl Aof {
    /// Opens (creating if missing) the AOF at `path` for appending.
    ///
    /// Unless the policy is [`FsyncPolicy::Never`], a newly created file's
    /// directory entry is made durable too ([`fsync_dir`]): an fsynced log
    /// that can disappear with its directory entry is not a log.
    pub fn open(path: &Path, policy: FsyncPolicy) -> std::io::Result<Aof> {
        let existed = path.exists();
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        if !existed && policy != FsyncPolicy::Never {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                fsync_dir(dir)?;
            }
        }
        Ok(Aof { file, policy, appended: 0, synced: 0 })
    }

    /// Appends one entry; fsyncs if the policy is [`FsyncPolicy::Always`].
    pub fn append(&mut self, entry: &LogEntry) -> std::io::Result<()> {
        let mut buf = BytesMut::with_capacity(entry.encoded_len() + 4);
        write_frame(&entry.to_bytes(), &mut buf);
        self.file.write_all(&buf)?;
        self.appended += 1;
        if self.policy == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(())
    }

    /// Appends a batch of entries with a single write and (policy-dependent)
    /// a single fsync — the batching §C.2 describes for durable Redis.
    pub fn append_batch(&mut self, entries: &[LogEntry]) -> std::io::Result<()> {
        let mut buf = BytesMut::new();
        for e in entries {
            write_frame(&e.to_bytes(), &mut buf);
        }
        self.file.write_all(&buf)?;
        self.appended += entries.len() as u64;
        if self.policy == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces appended entries to stable storage.
    ///
    /// Under [`FsyncPolicy::Never`] this is a no-op and `synced()` does not
    /// advance: the counter promises durability, and without an fsync there
    /// is none to promise.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.policy == FsyncPolicy::Never {
            return Ok(());
        }
        self.file.sync_data()?;
        self.synced = self.appended;
        Ok(())
    }

    /// Entries appended so far in this session.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Entries known durable (fsynced) in this session.
    pub fn synced(&self) -> u64 {
        self.synced
    }

    /// Loads all complete entries from `path`.
    ///
    /// A torn final record (crash mid-write) is discarded and reported via
    /// [`LoadOutcome::truncated`]; a missing file is an empty log. A corrupt
    /// record with complete frames after it — or an out-of-bounds length
    /// prefix, which a torn append cannot produce (append writes the 4
    /// header bytes before any payload, and a tear leaves a *short* header,
    /// not a wrong one) — is real corruption and returns `InvalidData`.
    ///
    /// Known limit: an in-place bit flip that turns a length prefix into a
    /// different *in-bounds* value makes the rest of the file parse as one
    /// incomplete frame, which is indistinguishable from a tear without
    /// per-record checksums — this loader detects torn writes and payload
    /// corruption, not adversarial or silent in-place media corruption.
    pub fn load(path: &Path) -> std::io::Result<LoadOutcome> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LoadOutcome::default()),
            Err(e) => return Err(e),
        };
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        Self::load_frames(&raw)
    }

    /// Decodes a raw AOF byte stream (see [`Aof::load`] for the semantics).
    pub fn load_frames(raw: &[u8]) -> std::io::Result<LoadOutcome> {
        let out = crate::frames::decode_frames(raw, "", |frame| {
            LogEntry::from_bytes_shared(frame).map_err(|e| e.to_string())
        })?;
        Ok(LoadOutcome { entries: out.records, truncated: out.truncated, clean_len: out.clean_len })
    }

    /// Atomically replaces the log at `path` with exactly `entries` and
    /// reopens it for appending under `policy` — the AOF-compaction
    /// primitive behind the backup's bounded-log maintenance.
    ///
    /// Crash-safe by construction: the new content is written to a
    /// sibling `.rewrite` file, fsynced there, and renamed over `path`
    /// (with a directory fsync), so a crash at any byte offset leaves
    /// either the old log or the new one fully loadable — never a spliced
    /// hybrid. The returned handle replaces any prior [`Aof`] for `path`:
    /// the old handle's descriptor points at the unlinked file and must
    /// not be appended to again.
    ///
    /// Callers must make every *dropped* entry durable elsewhere (a
    /// snapshot or checkpoint covering its seq) before calling; the
    /// rewrite itself never checks that (DESIGN.md invariant 12).
    pub fn rewrite(path: &Path, entries: &[LogEntry], policy: FsyncPolicy) -> std::io::Result<Aof> {
        let tmp = path.with_extension("rewrite");
        {
            let mut f = File::create(&tmp)?;
            let mut buf = BytesMut::new();
            for e in entries {
                write_frame(&e.to_bytes(), &mut buf);
            }
            f.write_all(&buf)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        if policy != FsyncPolicy::Never {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                fsync_dir(dir)?;
            }
        }
        let mut aof = Aof::open(path, policy)?;
        // The renamed content is already durable; report it as such so a
        // caller's "synced entries" accounting starts from the rewrite.
        aof.appended = entries.len() as u64;
        aof.synced = if policy == FsyncPolicy::Never { 0 } else { aof.appended };
        Ok(aof)
    }

    /// Cuts a torn tail off the file at `path`, leaving exactly the clean
    /// prefix a prior [`Aof::load`] reported. Recovery must call this
    /// before reopening a truncated log for appending: a new record
    /// written after leftover torn bytes hides behind their stale length
    /// prefix and turns the *next* load into phantom entries or a
    /// corruption error.
    pub fn truncate_to_clean(path: &Path, outcome: &LoadOutcome) -> std::io::Result<()> {
        if !outcome.truncated {
            return Ok(());
        }
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(outcome.clean_len)?;
        f.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use curp_proto::op::{Op, OpResult};
    use curp_proto::types::{ClientId, RpcId};

    fn entry(seq: u64) -> LogEntry {
        LogEntry {
            seq,
            rpc_id: Some(RpcId::new(ClientId(1), seq)),
            op: Op::Put { key: Bytes::from(format!("k{seq}")), value: Bytes::from(vec![0u8; 100]) },
            result: OpResult::Written { version: seq + 1 },
        }
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("curp-aof-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_and_load() {
        let path = tmpfile("roundtrip");
        {
            let mut aof = Aof::open(&path, FsyncPolicy::Always).unwrap();
            for i in 0..10 {
                aof.append(&entry(i)).unwrap();
            }
            assert_eq!(aof.appended(), 10);
            assert_eq!(aof.synced(), 10);
        }
        let loaded = Aof::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 10);
        assert_eq!(loaded.entries[3], entry(3));
        assert!(!loaded.truncated, "clean file must not report a torn tail");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_append_counts() {
        let path = tmpfile("batch");
        let mut aof = Aof::open(&path, FsyncPolicy::Manual).unwrap();
        let batch: Vec<_> = (0..5).map(entry).collect();
        aof.append_batch(&batch).unwrap();
        assert_eq!(aof.appended(), 5);
        assert_eq!(aof.synced(), 0, "manual policy defers fsync");
        aof.sync().unwrap();
        assert_eq!(aof.synced(), 5);
        assert_eq!(Aof::load(&path).unwrap().entries.len(), 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn never_policy_never_reports_synced() {
        let path = tmpfile("never");
        let mut aof = Aof::open(&path, FsyncPolicy::Never).unwrap();
        for i in 0..4 {
            aof.append(&entry(i)).unwrap();
        }
        aof.sync().unwrap();
        assert_eq!(aof.appended(), 4);
        assert_eq!(aof.synced(), 0, "no fsync happened, so nothing is durable");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_loads_empty() {
        let path = tmpfile("missing");
        let loaded = Aof::load(&path).unwrap();
        assert!(loaded.entries.is_empty());
        assert!(!loaded.truncated);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let path = tmpfile("torn");
        {
            let mut aof = Aof::open(&path, FsyncPolicy::Always).unwrap();
            for i in 0..3 {
                aof.append(&entry(i)).unwrap();
            }
        }
        // Simulate a crash mid-append: truncate the last record in half.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 20).unwrap();
        drop(f);
        let loaded = Aof::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2, "torn third record dropped");
        assert!(loaded.truncated, "the tear must be reported");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_an_error_not_a_truncation() {
        let path = tmpfile("midlog");
        {
            let mut aof = Aof::open(&path, FsyncPolicy::Always).unwrap();
            for i in 0..3 {
                aof.append(&entry(i)).unwrap();
            }
        }
        // Corrupt the *second* record's rpc_id Option tag (payload offset 8,
        // after the 8-byte seq): complete frames follow it, so this cannot
        // be a torn append.
        let first_len = 4 + entry(0).to_bytes().len();
        let mut raw = std::fs::read(&path).unwrap();
        raw[first_len + 4 + 8] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let err = Aof::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_length_prefix_is_an_error() {
        let path = tmpfile("badlen");
        {
            let mut aof = Aof::open(&path, FsyncPolicy::Always).unwrap();
            aof.append(&entry(0)).unwrap();
        }
        // Overwrite the length prefix with an absurd declared size. All four
        // header bytes are present, so a torn append cannot explain it.
        let mut raw = std::fs::read(&path).unwrap();
        raw[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &raw).unwrap();
        let err = Aof::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_appends_after_existing_entries() {
        let path = tmpfile("reopen");
        {
            let mut aof = Aof::open(&path, FsyncPolicy::Always).unwrap();
            aof.append(&entry(0)).unwrap();
        }
        {
            let mut aof = Aof::open(&path, FsyncPolicy::Always).unwrap();
            aof.append(&entry(1)).unwrap();
        }
        let loaded = Aof::load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.entries[1].seq, 1);
        std::fs::remove_file(&path).unwrap();
    }
}
