//! Self-cleaning scratch directories for durability tests and examples.
//!
//! The workspace has no `tempfile` dependency (fully offline build), so
//! this is the minimal guard the AOF/journal and power-loss scenarios
//! need: a unique directory under the OS temp root that is removed —
//! recursively — when the guard drops. Keeping cleanup in `Drop` is what
//! lets `cargo test` leave no stray files behind even when an assertion
//! fails mid-test (panic unwinding still runs the destructor). It lives in
//! `curp-storage` (the lowest crate that touches the filesystem) so every
//! downstream crate's tests share one implementation; `curp-sim`
//! re-exports it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under [`std::env::temp_dir`], removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `<temp>/<prefix>-<pid>-<n>` (fresh and empty).
    pub fn new(prefix: &str) -> std::io::Result<TempDir> {
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
        // A stale directory from a killed earlier run (same pid is possible
        // across reboots) must not leak old state into this run.
        if path.exists() {
            std::fs::remove_dir_all(&path)?;
        }
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Guard against ever deleting outside the OS temp root, then clean
        // up best-effort (a failed removal must not abort a panic unwind).
        if self.path.starts_with(std::env::temp_dir()) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let kept;
        {
            let dir = TempDir::new("curp-tempdir-test").unwrap();
            kept = dir.path().to_path_buf();
            std::fs::write(dir.path().join("file"), b"x").unwrap();
            std::fs::create_dir(dir.path().join("sub")).unwrap();
            std::fs::write(dir.path().join("sub/file"), b"y").unwrap();
            assert!(kept.exists());
        }
        assert!(!kept.exists(), "drop must remove the tree");
    }

    #[test]
    fn two_guards_do_not_collide() {
        let a = TempDir::new("curp-tempdir-test").unwrap();
        let b = TempDir::new("curp-tempdir-test").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
