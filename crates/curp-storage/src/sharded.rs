//! The key-hash-sharded execution engine.
//!
//! CURP's whole premise (§3.2.2) is that operations on disjoint keys
//! commute — yet a store behind one global lock serializes them anyway.
//! [`ShardedStore`] splits the key space into `N` shards by
//! [`KeyHash::shard`] (high hash bits), gives each shard its own
//! [`parking_lot::Mutex`], and keeps the log-position counters global and
//! atomic. A single-key operation — the overwhelming fast-path case —
//! touches exactly one shard lock; commuting operations on different shards
//! never contend.
//!
//! ## Locking discipline
//!
//! * Multi-key operations acquire their shard set in **ascending index
//!   order** ([`Footprint::shard_set`](curp_proto::footprint::Footprint::shard_set)
//!   produces exactly that order), which makes every multi-shard lock
//!   acquisition deadlock-free.
//! * Whole-store operations (sync cut, export, migration) acquire **all**
//!   shards, still in ascending order, via [`ShardedStore::lock_all`]. While
//!   all shards are held no execution can be in flight, so the global
//!   position/sequence counters are quiescent — that is what makes the sync
//!   round's merged pending tail a *contiguous* log prefix.
//!
//! ## Determinism
//!
//! Fed the same operation sequence one at a time, a `ShardedStore` produces
//! byte-identical results, versions, log positions, and exports as the
//! single-space [`Store`] — both engines execute through the same
//! (crate-private) `KeySpace` code, and the proptest suite pins the
//! equivalence. Under
//! concurrent execution, positions interleave nondeterministically *across*
//! shards but stay ordered within each key, which is all the §4.3 unsynced
//! check needs.
//!
//! The `Ext` type parameter lets an embedding layer (the CURP master) keep
//! its own per-shard state — pending log tail, hot-key history — inside the
//! same mutex, so the fast path pays exactly one lock acquisition per
//! operation.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use curp_proto::footprint::Footprint;
use curp_proto::op::{Op, OpResult};
use curp_proto::types::KeyHash;
use parking_lot::{Mutex, MutexGuard};

use crate::store::{KeySpace, Object, Store, StoreExport, Value};

/// Default shard count for the execution engine: enough to make commuting
/// operations contention-free across a typical worker pool while keeping
/// whole-store operations (which visit every shard) cheap.
pub const DEFAULT_STORE_SHARDS: usize = 8;

struct Shard<Ext> {
    space: KeySpace,
    ext: Ext,
}

/// A key-hash-sharded [`Store`]: same semantics, per-shard locking.
///
/// All methods take `&self`; concurrent callers serialize only when their
/// operations touch the same shard. See the module docs for the locking
/// discipline and the determinism contract.
pub struct ShardedStore<Ext = ()> {
    shards: Vec<Mutex<Shard<Ext>>>,
    /// Next log position to assign (== number of mutations executed).
    log_head: AtomicU64,
    /// All mutations with `write_pos < synced_pos` are replicated.
    synced_pos: AtomicU64,
}

impl<Ext: Default> ShardedStore<Ext> {
    /// Creates an empty store with `num_shards` shards.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards > 0, "num_shards must be positive");
        assert!(
            num_shards <= curp_proto::lockrank::MAX_SHARDS,
            "num_shards exceeds the lock-rank shard band"
        );
        ShardedStore {
            shards: (0..num_shards)
                .map(|i| {
                    Mutex::ranked(
                        curp_proto::lockrank::STORE_SHARD + i as u32,
                        "store.shard",
                        Shard { space: KeySpace::default(), ext: Ext::default() },
                    )
                })
                .collect(),
            log_head: AtomicU64::new(0),
            synced_pos: AtomicU64::new(0),
        }
    }

    /// Rebuilds a store from exported state, mirroring [`Store::import`]:
    /// the result is entirely synced (`log_head == synced_pos == 1`, every
    /// object at `write_pos == 0`).
    pub fn import(
        num_shards: usize,
        objects: Vec<(Bytes, Object)>,
        dead_versions: Vec<(Bytes, u64)>,
    ) -> Self {
        let store = Self::new(num_shards);
        for (k, mut o) in objects {
            o.write_pos = 0;
            let shard = KeyHash::of(&k).shard(num_shards);
            store.shards[shard].lock().space.objects.insert(k, o);
        }
        for (k, v) in dead_versions {
            let shard = KeyHash::of(&k).shard(num_shards);
            store.shards[shard].lock().space.dead_versions.insert(k, v);
        }
        store.log_head.store(1, Ordering::SeqCst);
        store.synced_pos.store(1, Ordering::SeqCst);
        store
    }

    /// Re-shards a single-space [`Store`] (recovered snapshot, migration
    /// input) into `num_shards` shards, preserving log positions, the
    /// synced frontier, and unsynced-deletion tombstones.
    pub fn from_store(num_shards: usize, store: Store) -> Self {
        let sharded = Self::new(num_shards);
        sharded.log_head.store(store.log_head, Ordering::SeqCst);
        sharded.synced_pos.store(store.synced_pos, Ordering::SeqCst);
        for (k, o) in store.space.objects {
            let shard = KeyHash::of(&k).shard(num_shards);
            sharded.shards[shard].lock().space.objects.insert(k, o);
        }
        for (k, v) in store.space.dead_versions {
            let shard = KeyHash::of(&k).shard(num_shards);
            sharded.shards[shard].lock().space.dead_versions.insert(k, v);
        }
        for (k, p) in store.space.tombstones {
            let shard = KeyHash::of(&k).shard(num_shards);
            sharded.shards[shard].lock().space.tombstones.insert(k, p);
        }
        sharded
    }
}

impl<Ext> ShardedStore<Ext> {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        KeyHash::of(key).shard(self.shards.len())
    }

    /// Next log position to be assigned; equals the count of mutations
    /// executed so far.
    pub fn log_head(&self) -> u64 {
        self.log_head.load(Ordering::SeqCst)
    }

    /// The position up to which mutations are known durable on backups.
    pub fn synced_pos(&self) -> u64 {
        self.synced_pos.load(Ordering::SeqCst)
    }

    /// Returns `true` if the store has speculative (unsynced) mutations.
    pub fn has_unsynced(&self) -> bool {
        self.synced_pos() < self.log_head()
    }

    /// Number of live objects (locks each shard briefly).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().space.objects.len()).sum()
    }

    /// Whether the store holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads an object by cloning it out of its shard (test/debug accessor).
    pub fn get_object(&self, key: &[u8]) -> Option<Object> {
        self.shards[self.shard_of(key)].lock().space.objects.get(key).cloned()
    }

    /// Locks the given shard set — which **must** be ascending and deduped,
    /// as produced by
    /// [`Footprint::shard_set`](curp_proto::footprint::Footprint::shard_set)
    /// — and returns the guards.
    ///
    /// # Panics
    /// Panics if `shard_set` is not strictly ascending or indexes past the
    /// shard count.
    pub fn lock(&self, shard_set: &[usize]) -> ShardGuards<'_, Ext> {
        let repr = match *shard_set {
            [] => GuardsRepr::None,
            [s] => GuardsRepr::One(s, self.shards[s].lock()),
            ref set => {
                let mut guards = Vec::with_capacity(set.len());
                let mut prev = None;
                for &s in set {
                    assert!(
                        prev.is_none_or(|p| p < s),
                        "shard set must be strictly ascending (got {set:?})"
                    );
                    prev = Some(s);
                    guards.push((s, self.shards[s].lock()));
                }
                GuardsRepr::Many(guards)
            }
        };
        ShardGuards { store: self, repr }
    }

    /// Locks every shard in ascending order. While the returned guards are
    /// held no execution is in flight anywhere in the store, so the global
    /// counters are quiescent and whole-store operations (sync cut, export,
    /// migration) see a consistent state.
    pub fn lock_all(&self) -> ShardGuards<'_, Ext> {
        let guards: Vec<_> = self.shards.iter().enumerate().map(|(i, s)| (i, s.lock())).collect();
        ShardGuards { store: self, repr: GuardsRepr::Many(guards) }
    }

    /// Locks the shards `op` touches and returns the guards, routing via
    /// the op's footprint. Single-key ops lock exactly one shard without
    /// materializing a footprint.
    pub fn lock_op(&self, op: &Op) -> ShardGuards<'_, Ext> {
        match op {
            Op::MultiPut { .. } => {
                let set = op.key_hashes().shard_set(self.shards.len());
                self.lock(&set)
            }
            _ => {
                // Single-key op: exactly one shard.
                // lint: audited-unwrap — guarded by the multi_key match arm above
                let key = op.keys().next().expect("single-key op has a key");
                let s = self.shard_of(key);
                ShardGuards { store: self, repr: GuardsRepr::One(s, self.shards[s].lock()) }
            }
        }
    }

    /// Executes `op`, locking its shard set internally. Equivalent to
    /// `self.lock_op(op).execute(op)`.
    pub fn execute(&self, op: &Op) -> OpResult {
        self.lock_op(op).execute(op)
    }

    /// Returns `true` if `key`'s last mutation has not been synced (§4.3).
    /// Locks the key's shard briefly; callers that need the answer to stay
    /// atomic with a subsequent execute must go through [`lock`](Self::lock)
    /// and use [`ShardGuards::touches_unsynced`] instead.
    pub fn is_unsynced(&self, key: &[u8]) -> bool {
        let synced = self.synced_pos();
        self.shards[self.shard_of(key)].lock().space.is_unsynced(key, synced)
    }

    /// Returns `true` if executing `op` would touch any unsynced object.
    /// Same atomicity caveat as [`is_unsynced`](Self::is_unsynced).
    pub fn touches_unsynced(&self, op: &Op) -> bool {
        op.keys().any(|k| self.is_unsynced(k))
    }

    /// Marks every mutation with position `< pos` as synced, locking all
    /// shards. See [`ShardGuards::mark_synced`] for the guard-held variant.
    pub fn mark_synced(&self, pos: u64) {
        self.lock_all().mark_synced(pos);
    }

    /// Exports the full state in deterministic (sorted) order, locking all
    /// shards for a consistent cut.
    pub fn export(&self) -> StoreExport {
        self.lock_all().export()
    }

    /// Exports one shard's state in deterministic (sorted) order, locking
    /// only that shard — the unit of incremental checkpointing.
    pub fn export_shard(&self, idx: usize) -> StoreExport {
        let mut objects = Vec::new();
        let mut dead = Vec::new();
        self.shards[idx].lock().space.export_into(&mut objects, &mut dead);
        objects.sort_by(|a, b| a.0.cmp(&b.0));
        dead.sort_by(|a, b| a.0.cmp(&b.0));
        (objects, dead)
    }

    /// Removes and returns every entry whose key hash satisfies `belongs`,
    /// in sorted order (§3.6 migration). The caller must have synced first.
    ///
    /// # Panics
    /// Panics if the store still has unsynced mutations.
    pub fn split_off(&self, belongs: impl Fn(KeyHash) -> bool) -> StoreExport {
        self.lock_all().split_off(&belongs)
    }
}

impl<Ext> std::fmt::Debug for ShardedStore<Ext> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("num_shards", &self.shards.len())
            .field("log_head", &self.log_head())
            .field("synced_pos", &self.synced_pos())
            .finish_non_exhaustive()
    }
}

enum GuardsRepr<'a, Ext> {
    None,
    /// Single-key fast path: no heap allocation for the guard set.
    One(usize, MutexGuard<'a, Shard<Ext>>),
    Many(Vec<(usize, MutexGuard<'a, Shard<Ext>>)>),
}

/// A locked set of shards, acquired in ascending index order.
///
/// Holding the guards pins every key routed to those shards: the commute
/// check ([`touches_unsynced`](Self::touches_unsynced)) and the execution
/// that depends on it stay atomic, exactly as they were under the old
/// global lock — but only for the keys this operation touches.
#[must_use = "shard guards that are immediately dropped release the shards"]
pub struct ShardGuards<'a, Ext> {
    store: &'a ShardedStore<Ext>,
    repr: GuardsRepr<'a, Ext>,
}

impl<'a, Ext> ShardGuards<'a, Ext> {
    /// Whether every shard of the store is held.
    fn holds_all(&self) -> bool {
        match &self.repr {
            GuardsRepr::Many(v) => v.len() == self.store.shards.len(),
            GuardsRepr::One(..) => self.store.shards.len() == 1,
            GuardsRepr::None => self.store.shards.is_empty(),
        }
    }

    fn shard(&self, idx: usize) -> &Shard<Ext> {
        match &self.repr {
            GuardsRepr::One(s, g) if *s == idx => g,
            GuardsRepr::Many(v) => match v.iter().find(|(s, _)| *s == idx) {
                Some((_, g)) => g,
                None => panic!("operation touched shard {idx} outside its lock set"),
            },
            _ => panic!("operation touched shard {idx} outside its lock set"),
        }
    }

    fn shard_mut(&mut self, idx: usize) -> &mut Shard<Ext> {
        match &mut self.repr {
            GuardsRepr::One(s, g) if *s == idx => g,
            GuardsRepr::Many(v) => match v.iter_mut().find(|(s, _)| *s == idx) {
                Some((_, g)) => g,
                None => panic!("operation touched shard {idx} outside its lock set"),
            },
            _ => panic!("operation touched shard {idx} outside its lock set"),
        }
    }

    /// Executes `op` against the held shards, drawing log positions from
    /// the store's global counter and hashing each key for routing. Callers
    /// that already computed the op's footprint should prefer
    /// [`execute_routed`](Self::execute_routed), which reuses it. Only
    /// shards in the lock set may be touched; a routing mismatch panics (it
    /// would be a protocol bug).
    pub fn execute(&mut self, op: &Op) -> OpResult {
        self.execute_routed(op, &op.key_hashes())
    }

    /// Like [`execute`](Self::execute), but routes through `footprint` —
    /// the op's [`Op::key_hashes`] computed once per RPC — instead of
    /// re-hashing every key under the shard lock.
    pub fn execute_routed(&mut self, op: &Op, footprint: &Footprint) -> OpResult {
        debug_assert_eq!(&op.key_hashes(), footprint, "footprint must match the op");
        let store = self.store;
        let num_shards = store.shards.len();
        let mut next_pos = || store.log_head.fetch_add(1, Ordering::SeqCst);
        match op {
            // Multi-key: route each write to its own shard, consuming
            // positions in pair order — the same order the single-space
            // engine uses, so sequential runs stay byte-identical.
            Op::MultiPut { kvs } => {
                let mut last_version = 0;
                for ((key, value), &h) in kvs.iter().zip(footprint.iter()) {
                    let idx = h.shard(num_shards);
                    last_version = self.shard_mut(idx).space.write(
                        key,
                        Value::Str(value.clone()),
                        &mut next_pos,
                    );
                }
                OpResult::Written { version: last_version }
            }
            _ => {
                let idx = footprint[0].shard(num_shards);
                self.shard_mut(idx).space.execute(op, &mut next_pos)
            }
        }
    }

    /// The §4.3 check against the held shards: `true` if `op` touches any
    /// unsynced object. Hashes each key for routing; callers holding the
    /// precomputed footprint should prefer
    /// [`touches_unsynced_routed`](Self::touches_unsynced_routed).
    pub fn touches_unsynced(&self, op: &Op) -> bool {
        let synced = self.store.synced_pos();
        op.keys().any(|k| {
            let idx = self.store.shard_of(k);
            self.shard(idx).space.is_unsynced(k, synced)
        })
    }

    /// Like [`touches_unsynced`](Self::touches_unsynced), routing through
    /// the precomputed `footprint` instead of re-hashing each key.
    pub fn touches_unsynced_routed(&self, op: &Op, footprint: &Footprint) -> bool {
        debug_assert_eq!(&op.key_hashes(), footprint, "footprint must match the op");
        let synced = self.store.synced_pos();
        let num_shards = self.store.shards.len();
        op.keys().zip(footprint.iter()).any(|(k, &h)| {
            let idx = h.shard(num_shards);
            self.shard(idx).space.is_unsynced(k, synced)
        })
    }

    /// The embedding layer's state for shard `idx` (must be held).
    pub fn ext(&self, idx: usize) -> &Ext {
        &self.shard(idx).ext
    }

    /// Mutable access to the embedding layer's state for shard `idx`.
    pub fn ext_mut(&mut self, idx: usize) -> &mut Ext {
        &mut self.shard_mut(idx).ext
    }

    /// Visits `(shard index, ext)` for every held shard, in ascending order.
    pub fn for_each_ext_mut(&mut self, mut f: impl FnMut(usize, &mut Ext)) {
        match &mut self.repr {
            GuardsRepr::None => {}
            GuardsRepr::One(s, g) => f(*s, &mut g.ext),
            GuardsRepr::Many(v) => v.iter_mut().for_each(|(s, g)| f(*s, &mut g.ext)),
        }
    }

    /// Marks every mutation with position `< pos` as synced. Requires all
    /// shards to be held (the frontier is global).
    ///
    /// # Panics
    /// Panics if not all shards are held, if `pos` exceeds the log head, or
    /// if `pos` moves backwards.
    pub fn mark_synced(&mut self, pos: u64) {
        assert!(self.holds_all(), "mark_synced requires all shards locked");
        assert!(pos <= self.store.log_head(), "cannot sync beyond the log head");
        assert!(pos >= self.store.synced_pos(), "synced position cannot move backwards");
        self.store.synced_pos.store(pos, Ordering::SeqCst);
        self.for_each_shard_mut(|shard| shard.space.prune_tombstones(pos));
    }

    /// Exports the held shards' state in deterministic (sorted) order.
    /// Requires all shards to be held so the cut is a whole-store snapshot.
    pub fn export(&self) -> StoreExport {
        assert!(self.holds_all(), "export requires all shards locked");
        let mut objects = Vec::new();
        let mut dead = Vec::new();
        self.for_each_shard(|shard| shard.space.export_into(&mut objects, &mut dead));
        objects.sort_by(|a, b| a.0.cmp(&b.0));
        dead.sort_by(|a, b| a.0.cmp(&b.0));
        (objects, dead)
    }

    /// Extracts every entry whose key hash satisfies `belongs`, sorted
    /// (§3.6 migration). Requires all shards held and a fully synced store.
    pub fn split_off(&mut self, belongs: &dyn Fn(KeyHash) -> bool) -> StoreExport {
        assert!(self.holds_all(), "split_off requires all shards locked");
        assert!(!self.store.has_unsynced(), "must sync before migrating data out");
        let mut objects = Vec::new();
        let mut dead = Vec::new();
        self.for_each_shard_mut(|shard| {
            shard.space.split_off_into(belongs, &mut objects, &mut dead)
        });
        objects.sort_by(|a, b| a.0.cmp(&b.0));
        dead.sort_by(|a, b| a.0.cmp(&b.0));
        (objects, dead)
    }

    /// Crate-internal: whether every shard is held (the tiered engine's
    /// `absorb_runs` precondition check).
    pub(crate) fn holds_all_shards(&self) -> bool {
        self.holds_all()
    }

    /// Crate-internal: whether these guards lock `store` (the tiered
    /// engine hands out its memtable's guards and must reject foreign
    /// ones in `absorb_runs`).
    pub(crate) fn guards_store(&self, store: &ShardedStore<Ext>) -> bool {
        std::ptr::eq(self.store, store)
    }

    /// Crate-internal: a held shard's key space (tiered promotion).
    pub(crate) fn space_mut(&mut self, idx: usize) -> &mut KeySpace {
        &mut self.shard_mut(idx).space
    }

    /// Crate-internal: visits `(shard index, key space)` for every held
    /// shard in ascending order (tiered flush/absorb).
    pub(crate) fn for_each_space_mut(&mut self, mut f: impl FnMut(usize, &mut KeySpace)) {
        match &mut self.repr {
            GuardsRepr::None => {}
            GuardsRepr::One(s, g) => f(*s, &mut g.space),
            GuardsRepr::Many(v) => v.iter_mut().for_each(|(s, g)| f(*s, &mut g.space)),
        }
    }

    fn for_each_shard(&self, mut f: impl FnMut(&Shard<Ext>)) {
        match &self.repr {
            GuardsRepr::None => {}
            GuardsRepr::One(_, g) => f(g),
            GuardsRepr::Many(v) => v.iter().for_each(|(_, g)| f(g)),
        }
    }

    fn for_each_shard_mut(&mut self, mut f: impl FnMut(&mut Shard<Ext>)) {
        match &mut self.repr {
            GuardsRepr::None => {}
            GuardsRepr::One(_, g) => f(g),
            GuardsRepr::Many(v) => v.iter_mut().for_each(|(_, g)| f(g)),
        }
    }
}

/// The in-memory engine is the reference [`crate::StateStore`]: every key is
/// always resident, so lock-time readiness and `absorb_runs` are no-ops
/// and maintenance has nothing to do.
impl<Ext: Send> crate::StateStore<Ext> for ShardedStore<Ext> {
    fn num_shards(&self) -> usize {
        ShardedStore::num_shards(self)
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        ShardedStore::shard_of(self, key)
    }

    fn log_head(&self) -> u64 {
        ShardedStore::log_head(self)
    }

    fn synced_pos(&self) -> u64 {
        ShardedStore::synced_pos(self)
    }

    fn has_unsynced(&self) -> bool {
        ShardedStore::has_unsynced(self)
    }

    fn len(&self) -> usize {
        ShardedStore::len(self)
    }

    fn get_object(&self, key: &[u8]) -> Option<Object> {
        ShardedStore::get_object(self, key)
    }

    fn lock_for<'a>(&'a self, shard_set: &[usize], _op: Option<&Op>) -> ShardGuards<'a, Ext> {
        self.lock(shard_set)
    }

    fn lock_all_for<'a>(&'a self, _op: Option<&Op>) -> ShardGuards<'a, Ext> {
        self.lock_all()
    }

    fn absorb_runs(&self, guards: &mut ShardGuards<'_, Ext>) {
        assert!(guards.guards_store(self), "absorb_runs with foreign guards");
        assert!(guards.holds_all_shards(), "absorb_runs requires all shards locked");
    }

    fn export(&self) -> StoreExport {
        ShardedStore::export(self)
    }

    fn export_shard(&self, shard: usize) -> StoreExport {
        ShardedStore::export_shard(self, shard)
    }

    fn maintain(&self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn put(store: &ShardedStore, k: &str, v: &str) -> OpResult {
        store.execute(&Op::Put { key: b(k), value: b(v) })
    }

    #[test]
    fn matches_single_space_store_sequentially() {
        let sharded: ShardedStore = ShardedStore::new(4);
        let mut single = Store::new();
        let ops = [
            Op::Put { key: b("a"), value: b("1") },
            Op::Incr { key: b("c"), delta: 3 },
            Op::MultiPut { kvs: vec![(b("x"), b("1")), (b("y"), b("2")), (b("a"), b("3"))] },
            Op::Delete { key: b("a") },
            Op::Put { key: b("a"), value: b("2") },
            Op::HSet { key: b("h"), field: b("f"), value: b("v") },
            Op::ConditionalPut { key: b("x"), expected_version: 99, value: b("no") },
            Op::Get { key: b("a") },
        ];
        for op in &ops {
            assert_eq!(sharded.execute(op), single.execute(op), "diverged on {op:?}");
            assert_eq!(sharded.log_head(), single.log_head());
        }
        assert_eq!(sharded.export(), single.export());
        assert_eq!(sharded.len(), single.len());
    }

    #[test]
    fn single_key_ops_touch_one_shard() {
        let store: ShardedStore = ShardedStore::new(8);
        put(&store, "k", "v");
        let shard = store.shard_of(b"k");
        // Every other shard stays empty.
        for i in 0..8 {
            let guards = store.lock(&[i]);
            let mut count = 0;
            guards.for_each_shard(|s| count = s.space.objects.len());
            assert_eq!(count, usize::from(i == shard));
        }
    }

    #[test]
    fn unsynced_frontier_is_global_across_shards() {
        let store: ShardedStore = ShardedStore::new(4);
        put(&store, "a", "1"); // pos 0
        put(&store, "b", "2"); // pos 1
        assert!(store.is_unsynced(b"a"));
        assert!(store.is_unsynced(b"b"));
        store.mark_synced(1);
        assert!(!store.is_unsynced(b"a"));
        assert!(store.is_unsynced(b"b"));
        store.mark_synced(2);
        assert!(!store.has_unsynced());
        // Deletion is a tracked mutation.
        store.execute(&Op::Delete { key: b("a") });
        assert!(store.is_unsynced(b"a"));
        store.mark_synced(3);
        assert!(!store.is_unsynced(b"a"));
    }

    #[test]
    fn guards_keep_check_and_execute_atomic() {
        let store: ShardedStore = ShardedStore::new(4);
        put(&store, "hot", "1");
        let op = Op::Put { key: b("hot"), value: b("2") };
        let set = op.key_hashes().shard_set(4);
        let mut guards = store.lock(&set);
        assert!(guards.touches_unsynced(&op));
        assert_eq!(guards.execute(&op), OpResult::Written { version: 2 });
    }

    #[test]
    #[should_panic(expected = "outside its lock set")]
    fn executing_outside_lock_set_panics() {
        let store: ShardedStore = ShardedStore::new(8);
        // Find two keys on different shards.
        let (a, bk) = (
            b("k0"),
            (1..100)
                .map(|i| format!("k{i}"))
                .find(|k| store.shard_of(k.as_bytes()) != store.shard_of(b"k0"))
                .unwrap(),
        );
        let op_a = Op::Put { key: a, value: b("v") };
        let set = op_a.key_hashes().shard_set(8);
        let mut guards = store.lock(&set);
        guards.execute(&Op::Put { key: Bytes::from(bk), value: b("v") });
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn descending_lock_order_is_rejected() {
        let store: ShardedStore = ShardedStore::new(4);
        let _ = store.lock(&[2, 1]);
    }

    #[test]
    fn import_mirrors_store_import() {
        let mut single = Store::new();
        single.execute(&Op::Put { key: b("a"), value: b("1") });
        single.execute(&Op::Incr { key: b("c"), delta: 7 });
        single.execute(&Op::Delete { key: b("dead") });
        let (objects, dead) = single.export();
        let from_single = Store::import(objects.clone(), dead.clone());
        let sharded: ShardedStore = ShardedStore::import(4, objects, dead);
        assert!(!sharded.has_unsynced(), "imported state must be fully synced");
        assert_eq!(sharded.log_head(), from_single.log_head());
        assert_eq!(sharded.synced_pos(), from_single.synced_pos());
        assert_eq!(sharded.export(), from_single.export());
    }

    #[test]
    fn from_store_preserves_unsynced_state() {
        let mut single = Store::new();
        single.execute(&Op::Put { key: b("a"), value: b("1") });
        single.mark_synced(1);
        single.execute(&Op::Put { key: b("b"), value: b("2") });
        single.execute(&Op::Delete { key: b("a") });
        let sharded: ShardedStore = ShardedStore::from_store(4, single.clone());
        assert_eq!(sharded.log_head(), single.log_head());
        assert_eq!(sharded.synced_pos(), single.synced_pos());
        for k in [&b"a"[..], b"b", b"never"] {
            assert_eq!(sharded.is_unsynced(k), single.is_unsynced(k), "key {k:?}");
        }
        assert_eq!(sharded.export(), single.export());
    }

    #[test]
    fn split_off_partitions_like_store() {
        let sharded: ShardedStore = ShardedStore::new(4);
        let mut single = Store::new();
        for i in 0..32 {
            let op = Op::Put { key: b(&format!("k{i}")), value: b("v") };
            sharded.execute(&op);
            single.execute(&op);
        }
        sharded.execute(&Op::Delete { key: b("k0") });
        single.execute(&Op::Delete { key: b("k0") });
        sharded.mark_synced(sharded.log_head());
        single.mark_synced(single.log_head());
        let belongs = |h: KeyHash| h.0.is_multiple_of(2);
        assert_eq!(sharded.split_off(belongs), single.split_off(belongs));
        assert_eq!(sharded.export(), single.export());
    }

    #[test]
    #[should_panic(expected = "must sync before migrating")]
    fn split_off_with_unsynced_state_panics() {
        let store: ShardedStore = ShardedStore::new(2);
        put(&store, "a", "1");
        store.split_off(|_| true);
    }

    #[test]
    fn ext_state_lives_under_the_shard_lock() {
        let store: ShardedStore<Vec<u64>> = ShardedStore::new(4);
        let shard = store.shard_of(b"k");
        let op = Op::Put { key: b("k"), value: b("v") };
        let set = op.key_hashes().shard_set(4);
        let mut guards = store.lock(&set);
        guards.execute(&op);
        guards.ext_mut(shard).push(41);
        drop(guards);
        let mut all = store.lock_all();
        let mut seen = Vec::new();
        all.for_each_ext_mut(|idx, ext| {
            if !ext.is_empty() {
                seen.push((idx, ext.clone()));
            }
        });
        assert_eq!(seen, vec![(shard, vec![41])]);
    }

    #[test]
    fn concurrent_disjoint_writers_land_all_writes() {
        // Real threads: 4 writers on disjoint key ranges. Verifies Send/Sync
        // correctness and that global position allocation never double-issues.
        let store: ShardedStore = ShardedStore::new(8);
        const PER: u64 = 500;
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..PER {
                        let r = store.execute(&Op::Put {
                            key: Bytes::from(format!("w{t}-{i}")),
                            value: Bytes::from_static(b"v"),
                        });
                        assert_eq!(r, OpResult::Written { version: 1 });
                    }
                });
            }
        });
        assert_eq!(store.len(), 4 * PER as usize);
        assert_eq!(store.log_head(), 4 * PER);
        // All positions distinct: max write_pos < log_head and every object
        // unsynced until the frontier catches up.
        let (objects, _) = store.export();
        let mut positions: Vec<u64> = objects.iter().map(|(_, o)| o.write_pos).collect();
        positions.sort_unstable();
        positions.dedup();
        assert_eq!(positions.len(), 4 * PER as usize, "duplicate log positions");
        store.mark_synced(store.log_head());
        assert!(!store.has_unsynced());
    }

    #[test]
    fn concurrent_same_key_writers_serialize() {
        let store: ShardedStore = ShardedStore::new(8);
        const PER: u64 = 300;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    for _ in 0..PER {
                        store.execute(&Op::Incr { key: b("ctr"), delta: 1 });
                    }
                });
            }
        });
        assert_eq!(
            store.execute(&Op::Get { key: b("ctr") }),
            OpResult::Value(Some(Bytes::from((4 * PER).to_string())))
        );
    }

    #[test]
    fn execution_proceeds_while_another_shard_is_held() {
        // The functional lock-granularity guard: while one shard's lock is
        // HELD, an execute on a different shard must still complete. If a
        // change ever reintroduces a global lock inside `ShardedStore` (the
        // regression the contention benches quantify but, being a model,
        // cannot fail on), the spawned execute blocks forever and this
        // test times out instead of passing.
        let store: ShardedStore = ShardedStore::new(8);
        let held = store.shard_of(b"held-key");
        let other_key = (0..100)
            .map(|i| format!("free-{i}"))
            .find(|k| store.shard_of(k.as_bytes()) != held)
            .expect("some key routes elsewhere");
        let guards = store.lock(&[held]);
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let r = store.execute(&Op::Put {
                    key: Bytes::from(other_key.clone()),
                    value: Bytes::from_static(b"v"),
                });
                done_tx.send(r).unwrap();
            });
            let r = done_rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("execute on a free shard must not wait for a held one");
            assert_eq!(r, OpResult::Written { version: 1 });
            drop(guards);
        });
    }
}
