//! Write-ahead intent log for multi-step orchestration plans.
//!
//! The coordinator's reconfigurations (`recover_master`, `migrate`) are
//! sequences of remote effects — fence epochs, install backups, start
//! witnesses, publish a map. A coordinator that dies between two of those
//! effects leaves the cluster mid-plan, and nothing in the data path can
//! finish the job for it. This journal is the fix: every step is recorded
//! *before* it executes, so a restarted coordinator can read back the open
//! plans and resume-or-abort each one to a consistent state.
//!
//! The on-disk format reuses the AOF frame discipline
//! ([`crate::aof`]): length-prefixed frames, fsync-per-record, a torn final
//! record tolerated on load, mid-log corruption refused. Each frame is one
//! record — `Begin` (opens a plan, carries an opaque payload describing it),
//! `Step` (one orchestration step's payload), or `Close` (the plan is done
//! or deliberately aborted). On open, fully closed plans are compacted away
//! by rewriting the log through a tmp+fsync+rename, the same
//! replace-atomically discipline the snapshot files use.
//!
//! The journal stores opaque byte payloads: the *meaning* of a plan lives
//! with its owner (the coordinator), which keeps this layer reusable and
//! trivially testable.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::BytesMut;
use curp_proto::frame::write_frame;

use crate::aof::fsync_dir;

const TAG_BEGIN: u8 = 1;
const TAG_STEP: u8 = 2;
const TAG_CLOSE: u8 = 3;

/// A plan found open (begun, never closed) when the log was loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenPlan {
    /// The plan's journal-assigned id (monotonic per log).
    pub id: u64,
    /// The opaque payload recorded by [`IntentLog::begin`].
    pub begin: Vec<u8>,
    /// Every step payload recorded so far, in order.
    pub steps: Vec<Vec<u8>>,
}

/// Append-only journal of orchestration intents.
///
/// Every mutation appends one frame and fsyncs before returning — a record
/// that `begin`/`step`/`close` acknowledged is durable, which is exactly the
/// property the resume protocol needs: a step that *executed* is always
/// preceded on disk by its record.
#[derive(Debug)]
pub struct IntentLog {
    path: PathBuf,
    file: File,
    next_plan: u64,
    recorded: u64,
    fail_after: Option<u64>,
}

impl IntentLog {
    /// Opens (creating if missing) the intent log at `path`, returning the
    /// journal and every plan left open by a previous incarnation.
    ///
    /// A torn final record (crash mid-append) is cut off; closed plans are
    /// compacted away via tmp+fsync+rename so the log stays bounded by the
    /// in-flight plan count, not cluster lifetime.
    pub fn open(path: &Path) -> std::io::Result<(IntentLog, Vec<OpenPlan>)> {
        let records = Self::load(path)?;
        let mut open: Vec<OpenPlan> = Vec::new();
        let mut max_id = 0u64;
        for (tag, id, payload) in &records {
            max_id = max_id.max(*id);
            match *tag {
                TAG_BEGIN => {
                    open.push(OpenPlan { id: *id, begin: payload.clone(), steps: Vec::new() })
                }
                TAG_STEP => {
                    if let Some(p) = open.iter_mut().find(|p| p.id == *id) {
                        p.steps.push(payload.clone());
                    }
                }
                TAG_CLOSE => open.retain(|p| p.id != *id),
                _ => {}
            }
        }
        // Compact: rewrite only the open plans' records, replace atomically.
        // Also heals a torn tail (the rewrite simply omits it).
        let tmp = path.with_extension("tmp");
        let mut buf = BytesMut::new();
        for (tag, id, payload) in &records {
            if open.iter().any(|p| p.id == *id) {
                write_frame(&encode_record(*tag, *id, payload), &mut buf);
            }
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fsync_dir(dir)?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((
            IntentLog {
                path: path.to_path_buf(),
                file,
                next_plan: max_id + 1,
                recorded: 0,
                fail_after: None,
            },
            open,
        ))
    }

    /// Opens a plan: records `payload` durably and returns the plan id.
    pub fn begin(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        let id = self.next_plan;
        self.append(TAG_BEGIN, id, payload)?;
        self.next_plan += 1;
        Ok(id)
    }

    /// Records one step of plan `id` durably. Call *before* executing the
    /// step's effects; a step whose record never made it to disk must not
    /// have run.
    pub fn step(&mut self, id: u64, payload: &[u8]) -> std::io::Result<()> {
        self.append(TAG_STEP, id, payload)
    }

    /// Closes plan `id` (completed or aborted); a closed plan is compacted
    /// away on the next open.
    pub fn close(&mut self, id: u64) -> std::io::Result<()> {
        self.append(TAG_CLOSE, id, &[])
    }

    /// Records appended (durably) in this session.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Path this journal appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Fault injection for crash-at-step-boundary tests: after `n` more
    /// successful records, every append fails *without writing* — exactly
    /// what a coordinator crash at that step boundary looks like (the step
    /// was never recorded, so it never executed). `None` disarms.
    pub fn set_fail_after(&mut self, n: Option<u64>) {
        self.fail_after = n;
    }

    fn append(&mut self, tag: u8, id: u64, payload: &[u8]) -> std::io::Result<()> {
        if let Some(budget) = self.fail_after {
            if budget == 0 {
                return Err(std::io::Error::other("injected intent-log crash"));
            }
            self.fail_after = Some(budget - 1);
        }
        let mut buf = BytesMut::new();
        write_frame(&encode_record(tag, id, payload), &mut buf);
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        self.recorded += 1;
        Ok(())
    }

    /// Decodes every complete record at `path`. A missing file is an empty
    /// log; a torn final record is dropped; a bad record with complete
    /// frames after it is corruption ([`std::io::ErrorKind::InvalidData`]).
    fn load(path: &Path) -> std::io::Result<Vec<(u8, u64, Vec<u8>)>> {
        // The shared framed-log reader supplies the torn-tail-vs-corruption
        // rule (same discipline as `Aof::load`); only the record codec is
        // intent-specific.
        let out = crate::frames::load_framed(path, "intent", |frame| {
            decode_record(&frame).ok_or_else(String::new)
        })?;
        Ok(out.records)
    }
}

fn encode_record(tag: u8, id: u64, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(9 + payload.len());
    v.push(tag);
    v.extend_from_slice(&id.to_le_bytes());
    v.extend_from_slice(payload);
    v
}

fn decode_record(frame: &[u8]) -> Option<(u8, u64, Vec<u8>)> {
    if frame.len() < 9 {
        return None;
    }
    let tag = frame[0];
    if !matches!(tag, TAG_BEGIN | TAG_STEP | TAG_CLOSE) {
        return None;
    }
    let id = u64::from_le_bytes(frame[1..9].try_into().ok()?);
    Some((tag, id, frame[9..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmplog(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("curp-intent-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn begin_step_close_roundtrip() {
        let path = tmplog("roundtrip");
        {
            let (mut log, open) = IntentLog::open(&path).unwrap();
            assert!(open.is_empty());
            let a = log.begin(b"plan-a").unwrap();
            log.step(a, b"fence").unwrap();
            log.step(a, b"publish").unwrap();
            let b = log.begin(b"plan-b").unwrap();
            log.close(a).unwrap();
            assert_ne!(a, b);
        }
        let (_, open) = IntentLog::open(&path).unwrap();
        assert_eq!(open.len(), 1, "closed plan compacted away");
        assert_eq!(open[0].begin, b"plan-b");
        assert!(open[0].steps.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_plan_keeps_step_order() {
        let path = tmplog("steps");
        {
            let (mut log, _) = IntentLog::open(&path).unwrap();
            let id = log.begin(b"recover").unwrap();
            for s in ["fence", "witness", "install"] {
                log.step(id, s.as_bytes()).unwrap();
            }
        }
        let (_, open) = IntentLog::open(&path).unwrap();
        assert_eq!(open.len(), 1);
        assert_eq!(
            open[0].steps,
            vec![b"fence".to_vec(), b"witness".to_vec(), b"install".to_vec()]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn plan_ids_stay_monotonic_across_reopen() {
        let path = tmplog("monotonic");
        let first = {
            let (mut log, _) = IntentLog::open(&path).unwrap();
            log.begin(b"p").unwrap()
        };
        let second = {
            let (mut log, _) = IntentLog::open(&path).unwrap();
            log.begin(b"q").unwrap()
        };
        assert!(second > first, "{second} must exceed {first}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_healed() {
        let path = tmplog("torn");
        {
            let (mut log, _) = IntentLog::open(&path).unwrap();
            let id = log.begin(b"plan").unwrap();
            log.step(id, b"step-1").unwrap();
            log.step(id, b"step-2").unwrap();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let (_, open) = IntentLog::open(&path).unwrap();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].steps, vec![b"step-1".to_vec()], "torn step-2 dropped");
        // The compaction rewrite healed the tear: a re-open sees clean state.
        let (_, open2) = IntentLog::open(&path).unwrap();
        assert_eq!(open2, open);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_refused() {
        let path = tmplog("midlog");
        {
            let (mut log, _) = IntentLog::open(&path).unwrap();
            let id = log.begin(b"plan-one").unwrap();
            log.step(id, b"step-payload").unwrap();
            log.step(id, b"another-step").unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        // Flip the first record's tag byte (frame payload offset 4): complete
        // frames follow, so this cannot be a torn append.
        raw[4] = 0xEE;
        std::fs::write(&path, &raw).unwrap();
        let err = IntentLog::open(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_fault_fails_without_writing() {
        let path = tmplog("fault");
        {
            let (mut log, _) = IntentLog::open(&path).unwrap();
            log.set_fail_after(Some(2));
            let id = log.begin(b"plan").unwrap();
            log.step(id, b"ok-step").unwrap();
            let err = log.step(id, b"never-lands").unwrap_err();
            assert!(err.to_string().contains("injected"), "{err}");
            assert_eq!(log.recorded(), 2);
        }
        let (_, open) = IntentLog::open(&path).unwrap();
        assert_eq!(open[0].steps, vec![b"ok-step".to_vec()], "failed record never hit disk");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let path = tmplog("missing");
        let (log, open) = IntentLog::open(&path).unwrap();
        assert!(open.is_empty());
        assert_eq!(log.recorded(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
