//! Sorted-run files: the on-disk half of [`TieredStore`](crate::TieredStore).
//!
//! A run is an immutable, key-sorted batch of records flushed from the
//! memtable, written with the same frame discipline as the AOF and read
//! through a sparse in-memory index — a lookup seeks to the block whose
//! first key covers the target and scans at most
//! [`INDEX_EVERY`] records.
//!
//! ## Format
//!
//! Every piece is a [`write_frame`]-encoded frame except the fixed
//! trailer:
//!
//! ```text
//! [header frame: version u32, record count u64]
//! [record frame]*  — key-ascending; see `RunRecord`
//! [index frame: n u32, then n * (key Bytes, record frame offset u64)]
//! [trailer, 16 raw bytes: index frame offset u64 LE, magic u64 LE]
//! ```
//!
//! The trailer lets [`RunFile::open`] find the index without scanning;
//! writers emit to a `.tmp` sibling, fsync, and rename into place, so a
//! run path never names a partial file.
//!
//! ## Record semantics
//!
//! [`RunRecord::Dead`] carries the version memory of a deleted key
//! (RAMCloud semantics: versions survive deletion, so a `ConditionalPut`
//! cannot be fooled by a delete/re-create cycle). Dead records are never
//! discarded by merges — dropping one would forget the deletion — they
//! are only superseded by a newer record for the same key, or folded
//! back into the memtable by
//! [`absorb_runs`](crate::StateStore::absorb_runs).
//!
//! Runs are a **rebuildable cache**: crash recovery never reads them
//! (masters recover from backups, backup replicas from snapshot +
//! checkpoints + AOF), so each [`TieredStore`](crate::TieredStore)
//! instance starts from an empty run directory and deletes its files on
//! drop.
//!
//! [`write_frame`]: curp_proto::frame::write_frame

use std::fs::File;
use std::io::{Read, Write};
use std::path::PathBuf;

use bytes::{Bytes, BytesMut};
use curp_proto::frame::{write_frame, FrameDecoder};
use curp_proto::wire::{Decode, Encode};

use crate::aof::fsync_dir;
use crate::store::Object;

/// One sparse-index entry per this many records.
pub const INDEX_EVERY: usize = 16;

const RUN_VERSION: u32 = 1;
const RUN_MAGIC: u64 = 0x4355_5250_5255_4e31; // "CURPRUN1"
const TAG_LIVE: u8 = 0;
const TAG_DEAD: u8 = 1;

/// One record of a sorted run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunRecord {
    /// A live object (its `write_pos` is meaningless once flushed — only
    /// synced state is ever spilled — and reads back as `0`).
    Live(Object),
    /// Version memory of a deleted key (see the module docs).
    Dead(u64),
}

fn encode_record(key: &Bytes, rec: &RunRecord, buf: &mut BytesMut) {
    let mut payload = BytesMut::new();
    key.encode(&mut payload);
    match rec {
        RunRecord::Live(obj) => {
            TAG_LIVE.encode(&mut payload);
            obj.encode(&mut payload);
        }
        RunRecord::Dead(version) => {
            TAG_DEAD.encode(&mut payload);
            version.encode(&mut payload);
        }
    }
    write_frame(&payload, buf);
}

fn decode_record(frame: Bytes) -> Result<(Bytes, RunRecord), String> {
    let mut buf = frame;
    let key = Bytes::decode(&mut buf).map_err(|e| e.to_string())?;
    let tag = u8::decode(&mut buf).map_err(|e| e.to_string())?;
    let rec = match tag {
        TAG_LIVE => RunRecord::Live(Object::decode(&mut buf).map_err(|e| e.to_string())?),
        TAG_DEAD => RunRecord::Dead(u64::decode(&mut buf).map_err(|e| e.to_string())?),
        t => return Err(format!("unknown run record tag {t}")),
    };
    if !buf.is_empty() {
        return Err(format!("{} trailing bytes after run record", buf.len()));
    }
    Ok((key, rec))
}

/// Streams key-ascending records into a new run file. Used by both the
/// memtable flush (records already collected) and the k-way run merge
/// (records produced incrementally, never all in memory at once).
pub struct RunWriter {
    path: PathBuf,
    tmp: PathBuf,
    file: File,
    fsync: bool,
    /// Bytes written so far == offset of the next frame.
    offset: u64,
    count: u64,
    index: Vec<(Bytes, u64)>,
    last_key: Option<Bytes>,
    buf: BytesMut,
    /// Set once the tmp file has been renamed into place; an abandoned
    /// writer (merge error, caller drop) removes its tmp on drop so no
    /// partial file is ever stranded.
    finished: bool,
}

impl Drop for RunWriter {
    fn drop(&mut self) {
        if !self.finished {
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

impl RunWriter {
    /// Opens a writer that will atomically create `path` on
    /// [`finish`](Self::finish).
    pub fn create(path: impl Into<PathBuf>, fsync: bool) -> std::io::Result<RunWriter> {
        let path = path.into();
        let tmp = path.with_extension("tmp");
        let file = File::create(&tmp)?;
        let mut w = RunWriter {
            path,
            tmp,
            file,
            fsync,
            offset: 0,
            count: 0,
            index: Vec::new(),
            last_key: None,
            buf: BytesMut::new(),
            finished: false,
        };
        // Placeholder header; rewritten with the real count in finish().
        // Writing it now keeps every record offset final as it is emitted.
        w.write_header(0)?;
        Ok(w)
    }

    fn write_header(&mut self, count: u64) -> std::io::Result<()> {
        let mut payload = BytesMut::new();
        RUN_VERSION.encode(&mut payload);
        count.encode(&mut payload);
        self.buf.clear();
        write_frame(&payload, &mut self.buf);
        self.file.write_all(&self.buf)?;
        if self.offset == 0 {
            self.offset = self.buf.len() as u64;
        }
        Ok(())
    }

    /// Appends one record; keys must arrive in strictly ascending order.
    ///
    /// # Panics
    /// Panics on an out-of-order or duplicate key — the caller (flush or
    /// merge) owns the sort, and a mis-sorted run would silently break
    /// every binary search against it.
    pub fn add(&mut self, key: Bytes, rec: &RunRecord) -> std::io::Result<()> {
        assert!(
            self.last_key.as_ref().is_none_or(|p| *p < key),
            "run records must be strictly key-ascending"
        );
        if (self.count as usize).is_multiple_of(INDEX_EVERY) {
            self.index.push((key.clone(), self.offset));
        }
        self.buf.clear();
        encode_record(&key, rec, &mut self.buf);
        self.file.write_all(&self.buf)?;
        self.offset += self.buf.len() as u64;
        self.count += 1;
        self.last_key = Some(key);
        Ok(())
    }

    /// Writes the index and trailer, fixes up the header, fsyncs (per
    /// config), renames the file into place, and returns the readable run.
    pub fn finish(mut self) -> std::io::Result<RunFile> {
        let index_offset = self.offset;
        let mut payload = BytesMut::new();
        (self.index.len() as u32).encode(&mut payload);
        for (key, off) in &self.index {
            key.encode(&mut payload);
            off.encode(&mut payload);
        }
        self.buf.clear();
        write_frame(&payload, &mut self.buf);
        self.file.write_all(&self.buf)?;
        let mut trailer = [0u8; 16];
        trailer[..8].copy_from_slice(&index_offset.to_le_bytes());
        trailer[8..].copy_from_slice(&RUN_MAGIC.to_le_bytes());
        self.file.write_all(&trailer)?;
        // Fix the record count in the header (same frame size: the count
        // field is fixed-width, so the placeholder and the real header
        // occupy identical bytes 0..offset_of_first_record).
        use std::io::Seek;
        self.file.seek(std::io::SeekFrom::Start(0))?;
        let first_record_offset = {
            let mut payload = BytesMut::new();
            RUN_VERSION.encode(&mut payload);
            self.count.encode(&mut payload);
            let mut hdr = BytesMut::new();
            write_frame(&payload, &mut hdr);
            self.file.write_all(&hdr)?;
            hdr.len() as u64
        };
        if self.fsync {
            self.file.sync_data()?;
        }
        std::fs::rename(&self.tmp, &self.path)?;
        self.finished = true;
        if self.fsync {
            if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
                fsync_dir(dir)?;
            }
        }
        let file = File::open(&self.path)?;
        let end = self.offset + self.buf.len() as u64 + 16;
        Ok(RunFile {
            path: std::mem::take(&mut self.path),
            file,
            index: std::mem::take(&mut self.index),
            count: self.count,
            data_start: first_record_offset,
            index_offset,
            file_len: end,
            last_key: self.last_key.take(),
        })
    }
}

/// An immutable, readable sorted run. Deletes its file on drop (runs are
/// a rebuildable cache; see the module docs).
pub struct RunFile {
    path: PathBuf,
    file: File,
    /// First key of each [`INDEX_EVERY`]-record block → frame offset.
    index: Vec<(Bytes, u64)>,
    count: u64,
    data_start: u64,
    index_offset: u64,
    file_len: u64,
    last_key: Option<Bytes>,
}

impl std::fmt::Debug for RunFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunFile")
            .field("path", &self.path)
            .field("records", &self.count)
            .finish_non_exhaustive()
    }
}

impl RunFile {
    /// Builds a run from already-sorted records (the flush path).
    pub fn write(
        path: impl Into<PathBuf>,
        records: &[(Bytes, RunRecord)],
        fsync: bool,
    ) -> std::io::Result<RunFile> {
        let mut w = RunWriter::create(path, fsync)?;
        for (key, rec) in records {
            w.add(key.clone(), rec)?;
        }
        w.finish()
    }

    /// Opens an existing run, validating the trailer and loading the
    /// sparse index. Not used by recovery (runs are a cache) — this is
    /// the format's self-check, exercised by tests.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<RunFile> {
        let corrupt = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let path = path.into();
        let mut file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < 16 {
            return Err(corrupt("run file shorter than its trailer".into()));
        }
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let trailer = &raw[raw.len() - 16..];
        // lint: audited-unwrap — trailer is a 16-byte slice by construction
        let index_offset = u64::from_le_bytes(trailer[..8].try_into().unwrap());
        // lint: audited-unwrap — remaining 8 bytes of the same 16-byte slice
        let magic = u64::from_le_bytes(trailer[8..].try_into().unwrap());
        if magic != RUN_MAGIC {
            return Err(corrupt(format!("bad run magic {magic:#x}")));
        }
        if index_offset >= raw.len() as u64 - 16 {
            return Err(corrupt("run index offset out of bounds".into()));
        }
        // Header.
        let mut decoder = FrameDecoder::new();
        decoder.push(&raw[..raw.len() - 16]);
        let header = decoder
            .next_frame()
            .map_err(|e| corrupt(format!("run header: {e}")))?
            .ok_or_else(|| corrupt("run missing header frame".into()))?;
        let data_start = 4 + header.len() as u64;
        let mut hdr = header;
        let version = u32::decode(&mut hdr).map_err(|e| corrupt(e.to_string()))?;
        if version != RUN_VERSION {
            return Err(corrupt(format!("unsupported run version {version}")));
        }
        let count = u64::decode(&mut hdr).map_err(|e| corrupt(e.to_string()))?;
        // Index frame.
        let mut idx_decoder = FrameDecoder::new();
        idx_decoder.push(&raw[index_offset as usize..raw.len() - 16]);
        let idx_frame = idx_decoder
            .next_frame()
            .map_err(|e| corrupt(format!("run index: {e}")))?
            .ok_or_else(|| corrupt("run missing index frame".into()))?;
        let mut idx = idx_frame;
        let n = u32::decode(&mut idx).map_err(|e| corrupt(e.to_string()))?;
        let mut index = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let key = Bytes::decode(&mut idx).map_err(|e| corrupt(e.to_string()))?;
            let off = u64::decode(&mut idx).map_err(|e| corrupt(e.to_string()))?;
            index.push((key, off));
        }
        let last_key = {
            let mut last = None;
            let it = RunIter {
                file: &file,
                pos: data_start,
                end: index_offset,
                decoder: FrameDecoder::new(),
            };
            for r in it {
                last = Some(r?.0);
            }
            last
        };
        Ok(RunFile { path, file, index, count, data_start, index_offset, file_len, last_key })
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Looks `key` up via the sparse index: seek to the covering block,
    /// scan at most `INDEX_EVERY` records.
    pub fn get(&self, key: &[u8]) -> std::io::Result<Option<RunRecord>> {
        if self.count == 0 {
            return Ok(None);
        }
        if self.index.first().is_some_and(|(k, _)| key < k.as_ref()) {
            return Ok(None);
        }
        if self.last_key.as_ref().is_some_and(|k| key > k.as_ref()) {
            return Ok(None);
        }
        // Last index entry with first-key <= key.
        let block = match self.index.binary_search_by(|(k, _)| k[..].cmp(key)) {
            Ok(i) => i,
            Err(0) => return Ok(None),
            Err(i) => i - 1,
        };
        let start = self.index[block].1;
        let end = self.index.get(block + 1).map_or(self.index_offset, |(_, off)| *off);
        let it = RunIter { file: &self.file, pos: start, end, decoder: FrameDecoder::new() };
        for r in it {
            let (k, rec) = r?;
            match k[..].cmp(key) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => return Ok(Some(rec)),
                std::cmp::Ordering::Greater => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Streams every record in key order without loading the run into
    /// memory (the merge path).
    pub fn iter(&self) -> impl Iterator<Item = std::io::Result<(Bytes, RunRecord)>> + '_ {
        RunIter {
            file: &self.file,
            pos: self.data_start,
            end: self.index_offset,
            decoder: FrameDecoder::new(),
        }
    }

    /// Consumes the handle *without* deleting the file (tests that reopen
    /// the file via [`open`](Self::open)).
    #[cfg(test)]
    pub(crate) fn into_path(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }
}

impl Drop for RunFile {
    fn drop(&mut self) {
        // Best-effort: the run is a cache owned by this handle.
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Chunked streaming reader over a byte range of record frames.
struct RunIter<'a> {
    file: &'a File,
    pos: u64,
    end: u64,
    decoder: FrameDecoder,
}

const READ_CHUNK: usize = 64 * 1024;

impl RunIter<'_> {
    fn next_record(&mut self) -> Option<std::io::Result<(Bytes, RunRecord)>> {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => {
                    return Some(
                        decode_record(frame)
                            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
                    )
                }
                Ok(None) => {}
                Err(e) => {
                    return Some(Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        e.to_string(),
                    )))
                }
            }
            if self.pos >= self.end {
                return None;
            }
            let want = ((self.end - self.pos) as usize).min(READ_CHUNK);
            let mut chunk = vec![0u8; want];
            use std::os::unix::fs::FileExt;
            if let Err(e) = self.file.read_exact_at(&mut chunk, self.pos) {
                return Some(Err(e));
            }
            self.pos += want as u64;
            self.decoder.push(&chunk);
        }
    }
}

impl Iterator for RunIter<'_> {
    type Item = std::io::Result<(Bytes, RunRecord)>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_record()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Value;
    use crate::TempDir;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn live(v: &str, version: u64) -> RunRecord {
        RunRecord::Live(Object { value: Value::Str(b(v)), version, write_pos: 0 })
    }

    fn sample(n: usize) -> Vec<(Bytes, RunRecord)> {
        (0..n)
            .map(|i| {
                let key = Bytes::from(format!("key-{i:05}"));
                if i % 7 == 3 {
                    (key, RunRecord::Dead(i as u64 + 1))
                } else {
                    (key, live(&format!("value-{i}"), i as u64 + 1))
                }
            })
            .collect()
    }

    #[test]
    fn write_then_get_every_key_and_misses() {
        let dir = TempDir::new("curp-runfile").unwrap();
        let records = sample(100);
        let run = RunFile::write(dir.path().join("0.run"), &records, true).unwrap();
        assert_eq!(run.len(), 100);
        for (key, rec) in &records {
            assert_eq!(run.get(key).unwrap().as_ref(), Some(rec), "key {key:?}");
        }
        assert_eq!(run.get(b"key-00000a").unwrap(), None, "between-keys miss");
        assert_eq!(run.get(b"aaa").unwrap(), None, "below-range miss");
        assert_eq!(run.get(b"zzz").unwrap(), None, "above-range miss");
    }

    #[test]
    fn iter_streams_in_key_order() {
        let dir = TempDir::new("curp-runfile").unwrap();
        let records = sample(50);
        let run = RunFile::write(dir.path().join("0.run"), &records, false).unwrap();
        let streamed: Vec<_> = run.iter().map(|r| r.unwrap()).collect();
        assert_eq!(streamed, records);
    }

    #[test]
    fn open_round_trips_the_format() {
        let dir = TempDir::new("curp-runfile").unwrap();
        let records = sample(40);
        let path = RunFile::write(dir.path().join("0.run"), &records, true).unwrap().into_path();
        let run = RunFile::open(&path).unwrap();
        assert_eq!(run.len(), 40);
        let streamed: Vec<_> = run.iter().map(|r| r.unwrap()).collect();
        assert_eq!(streamed, records);
        for (key, rec) in &records {
            assert_eq!(run.get(key).unwrap().as_ref(), Some(rec));
        }
    }

    #[test]
    fn drop_deletes_the_file() {
        let dir = TempDir::new("curp-runfile").unwrap();
        let path = dir.path().join("0.run");
        let run = RunFile::write(&path, &sample(3), false).unwrap();
        assert!(path.exists());
        drop(run);
        assert!(!path.exists(), "dropping a run must delete its cache file");
    }

    #[test]
    #[should_panic(expected = "strictly key-ascending")]
    fn out_of_order_write_panics() {
        let dir = TempDir::new("curp-runfile").unwrap();
        let mut w = RunWriter::create(dir.path().join("0.run"), false).unwrap();
        w.add(b("b"), &live("x", 1)).unwrap();
        w.add(b("a"), &live("y", 1)).unwrap();
    }

    #[test]
    fn empty_run_is_valid() {
        let dir = TempDir::new("curp-runfile").unwrap();
        let run = RunFile::write(dir.path().join("0.run"), &[], true).unwrap();
        assert!(run.is_empty());
        assert_eq!(run.get(b"anything").unwrap(), None);
    }
}
