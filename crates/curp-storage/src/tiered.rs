//! The larger-than-memory engine: a [`ShardedStore`] memtable over
//! sorted-run files.
//!
//! [`TieredStore`] keeps hot state in an ordinary sharded memtable and
//! spills cold, **synced** state to immutable sorted runs
//! ([`RunFile`]) on [`maintain`](crate::StateStore::maintain) ticks —
//! LSM-lite: one level, whole-memtable flushes, all-runs merges. The
//! design leans on three CURP-specific facts:
//!
//! 1. **Only synced state may leave memory.** The §4.3 commute check is
//!    answered entirely from the memtable (`write_pos` vs the synced
//!    frontier); an object below the frontier always answers "synced",
//!    which is exactly what an evicted (hence flushed-as-synced) object
//!    must answer. Unsynced objects and unsynced-deletion tombstones are
//!    never spilled, so eviction cannot change any protocol decision.
//! 2. **Lock-time readiness.** Before an op executes, the lock methods
//!    promote its run-resident keys back into the memtable (object *or*
//!    dead-key version memory — a `ConditionalPut` after a flushed delete
//!    must still see the version). After promotion the execution path is
//!    byte-identical to the in-memory engine; the equivalence proptest
//!    pins this. Promoted and flushed objects read back with
//!    `write_pos == 0` (they are synced; the exact historical position no
//!    longer matters).
//! 3. **Runs are a rebuildable cache.** Crash recovery never reads them —
//!    masters recover from backups, backup replicas from snapshot +
//!    checkpoints + AOF — so each store instance starts from an empty
//!    private run directory and removes it on drop, and a run-file *read*
//!    error is fail-stop (panic) rather than a recoverable condition:
//!    the bytes were written and fsynced by this same process.
//!
//! Locking: shard locks first (ascending, via the memtable), the tier's
//! run-list mutex strictly last (a leaf). Flush runs under all shard
//! locks and evicts only after the run file is durably in place, so a
//! failed `maintain` leaves the store exactly as it was.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use curp_proto::op::Op;
use curp_proto::wire::Encode;
use parking_lot::Mutex;

use crate::runfile::{RunFile, RunRecord, RunWriter};
use crate::sharded::{ShardGuards, ShardedStore};
use crate::store::{Object, StoreExport};
use crate::{StateStore, TierConfig};

/// Distinguishes tier directories of multiple stores within one process
/// (a simulated cluster shares one config root across many masters).
static NEXT_TIER_DIR: AtomicU64 = AtomicU64::new(0);

struct TierState {
    /// Oldest first; lookups scan newest (last) to oldest, merges let
    /// later runs win.
    runs: Vec<Arc<RunFile>>,
    next_run: u64,
}

/// A [`StateStore`] whose working set may exceed memory: `ShardedStore`
/// memtable + sorted-run spill tier. See the module docs for the design.
pub struct TieredStore<Ext = ()> {
    mem: ShardedStore<Ext>,
    tier: Mutex<TierState>,
    cfg: TierConfig,
    dir: PathBuf,
}

impl<Ext> TieredStore<Ext> {
    /// Puts a tier under an existing memtable. Creates (and takes
    /// ownership of) a fresh private run directory beneath `cfg.root`.
    pub fn over(mem: ShardedStore<Ext>, cfg: TierConfig) -> std::io::Result<TieredStore<Ext>> {
        let dir = cfg.root.join(format!(
            "tier-{}-{}",
            std::process::id(),
            NEXT_TIER_DIR.fetch_add(1, Ordering::Relaxed)
        ));
        match std::fs::remove_dir_all(&dir) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        std::fs::create_dir_all(&dir)?;
        Ok(TieredStore {
            mem,
            tier: Mutex::ranked_leaf(
                curp_proto::lockrank::TIER_RUNS,
                "storage.tier.runs",
                TierState { runs: Vec::new(), next_run: 0 },
            ),
            cfg,
            dir,
        })
    }

    /// The store's private run directory.
    pub fn tier_dir(&self) -> &Path {
        &self.dir
    }

    /// Number of run files currently on disk.
    pub fn run_count(&self) -> usize {
        self.tier.lock().runs.len()
    }

    /// Total bytes of run files currently on disk.
    pub fn run_bytes(&self) -> u64 {
        self.tier.lock().runs.iter().map(|r| r.file_len()).sum()
    }

    fn snapshot_runs(&self) -> Vec<Arc<RunFile>> {
        self.tier.lock().runs.clone()
    }

    fn run_read_failed(e: std::io::Error) -> ! {
        panic!("tier run read failed (runs are this process's own fsynced cache; fail-stop): {e}")
    }

    /// The newest cold record for `key`, if any run holds one.
    fn lookup_cold(&self, key: &[u8]) -> Option<RunRecord> {
        for run in self.snapshot_runs().iter().rev() {
            if let Some(rec) = run.get(key).unwrap_or_else(|e| Self::run_read_failed(e)) {
                return Some(rec);
            }
        }
        None
    }

    /// All cold records, newest-wins across runs, sorted by key.
    fn cold_view(runs: &[Arc<RunFile>]) -> BTreeMap<Bytes, RunRecord> {
        let mut view = BTreeMap::new();
        for run in runs {
            for rec in run.iter() {
                let (k, r) = rec.unwrap_or_else(|e| Self::run_read_failed(e));
                view.insert(k, r);
            }
        }
        view
    }

    /// Lock-time readiness (trait obligation): restores every key of `op`
    /// that lives only in the run tier into its (held) memtable shard.
    fn promote(&self, guards: &mut ShardGuards<'_, Ext>, op: &Op) {
        for key in op.keys() {
            let idx = self.mem.shard_of(key);
            let space = guards.space_mut(idx);
            if space.objects.contains_key(key) || space.dead_versions.contains_key(key) {
                continue;
            }
            match self.lookup_cold(key) {
                None => {}
                Some(RunRecord::Live(obj)) => {
                    guards.space_mut(idx).objects.insert(key.clone(), obj);
                }
                Some(RunRecord::Dead(version)) => {
                    guards.space_mut(idx).dead_versions.insert(key.clone(), version);
                }
            }
        }
    }

    /// Spills all synced memtable state to a new run if the memtable is
    /// over budget. Evicts **only after** the run file is durably in
    /// place; on error the store is unchanged.
    fn flush(&self, guards: &mut ShardGuards<'_, Ext>) -> std::io::Result<()> {
        let mut resident = 0u64;
        guards.for_each_space_mut(|_, space| {
            for (k, o) in &space.objects {
                resident += k.len() as u64 + o.encoded_len() as u64;
            }
            for k in space.dead_versions.keys() {
                resident += k.len() as u64 + 8;
            }
        });
        if resident <= self.cfg.memtable_budget {
            return Ok(());
        }
        let synced = self.mem.synced_pos();
        let mut records: Vec<(Bytes, RunRecord)> = Vec::new();
        guards.for_each_space_mut(|_, space| {
            for (k, o) in &space.objects {
                if o.write_pos < synced {
                    let mut obj = o.clone();
                    obj.write_pos = 0;
                    records.push((k.clone(), RunRecord::Live(obj)));
                }
            }
            for (k, &v) in &space.dead_versions {
                // A tombstoned entry is an unsynced deletion: not spillable.
                if !space.tombstones.contains_key(k) {
                    records.push((k.clone(), RunRecord::Dead(v)));
                }
            }
        });
        if records.is_empty() {
            return Ok(());
        }
        records.sort_by(|a, b| a.0.cmp(&b.0));
        {
            let mut tier = self.tier.lock();
            let path = self.dir.join(format!("{:06}.run", tier.next_run));
            let run = RunFile::write(path, &records, self.cfg.fsync)?;
            tier.next_run += 1;
            tier.runs.push(Arc::new(run));
        }
        // The run is durable; now it is safe to evict what it covers.
        guards.for_each_space_mut(|_, space| {
            space.objects.retain(|_, o| o.write_pos >= synced);
            let tombstones = &space.tombstones;
            space.dead_versions.retain(|k, _| tombstones.contains_key(k));
        });
        Ok(())
    }

    /// Merges all runs into one (newest record per key wins) once the run
    /// count passes the threshold. Dead records are never discarded — a
    /// merge may supersede version memory with a newer record, never
    /// forget it.
    fn merge(&self) -> std::io::Result<()> {
        let mut tier = self.tier.lock();
        if tier.runs.len() <= self.cfg.merge_threshold {
            return Ok(());
        }
        let sources = tier.runs.clone();
        let path = self.dir.join(format!("{:06}.run", tier.next_run));
        let mut writer = RunWriter::create(path, self.cfg.fsync)?;
        let mut iters: Vec<_> = sources.iter().map(|r| r.iter().peekable()).collect();
        loop {
            let mut min_key: Option<Bytes> = None;
            for it in iters.iter_mut() {
                match it.peek() {
                    None => {}
                    Some(Err(_)) => {
                        // lint: audited-unwrap — peek returned Some(Err(_)) above
                        return Err(it.next().expect("just peeked").expect_err("just peeked Err"));
                    }
                    Some(Ok((k, _))) if min_key.as_ref().is_none_or(|m| k < m) => {
                        min_key = Some(k.clone());
                    }
                    Some(Ok(_)) => {}
                }
            }
            let Some(key) = min_key else { break };
            // Ascending source order is oldest→newest; the last match wins.
            let mut newest = None;
            for it in iters.iter_mut() {
                if matches!(it.peek(), Some(Ok((k, _))) if *k == key) {
                    // lint: audited-unwrap — matches! above peeked Some(Ok(..))
                    let (_, rec) = it.next().expect("just peeked")?;
                    newest = Some(rec);
                }
            }
            // lint: audited-unwrap — min_key was produced by one of these iterators
            writer.add(key, &newest.expect("min key came from some run"))?;
        }
        let merged = writer.finish()?;
        tier.next_run += 1;
        tier.runs = vec![Arc::new(merged)];
        Ok(())
    }

    /// Merges cold records into already-exported memtable maps (memtable
    /// entries win: the memtable is authoritative for any key it knows).
    fn overlay_cold(
        cold: impl IntoIterator<Item = (Bytes, RunRecord)>,
        objects: &mut BTreeMap<Bytes, Object>,
        dead: &mut BTreeMap<Bytes, u64>,
    ) {
        for (k, rec) in cold {
            if objects.contains_key(&k) || dead.contains_key(&k) {
                continue;
            }
            match rec {
                RunRecord::Live(o) => {
                    objects.insert(k, o);
                }
                RunRecord::Dead(v) => {
                    dead.insert(k, v);
                }
            }
        }
    }
}

impl<Ext> std::fmt::Debug for TieredStore<Ext> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredStore")
            .field("mem", &self.mem)
            .field("runs", &self.run_count())
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl<Ext> Drop for TieredStore<Ext> {
    fn drop(&mut self) {
        // Runs are a cache owned by this instance; remove the whole
        // private directory (individual RunFile drops then find their
        // files already gone, which they tolerate).
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl<Ext: Send> StateStore<Ext> for TieredStore<Ext> {
    fn num_shards(&self) -> usize {
        self.mem.num_shards()
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        self.mem.shard_of(key)
    }

    fn log_head(&self) -> u64 {
        self.mem.log_head()
    }

    fn synced_pos(&self) -> u64 {
        self.mem.synced_pos()
    }

    fn has_unsynced(&self) -> bool {
        self.mem.has_unsynced()
    }

    fn len(&self) -> usize {
        let mut guards = self.mem.lock_all();
        let mut live = 0usize;
        guards.for_each_space_mut(|_, space| live += space.objects.len());
        for (k, rec) in Self::cold_view(&self.snapshot_runs()) {
            if matches!(rec, RunRecord::Live(_)) {
                let space = guards.space_mut(self.mem.shard_of(&k));
                if !space.objects.contains_key(&k) && !space.dead_versions.contains_key(&k) {
                    live += 1;
                }
            }
        }
        live
    }

    fn get_object(&self, key: &[u8]) -> Option<Object> {
        let idx = self.mem.shard_of(key);
        let mut guards = self.mem.lock(&[idx]);
        let space = guards.space_mut(idx);
        if let Some(obj) = space.objects.get(key) {
            return Some(obj.clone());
        }
        if space.dead_versions.contains_key(key) {
            return None;
        }
        match self.lookup_cold(key) {
            Some(RunRecord::Live(obj)) => Some(obj),
            Some(RunRecord::Dead(_)) | None => None,
        }
    }

    fn lock_for<'a>(&'a self, shard_set: &[usize], op: Option<&Op>) -> ShardGuards<'a, Ext> {
        let mut guards = self.mem.lock(shard_set);
        if let Some(op) = op {
            self.promote(&mut guards, op);
        }
        guards
    }

    fn lock_all_for<'a>(&'a self, op: Option<&Op>) -> ShardGuards<'a, Ext> {
        let mut guards = self.mem.lock_all();
        if let Some(op) = op {
            self.promote(&mut guards, op);
        }
        guards
    }

    fn absorb_runs(&self, guards: &mut ShardGuards<'_, Ext>) {
        assert!(guards.guards_store(&self.mem), "absorb_runs with foreign guards");
        assert!(guards.holds_all_shards(), "absorb_runs requires all shards locked");
        let runs = std::mem::take(&mut self.tier.lock().runs);
        if runs.is_empty() {
            return;
        }
        for (k, rec) in Self::cold_view(&runs) {
            let space = guards.space_mut(self.mem.shard_of(&k));
            if space.objects.contains_key(&k) || space.dead_versions.contains_key(&k) {
                continue;
            }
            match rec {
                RunRecord::Live(obj) => {
                    space.objects.insert(k, obj);
                }
                RunRecord::Dead(version) => {
                    space.dead_versions.insert(k, version);
                }
            }
        }
        // Dropping `runs` (the last references) deletes the files.
    }

    fn export(&self) -> StoreExport {
        let mut guards = self.mem.lock_all();
        let mut objects = BTreeMap::new();
        let mut dead = BTreeMap::new();
        guards.for_each_space_mut(|_, space| {
            for (k, o) in &space.objects {
                objects.insert(k.clone(), o.clone());
            }
            for (k, &v) in &space.dead_versions {
                dead.insert(k.clone(), v);
            }
        });
        Self::overlay_cold(Self::cold_view(&self.snapshot_runs()), &mut objects, &mut dead);
        (objects.into_iter().collect(), dead.into_iter().collect())
    }

    fn export_shard(&self, shard: usize) -> StoreExport {
        let mut guards = self.mem.lock(&[shard]);
        let mut objects = BTreeMap::new();
        let mut dead = BTreeMap::new();
        let space = guards.space_mut(shard);
        for (k, o) in &space.objects {
            objects.insert(k.clone(), o.clone());
        }
        for (k, &v) in &space.dead_versions {
            dead.insert(k.clone(), v);
        }
        let cold = Self::cold_view(&self.snapshot_runs())
            .into_iter()
            .filter(|(k, _)| self.mem.shard_of(k) == shard);
        Self::overlay_cold(cold, &mut objects, &mut dead);
        (objects.into_iter().collect(), dead.into_iter().collect())
    }

    fn maintain(&self) -> std::io::Result<()> {
        {
            let mut guards = self.mem.lock_all();
            self.flush(&mut guards)?;
        }
        self.merge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StoreConfig, TempDir};
    use curp_proto::op::OpResult;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    /// A tiered store with a 1-byte budget: every maintain() spills all
    /// synced state.
    fn tiny(dir: &TempDir, shards: usize) -> TieredStore {
        let mut cfg = TierConfig::new(dir.path());
        cfg.memtable_budget = 1;
        cfg.fsync = false;
        TieredStore::over(ShardedStore::new(shards), cfg).unwrap()
    }

    fn put(store: &TieredStore, k: &str, v: &str) -> OpResult {
        let op = Op::Put { key: b(k), value: b(v) };
        let set = op.key_hashes().shard_set(store.num_shards());
        store.lock_for(&set, Some(&op)).execute(&op)
    }

    fn get(store: &TieredStore, k: &str) -> OpResult {
        let op = Op::Get { key: b(k) };
        let set = op.key_hashes().shard_set(store.num_shards());
        store.lock_for(&set, Some(&op)).execute(&op)
    }

    fn sync_all(store: &TieredStore) {
        store.lock_all_for(None).mark_synced(store.log_head());
    }

    #[test]
    fn flush_evicts_synced_state_and_reads_promote_it_back() {
        let dir = TempDir::new("curp-tiered").unwrap();
        let store = tiny(&dir, 4);
        for i in 0..32 {
            put(&store, &format!("k{i}"), &format!("v{i}"));
        }
        sync_all(&store);
        store.maintain().unwrap();
        assert_eq!(store.run_count(), 1);
        // Everything was synced, so the memtable is now empty...
        let mut resident = 0;
        let mut guards = store.mem.lock_all();
        guards.for_each_space_mut(|_, s| resident += s.objects.len());
        drop(guards);
        assert_eq!(resident, 0, "synced state must be evicted after flush");
        // ...but every key still reads correctly (lock-time promotion).
        assert_eq!(store.len(), 32);
        for i in 0..32 {
            assert_eq!(
                get(&store, &format!("k{i}")),
                OpResult::Value(Some(b(&format!("v{i}")))),
                "key k{i} after eviction"
            );
        }
    }

    #[test]
    fn unsynced_state_is_never_spilled() {
        let dir = TempDir::new("curp-tiered").unwrap();
        let store = tiny(&dir, 2);
        put(&store, "synced", "s");
        sync_all(&store);
        put(&store, "spec", "fast-path"); // unsynced: above the frontier
        store.maintain().unwrap();
        // The unsynced object stays resident and still reports unsynced.
        assert!(store.mem.is_unsynced(b"spec"));
        assert!(!store.mem.is_unsynced(b"synced"));
        assert_eq!(store.mem.get_object(b"spec").unwrap().value, crate::Value::Str(b("fast-path")));
        assert!(store.mem.get_object(b"synced").is_none(), "synced state should be spilled");
        assert_eq!(get(&store, "synced"), OpResult::Value(Some(b("s"))));
    }

    #[test]
    fn version_memory_survives_flush_for_conditional_put() {
        let dir = TempDir::new("curp-tiered").unwrap();
        let store = tiny(&dir, 2);
        put(&store, "k", "v1");
        put(&store, "k", "v2"); // version 2
        sync_all(&store);
        store.maintain().unwrap();
        let op = Op::ConditionalPut { key: b("k"), expected_version: 2, value: b("v3") };
        let set = op.key_hashes().shard_set(2);
        let r = store.lock_for(&set, Some(&op)).execute(&op);
        assert_eq!(r, OpResult::Written { version: 3 }, "promotion must restore the version");
    }

    #[test]
    fn dead_key_version_memory_survives_flush() {
        let dir = TempDir::new("curp-tiered").unwrap();
        let store = tiny(&dir, 2);
        put(&store, "k", "v1"); // version 1
        let del = Op::Delete { key: b("k") };
        let set = del.key_hashes().shard_set(2);
        store.lock_for(&set, Some(&del)).execute(&del);
        sync_all(&store);
        store.maintain().unwrap();
        // Re-create: the version must continue from the dead record.
        assert_eq!(put(&store, "k", "v2"), OpResult::Written { version: 2 });
        // And a conditional against the deleted version works pre-recreate.
        let dir2 = TempDir::new("curp-tiered").unwrap();
        let store2 = tiny(&dir2, 2);
        put(&store2, "k", "v1");
        store2.lock_for(&set, Some(&del)).execute(&del);
        sync_all(&store2);
        store2.maintain().unwrap();
        let cput = Op::ConditionalPut { key: b("k"), expected_version: 1, value: b("v2") };
        let cset = cput.key_hashes().shard_set(2);
        assert_eq!(
            store2.lock_for(&cset, Some(&cput)).execute(&cput),
            OpResult::Written { version: 2 }
        );
    }

    #[test]
    fn merge_collapses_runs_and_newest_record_wins() {
        let dir = TempDir::new("curp-tiered").unwrap();
        let mut cfg = TierConfig::new(dir.path());
        cfg.memtable_budget = 1;
        cfg.merge_threshold = 2;
        cfg.fsync = false;
        let store: TieredStore = TieredStore::over(ShardedStore::new(2), cfg).unwrap();
        // Three flush cycles over overlapping keys: k stays hot, ki varies.
        for round in 0..3 {
            put(&store, "k", &format!("round{round}"));
            put(&store, &format!("only{round}"), "x");
            sync_all(&store);
            // Flush without merging yet (threshold 2 → merge on 3rd run).
            let mut guards = store.mem.lock_all();
            store.flush(&mut guards).unwrap();
        }
        assert_eq!(store.run_count(), 3);
        store.merge().unwrap();
        assert_eq!(store.run_count(), 1, "merge must collapse to one run");
        assert_eq!(get(&store, "k"), OpResult::Value(Some(b("round2"))), "newest must win");
        for round in 0..3 {
            assert_eq!(get(&store, &format!("only{round}")), OpResult::Value(Some(b("x"))));
        }
        // Only the merged run file remains on disk.
        let files: Vec<_> = std::fs::read_dir(store.tier_dir()).unwrap().collect();
        assert_eq!(files.len(), 1, "old run files must be deleted after merge");
    }

    #[test]
    fn merge_preserves_dead_records() {
        let dir = TempDir::new("curp-tiered").unwrap();
        let mut cfg = TierConfig::new(dir.path());
        cfg.memtable_budget = 1;
        cfg.merge_threshold = 1;
        cfg.fsync = false;
        let store: TieredStore = TieredStore::over(ShardedStore::new(2), cfg).unwrap();
        put(&store, "gone", "v"); // version 1
        let del = Op::Delete { key: b("gone") };
        let set = del.key_hashes().shard_set(2);
        store.lock_for(&set, Some(&del)).execute(&del);
        put(&store, "pad", "p");
        sync_all(&store);
        {
            let mut guards = store.mem.lock_all();
            store.flush(&mut guards).unwrap();
        }
        put(&store, "pad", "p2");
        sync_all(&store);
        store.maintain().unwrap(); // second flush + merge (threshold 1)
        assert_eq!(store.run_count(), 1);
        // The dead record survived the merge: version memory intact.
        assert_eq!(put(&store, "gone", "back"), OpResult::Written { version: 2 });
    }

    #[test]
    fn export_merges_memtable_over_runs() {
        let dir = TempDir::new("curp-tiered").unwrap();
        let store = tiny(&dir, 4);
        let reference: ShardedStore = ShardedStore::new(4);
        let ops: Vec<Op> = (0..24)
            .map(|i| Op::Put { key: b(&format!("k{}", i % 8)), value: b(&format!("v{i}")) })
            .chain([Op::Delete { key: b("k3") }])
            .collect();
        for (i, op) in ops.iter().enumerate() {
            let set = op.key_hashes().shard_set(4);
            store.lock_for(&set, Some(op)).execute(op);
            reference.execute(op);
            if i == 10 {
                sync_all(&store);
                reference.mark_synced(reference.log_head());
                store.maintain().unwrap();
            }
        }
        let (mut t_obj, t_dead) = store.export();
        let (mut r_obj, r_dead) = reference.export();
        // Flushed/promoted objects read back with write_pos == 0; compare
        // with positions normalized (the frontier logic is tested elsewhere).
        for (_, o) in t_obj.iter_mut().chain(r_obj.iter_mut()) {
            o.write_pos = 0;
        }
        assert_eq!(t_obj, r_obj);
        assert_eq!(t_dead, r_dead);
        assert_eq!(store.len(), reference.len());
        // Per-shard exports union to the full export.
        let mut shard_obj = Vec::new();
        let mut shard_dead = Vec::new();
        for s in 0..4 {
            let (o, d) = store.export_shard(s);
            shard_obj.extend(o);
            shard_dead.extend(d);
        }
        shard_obj.sort_by(|a, b| a.0.cmp(&b.0));
        shard_dead.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, o) in shard_obj.iter_mut() {
            o.write_pos = 0;
        }
        assert_eq!(shard_obj, t_obj);
        assert_eq!(shard_dead, t_dead);
    }

    #[test]
    fn absorb_runs_folds_everything_back_into_the_memtable() {
        let dir = TempDir::new("curp-tiered").unwrap();
        let store = tiny(&dir, 4);
        for i in 0..16 {
            put(&store, &format!("k{i}"), &format!("v{i}"));
        }
        let del = Op::Delete { key: b("k0") };
        let set = del.key_hashes().shard_set(4);
        store.lock_for(&set, Some(&del)).execute(&del);
        sync_all(&store);
        store.maintain().unwrap();
        let before = store.export();
        let mut guards = store.lock_all_for(None);
        store.absorb_runs(&mut guards);
        // Guard-level whole-store view now sees every key.
        let (mut obj, dead) = guards.export();
        drop(guards);
        for (_, o) in obj.iter_mut() {
            o.write_pos = 0;
        }
        let (mut before_obj, before_dead) = before;
        for (_, o) in before_obj.iter_mut() {
            o.write_pos = 0;
        }
        assert_eq!(obj, before_obj);
        assert_eq!(dead, before_dead);
        assert_eq!(store.run_count(), 0);
        let files: Vec<_> = std::fs::read_dir(store.tier_dir()).unwrap().collect();
        assert!(files.is_empty(), "absorbed run files must be deleted");
    }

    #[test]
    fn drop_removes_the_tier_directory() {
        let dir = TempDir::new("curp-tiered").unwrap();
        let tier_dir;
        {
            let store = tiny(&dir, 2);
            put(&store, "k", "v");
            sync_all(&store);
            store.maintain().unwrap();
            tier_dir = store.tier_dir().to_path_buf();
            assert!(tier_dir.exists());
        }
        assert!(!tier_dir.exists(), "dropping the store must remove its run directory");
    }

    #[test]
    fn store_config_builds_a_tiered_engine() {
        let dir = TempDir::new("curp-tiered").unwrap();
        let cfg = StoreConfig::tiered(4, dir.path());
        let store: Box<dyn StateStore> = cfg.build();
        let op = Op::Put { key: b("k"), value: b("v") };
        let set = op.key_hashes().shard_set(store.num_shards());
        assert_eq!(store.lock_for(&set, Some(&op)).execute(&op), OpResult::Written { version: 1 });
        assert_eq!(store.len(), 1);
    }
}
