//! Property tests for the store's replication-bearing invariants:
//! determinism, synced-frontier bookkeeping, snapshot fidelity, and
//! equivalence of the in-place execute path with a naive reference
//! implementation.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use curp_proto::op::{Op, OpResult};
use curp_proto::wire::encode_seq;
use curp_storage::{ShardedStore, StateStore, Store, TempDir, TierConfig, TieredStore};
use proptest::prelude::*;

fn key(i: u8) -> Bytes {
    Bytes::from(format!("key-{}", i % 16))
}

#[derive(Debug, Clone)]
enum Step {
    Op(Op),
    Sync,
}

/// A deliberately naive store with the same observable semantics as
/// [`Store`]: every mutation clones the current value, modifies the clone,
/// and replaces the whole object. This is the behavior `Store::execute` had
/// before the in-place rewrite; keeping it as the executable specification
/// pins the determinism contract backups and recovery replay rely on
/// (results, versions, and log positions must match op-for-op).
#[derive(Default)]
struct NaiveStore {
    objects: HashMap<Bytes, (NaiveValue, u64, u64)>, // value, version, write_pos
    dead_versions: HashMap<Bytes, u64>,
    log_head: u64,
}

#[derive(Clone, PartialEq)]
enum NaiveValue {
    Str(Bytes),
    Hash(HashMap<Bytes, Bytes>),
    Counter(i64),
    List(Vec<Bytes>),
    Set(HashSet<Bytes>),
}

impl NaiveStore {
    fn current_version(&self, key: &Bytes) -> u64 {
        self.objects
            .get(key)
            .map(|(_, v, _)| *v)
            .or_else(|| self.dead_versions.get(key).copied())
            .unwrap_or(0)
    }

    fn write(&mut self, key: &Bytes, value: NaiveValue) -> u64 {
        let version = self.current_version(key) + 1;
        self.dead_versions.remove(key);
        let pos = self.log_head;
        self.log_head += 1;
        self.objects.insert(key.clone(), (value, version, pos));
        version
    }

    fn execute(&mut self, op: &Op) -> OpResult {
        match op {
            Op::Get { key } => match self.objects.get(key).map(|(v, _, _)| v) {
                None => OpResult::Value(None),
                Some(NaiveValue::Str(b)) => OpResult::Value(Some(b.clone())),
                Some(NaiveValue::Counter(c)) => OpResult::Value(Some(Bytes::from(c.to_string()))),
                Some(_) => OpResult::WrongType,
            },
            Op::Put { key, value } => {
                let version = self.write(key, NaiveValue::Str(value.clone()));
                OpResult::Written { version }
            }
            Op::Delete { key } => {
                self.log_head += 1;
                if let Some((_, version, _)) = self.objects.remove(key) {
                    self.dead_versions.insert(key.clone(), version);
                }
                OpResult::Written { version: self.current_version(key) }
            }
            Op::ConditionalPut { key, expected_version, value } => {
                let actual = self.current_version(key);
                if actual != *expected_version {
                    return OpResult::ConditionFailed { actual_version: actual };
                }
                let version = self.write(key, NaiveValue::Str(value.clone()));
                OpResult::Written { version }
            }
            Op::MultiPut { kvs } => {
                let mut last = 0;
                for (key, value) in kvs {
                    last = self.write(key, NaiveValue::Str(value.clone()));
                }
                OpResult::Written { version: last }
            }
            Op::Incr { key, delta } => {
                let current = match self.objects.get(key).map(|(v, _, _)| v) {
                    None => 0,
                    Some(NaiveValue::Counter(c)) => *c,
                    Some(NaiveValue::Str(s)) => {
                        match std::str::from_utf8(s).ok().and_then(|s| s.parse::<i64>().ok()) {
                            Some(c) => c,
                            None => return OpResult::WrongType,
                        }
                    }
                    Some(_) => return OpResult::WrongType,
                };
                let new = current.wrapping_add(*delta);
                self.write(key, NaiveValue::Counter(new));
                OpResult::Counter(new)
            }
            Op::HSet { key, field, value } => {
                let mut hash = match self.objects.get(key).map(|(v, _, _)| v) {
                    None => HashMap::new(),
                    Some(NaiveValue::Hash(h)) => h.clone(),
                    Some(_) => return OpResult::WrongType,
                };
                hash.insert(field.clone(), value.clone());
                let version = self.write(key, NaiveValue::Hash(hash));
                OpResult::Written { version }
            }
            Op::HGet { key, field } => match self.objects.get(key).map(|(v, _, _)| v) {
                None => OpResult::Value(None),
                Some(NaiveValue::Hash(h)) => OpResult::Value(h.get(field).cloned()),
                Some(_) => OpResult::WrongType,
            },
            Op::ListPush { key, value } => {
                let mut list = match self.objects.get(key).map(|(v, _, _)| v) {
                    None => Vec::new(),
                    Some(NaiveValue::List(l)) => l.clone(),
                    Some(_) => return OpResult::WrongType,
                };
                list.push(value.clone());
                let len = list.len() as i64;
                self.write(key, NaiveValue::List(list));
                OpResult::Counter(len)
            }
            Op::SetAdd { key, member } => {
                let mut set = match self.objects.get(key).map(|(v, _, _)| v) {
                    None => HashSet::new(),
                    Some(NaiveValue::Set(s)) => s.clone(),
                    Some(_) => return OpResult::WrongType,
                };
                let added = set.insert(member.clone()) as i64;
                self.write(key, NaiveValue::Set(set));
                OpResult::Counter(added)
            }
        }
    }

    /// The real store's value for `key` must equal ours structurally.
    fn value_matches(&self, key: &Bytes, store: &Store) -> bool {
        use curp_storage::Value;
        match (self.objects.get(key), store.get_object(key)) {
            (None, None) => true,
            (Some((value, version, pos)), Some(obj)) => {
                if obj.version != *version || obj.write_pos != *pos {
                    return false;
                }
                match (value, &obj.value) {
                    (NaiveValue::Str(a), Value::Str(b)) => a == b,
                    (NaiveValue::Hash(a), Value::Hash(b)) => a == b,
                    (NaiveValue::Counter(a), Value::Counter(b)) => a == b,
                    (NaiveValue::List(a), Value::List(b)) => a == b,
                    (NaiveValue::Set(a), Value::Set(b)) => a == b,
                    _ => false,
                }
            }
            _ => false,
        }
    }
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        8 => arb_op().prop_map(Step::Op),
        1 => Just(Step::Sync),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>())
            .prop_map(|(k, v)| Op::Put { key: key(k), value: Bytes::from(vec![v; 8]) }),
        any::<u8>().prop_map(|k| Op::Delete { key: key(k) }),
        (any::<u8>(), -4..5i64).prop_map(|(k, d)| Op::Incr { key: key(k), delta: d }),
        (any::<u8>(), any::<u8>()).prop_map(|(k, f)| Op::HSet {
            key: key(k),
            field: Bytes::from(vec![f % 4]),
            value: Bytes::from_static(b"v"),
        }),
        (any::<u8>(), any::<u8>())
            .prop_map(|(k, m)| Op::SetAdd { key: key(k), member: Bytes::from(vec![m % 8]) }),
        (any::<u8>(), any::<u8>())
            .prop_map(|(k, v)| Op::ListPush { key: key(k), value: Bytes::from(vec![v]) }),
        any::<u8>().prop_map(|k| Op::Get { key: key(k) }),
    ]
}

/// The full op surface (including the ops `arb_op` leaves out) for the
/// reference-equivalence property.
fn arb_any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => arb_op(),
        1 => (any::<u8>(), 0..4u64, any::<u8>()).prop_map(|(k, ev, v)| Op::ConditionalPut {
            key: key(k),
            expected_version: ev,
            value: Bytes::from(vec![v; 4]),
        }),
        1 => prop::collection::vec((any::<u8>(), any::<u8>()), 1..4).prop_map(|kvs| {
            Op::MultiPut {
                kvs: kvs.into_iter().map(|(k, v)| (key(k), Bytes::from(vec![v; 4]))).collect(),
            }
        }),
        1 => (any::<u8>(), any::<u8>())
            .prop_map(|(k, f)| Op::HGet { key: key(k), field: Bytes::from(vec![f % 4]) }),
    ]
}

/// A step for the sharded-vs-single equivalence property: the full op
/// surface plus sync-frontier advances.
fn arb_any_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        8 => arb_any_op().prop_map(Step::Op),
        1 => Just(Step::Sync),
    ]
}

/// A step for the tiered-vs-memory equivalence property: the full op
/// surface, sync-frontier advances, and maintenance ticks (flush+merge).
#[derive(Debug, Clone)]
enum TierStep {
    Op(Op),
    Sync,
    Maintain,
}

fn arb_tier_step() -> impl Strategy<Value = TierStep> {
    prop_oneof![
        8 => arb_any_op().prop_map(TierStep::Op),
        1 => Just(TierStep::Sync),
        1 => Just(TierStep::Maintain),
    ]
}

/// Deterministic byte encoding of an exported store state — the payload a
/// snapshot would carry. Byte-identical iff the exports are identical.
fn export_bytes(export: &curp_storage::StoreExport) -> Bytes {
    let mut buf = bytes::BytesMut::new();
    encode_seq(&export.0, &mut buf);
    encode_seq(&export.1, &mut buf);
    buf.freeze()
}

proptest! {
    /// The 4-way sharded engine is observationally identical to the
    /// single-space store when fed the same sequential op/sync stream:
    /// same results (and therefore versions), same log positions, same
    /// unsynced frontier at every step, and byte-identical snapshot
    /// exports at the end — the equivalence the master's sharding refactor
    /// rests on.
    #[test]
    fn sharded_store_matches_single_shard_reference(
        steps in prop::collection::vec(arb_any_step(), 1..150)
    ) {
        let sharded: ShardedStore = ShardedStore::new(4);
        let mut single = Store::new();
        for step in &steps {
            match step {
                Step::Sync => {
                    single.mark_synced(single.log_head());
                    sharded.mark_synced(sharded.log_head());
                }
                Step::Op(op) => {
                    prop_assert_eq!(
                        sharded.execute(op),
                        single.execute(op),
                        "result diverged on {:?}",
                        op
                    );
                    prop_assert_eq!(sharded.log_head(), single.log_head());
                }
            }
            prop_assert_eq!(sharded.synced_pos(), single.synced_pos());
            for i in 0..16u8 {
                let k = key(i);
                prop_assert_eq!(
                    sharded.is_unsynced(&k),
                    single.is_unsynced(&k),
                    "unsynced frontier diverged at {:?}",
                    k
                );
            }
        }
        prop_assert_eq!(sharded.len(), single.len());
        let (se, ss) = (sharded.export(), single.export());
        prop_assert_eq!(&se, &ss, "exports diverged");
        prop_assert_eq!(export_bytes(&se), export_bytes(&ss), "snapshot bytes diverged");
        // Import round-trips agree too (both land fully synced).
        let resharded: ShardedStore = ShardedStore::import(4, se.0.clone(), se.1.clone());
        let resingle = Store::import(ss.0, ss.1);
        prop_assert_eq!(resharded.export(), resingle.export());
        prop_assert_eq!(resharded.has_unsynced(), resingle.has_unsynced());
    }

    /// The larger-than-memory engine is observationally identical to the
    /// in-memory sharded engine under the same op/sync/maintain stream,
    /// with a 1-byte memtable budget so *every* maintenance tick evicts
    /// all synced state to run files: same results and versions, same log
    /// positions, same synced frontier, and the same export modulo
    /// `write_pos` (flushed-then-promoted objects read back at 0 — they
    /// are synced, the historical position no longer matters). This is
    /// the equivalence the `StateStore` abstraction promises consumers.
    #[test]
    fn tiered_store_matches_the_in_memory_engine(
        steps in prop::collection::vec(arb_tier_step(), 1..120)
    ) {
        let dir = TempDir::new("curp-proptest-tiered").unwrap();
        let mut cfg = TierConfig::new(dir.path());
        cfg.memtable_budget = 1;
        cfg.merge_threshold = 1;
        cfg.fsync = false;
        let tiered: TieredStore = TieredStore::over(ShardedStore::new(4), cfg).unwrap();
        let reference: ShardedStore = ShardedStore::new(4);
        for step in &steps {
            match step {
                TierStep::Sync => {
                    tiered.lock_all_for(None).mark_synced(tiered.log_head());
                    reference.mark_synced(reference.log_head());
                }
                TierStep::Maintain => tiered.maintain().unwrap(),
                TierStep::Op(op) => {
                    let set = op.key_hashes().shard_set(4);
                    // Two separate statements: holding one store's shard
                    // guards while locking another store's same-rank shards
                    // trips the lock auditor (and is bad form anyway).
                    let got = tiered.lock_for(&set, Some(op)).execute(op);
                    prop_assert_eq!(got, reference.execute(op), "result diverged on {:?}", op);
                    prop_assert_eq!(StateStore::log_head(&tiered), reference.log_head());
                }
            }
            prop_assert_eq!(StateStore::synced_pos(&tiered), reference.synced_pos());
            prop_assert_eq!(StateStore::has_unsynced(&tiered), reference.has_unsynced());
        }
        prop_assert_eq!(StateStore::len(&tiered), reference.len());
        let (mut t_obj, t_dead) = StateStore::export(&tiered);
        let (mut r_obj, r_dead) = reference.export();
        for (_, o) in t_obj.iter_mut().chain(r_obj.iter_mut()) {
            o.write_pos = 0;
        }
        prop_assert_eq!(t_obj, r_obj, "exports diverged");
        prop_assert_eq!(t_dead, r_dead, "dead-version exports diverged");
    }

    /// The in-place `Store::execute` matches the naive clone-per-mutation
    /// reference implementation op-for-op: same results (and therefore
    /// versions), same log positions, same per-key state. This is the
    /// determinism contract backups and recovery replay depend on.
    #[test]
    fn execute_matches_naive_reference(ops in prop::collection::vec(arb_any_op(), 1..150)) {
        let mut store = Store::new();
        let mut reference = NaiveStore::default();
        for op in &ops {
            let got = store.execute(op);
            let want = reference.execute(op);
            prop_assert_eq!(&got, &want, "result diverged on {:?}", op);
            prop_assert_eq!(
                store.log_head(),
                reference.log_head,
                "log position diverged on {:?}",
                op
            );
        }
        for i in 0..16u8 {
            let k = key(i);
            prop_assert!(reference.value_matches(&k, &store), "state diverged at key {:?}", k);
        }
        prop_assert_eq!(store.len(), reference.objects.len());
    }

    /// Two stores fed the same operations agree on every result — the
    /// property backups and recovery replay depend on.
    #[test]
    fn execution_is_deterministic(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut a = Store::new();
        let mut b = Store::new();
        for op in &ops {
            prop_assert_eq!(a.execute(op), b.execute(op));
        }
        prop_assert_eq!(a.log_head(), b.log_head());
        let (oa, da) = a.export();
        let (ob, db) = b.export();
        prop_assert_eq!(oa, ob);
        prop_assert_eq!(da, db);
    }

    /// The synced/unsynced partition is exact: after `mark_synced(head)`
    /// nothing is unsynced; any later mutation makes exactly its keys
    /// unsynced; reads never change the frontier.
    #[test]
    fn unsynced_tracking_is_exact(steps in prop::collection::vec(arb_step(), 1..150)) {
        let mut store = Store::new();
        // Model: keys written since the last sync.
        let mut dirty: std::collections::HashSet<Bytes> = Default::default();
        for step in &steps {
            match step {
                Step::Sync => {
                    let head = store.log_head();
                    store.mark_synced(head);
                    dirty.clear();
                    prop_assert!(!store.has_unsynced());
                }
                Step::Op(op) => {
                    let before = store.log_head();
                    let _ = store.execute(op);
                    let mutated = store.log_head() > before;
                    if mutated && !op.is_read_only() {
                        for k in op.keys() {
                            dirty.insert(k.clone());
                        }
                    }
                }
            }
            for i in 0..16u8 {
                let k = key(i);
                prop_assert_eq!(
                    store.is_unsynced(&k),
                    dirty.contains(&k),
                    "key {:?} frontier mismatch",
                    k
                );
            }
        }
    }

    /// Snapshot round-trips preserve every observable value.
    #[test]
    fn export_import_preserves_reads(ops in prop::collection::vec(arb_op(), 1..100)) {
        let mut store = Store::new();
        for op in &ops {
            store.execute(op);
        }
        let (objects, dead) = store.export();
        let restored = Store::import(objects, dead);
        let mut a = store.clone();
        let mut b = restored;
        for i in 0..16u8 {
            prop_assert_eq!(
                a.execute(&Op::Get { key: key(i) }),
                b.execute(&Op::Get { key: key(i) }),
                "GET {:?} differs after snapshot",
                key(i)
            );
        }
        // Versions survive the snapshot: the next write continues the chain.
        for i in 0..16u8 {
            prop_assert_eq!(
                a.execute(&Op::Put { key: key(i), value: Bytes::new() }),
                b.execute(&Op::Put { key: key(i), value: Bytes::new() })
            );
        }
    }

    /// Log positions are consumed iff state changed; failed ops are free.
    #[test]
    fn log_positions_track_mutations(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut store = Store::new();
        for op in &ops {
            let before = store.log_head();
            let result = store.execute(op);
            let consumed = store.log_head() - before;
            use curp_proto::op::OpResult;
            match (&result, op) {
                (OpResult::WrongType | OpResult::ConditionFailed { .. }, _) => {
                    prop_assert_eq!(consumed, 0, "failed op consumed a position")
                }
                (_, Op::Get { .. } | Op::HGet { .. }) => prop_assert_eq!(consumed, 0),
                (_, Op::MultiPut { kvs }) => prop_assert_eq!(consumed, kvs.len() as u64),
                _ => prop_assert_eq!(consumed, 1),
            }
        }
    }
}
