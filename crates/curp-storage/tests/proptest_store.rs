//! Property tests for the store's replication-bearing invariants:
//! determinism, synced-frontier bookkeeping, and snapshot fidelity.

use bytes::Bytes;
use curp_proto::op::Op;
use curp_storage::Store;
use proptest::prelude::*;

fn key(i: u8) -> Bytes {
    Bytes::from(format!("key-{}", i % 16))
}

#[derive(Debug, Clone)]
enum Step {
    Op(Op),
    Sync,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        8 => arb_op().prop_map(Step::Op),
        1 => Just(Step::Sync),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>())
            .prop_map(|(k, v)| Op::Put { key: key(k), value: Bytes::from(vec![v; 8]) }),
        any::<u8>().prop_map(|k| Op::Delete { key: key(k) }),
        (any::<u8>(), -4..5i64).prop_map(|(k, d)| Op::Incr { key: key(k), delta: d }),
        (any::<u8>(), any::<u8>()).prop_map(|(k, f)| Op::HSet {
            key: key(k),
            field: Bytes::from(vec![f % 4]),
            value: Bytes::from_static(b"v"),
        }),
        (any::<u8>(), any::<u8>())
            .prop_map(|(k, m)| Op::SetAdd { key: key(k), member: Bytes::from(vec![m % 8]) }),
        (any::<u8>(), any::<u8>())
            .prop_map(|(k, v)| Op::ListPush { key: key(k), value: Bytes::from(vec![v]) }),
        any::<u8>().prop_map(|k| Op::Get { key: key(k) }),
    ]
}

proptest! {
    /// Two stores fed the same operations agree on every result — the
    /// property backups and recovery replay depend on.
    #[test]
    fn execution_is_deterministic(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut a = Store::new();
        let mut b = Store::new();
        for op in &ops {
            prop_assert_eq!(a.execute(op), b.execute(op));
        }
        prop_assert_eq!(a.log_head(), b.log_head());
        let (oa, da) = a.export();
        let (ob, db) = b.export();
        prop_assert_eq!(oa, ob);
        prop_assert_eq!(da, db);
    }

    /// The synced/unsynced partition is exact: after `mark_synced(head)`
    /// nothing is unsynced; any later mutation makes exactly its keys
    /// unsynced; reads never change the frontier.
    #[test]
    fn unsynced_tracking_is_exact(steps in prop::collection::vec(arb_step(), 1..150)) {
        let mut store = Store::new();
        // Model: keys written since the last sync.
        let mut dirty: std::collections::HashSet<Bytes> = Default::default();
        for step in &steps {
            match step {
                Step::Sync => {
                    let head = store.log_head();
                    store.mark_synced(head);
                    dirty.clear();
                    prop_assert!(!store.has_unsynced());
                }
                Step::Op(op) => {
                    let before = store.log_head();
                    let _ = store.execute(op);
                    let mutated = store.log_head() > before;
                    if mutated && !op.is_read_only() {
                        for k in op.keys() {
                            dirty.insert(k.clone());
                        }
                    }
                }
            }
            for i in 0..16u8 {
                let k = key(i);
                prop_assert_eq!(
                    store.is_unsynced(&k),
                    dirty.contains(&k),
                    "key {:?} frontier mismatch",
                    k
                );
            }
        }
    }

    /// Snapshot round-trips preserve every observable value.
    #[test]
    fn export_import_preserves_reads(ops in prop::collection::vec(arb_op(), 1..100)) {
        let mut store = Store::new();
        for op in &ops {
            store.execute(op);
        }
        let (objects, dead) = store.export();
        let restored = Store::import(objects, dead);
        let mut a = store.clone();
        let mut b = restored;
        for i in 0..16u8 {
            prop_assert_eq!(
                a.execute(&Op::Get { key: key(i) }),
                b.execute(&Op::Get { key: key(i) }),
                "GET {:?} differs after snapshot",
                key(i)
            );
        }
        // Versions survive the snapshot: the next write continues the chain.
        for i in 0..16u8 {
            prop_assert_eq!(
                a.execute(&Op::Put { key: key(i), value: Bytes::new() }),
                b.execute(&Op::Put { key: key(i), value: Bytes::new() })
            );
        }
    }

    /// Log positions are consumed iff state changed; failed ops are free.
    #[test]
    fn log_positions_track_mutations(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut store = Store::new();
        for op in &ops {
            let before = store.log_head();
            let result = store.execute(op);
            let consumed = store.log_head() - before;
            use curp_proto::op::OpResult;
            match (&result, op) {
                (OpResult::WrongType | OpResult::ConditionFailed { .. }, _) => {
                    prop_assert_eq!(consumed, 0, "failed op consumed a position")
                }
                (_, Op::Get { .. } | Op::HGet { .. }) => prop_assert_eq!(consumed, 0),
                (_, Op::MultiPut { kvs }) => prop_assert_eq!(consumed, kvs.len() as u64),
                _ => prop_assert_eq!(consumed, 1),
            }
        }
    }
}
