//! Crash-mid-append property: truncating an AOF at **every** byte offset
//! yields a clean prefix load — no panic, no phantom entry, no reordering —
//! with the torn tail reported exactly when the cut falls inside a record.
//!
//! This is the property `BackupService::restore_from_aof` (and with it the
//! whole power-loss recovery path) leans on: an append interrupted by power
//! failure leaves a *prefix* of the bytes that were written, and every such
//! prefix must load to a prefix of the entries.

use bytes::Bytes;
use curp_proto::frame::FrameDecoder;
use curp_proto::message::LogEntry;
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{ClientId, RpcId};
use curp_proto::wire::Encode;
use curp_storage::{Aof, FsyncPolicy};
use proptest::prelude::*;

fn arb_entries() -> impl Strategy<Value = Vec<LogEntry>> {
    prop::collection::vec(
        (prop::collection::vec(any::<u8>(), 0..40), prop::collection::vec(any::<u8>(), 0..60)),
        1..6,
    )
    .prop_map(|kvs| {
        kvs.into_iter()
            .enumerate()
            .map(|(i, (key, value))| {
                let seq = i as u64;
                LogEntry {
                    seq,
                    rpc_id: Some(RpcId::new(ClientId(seq % 3 + 1), seq + 1)),
                    op: Op::Put { key: Bytes::from(key), value: Bytes::from(value) },
                    result: OpResult::Written { version: seq + 1 },
                }
            })
            .collect()
    })
}

/// Number of complete frames within the first `cut` bytes of `raw`.
fn complete_frames(raw: &[u8], cut: usize) -> (usize, usize) {
    let mut decoder = FrameDecoder::new();
    decoder.push(&raw[..cut]);
    let mut frames = 0;
    while let Ok(Some(_)) = decoder.next_frame() {
        frames += 1;
    }
    (frames, decoder.buffered())
}

fn tmpfile(tag: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("curp-proptest-aof-{}-{tag}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every byte-offset truncation of a well-formed AOF loads the exact
    /// entry prefix covered by complete frames, flags `truncated` iff the
    /// cut fell mid-record, and never errors (a tear is not corruption).
    #[test]
    fn every_truncation_offset_loads_a_clean_prefix(entries in arb_entries()) {
        let path = tmpfile(entries.iter().map(Encode::encoded_len).sum::<usize>() as u64);
        {
            let mut aof = Aof::open(&path, FsyncPolicy::Manual).unwrap();
            aof.append_batch(&entries).unwrap();
            aof.sync().unwrap();
        }
        let raw = std::fs::read(&path).unwrap();
        for cut in 0..=raw.len() {
            std::fs::write(&path, &raw[..cut]).unwrap();
            let outcome = Aof::load(&path).unwrap_or_else(|e| {
                panic!("cut at {cut}/{} must not be corruption: {e}", raw.len())
            });
            let (frames, leftover) = complete_frames(&raw, cut);
            prop_assert_eq!(
                outcome.entries.len(), frames,
                "cut {} of {}", cut, raw.len()
            );
            prop_assert_eq!(&outcome.entries[..], &entries[..frames]);
            prop_assert_eq!(outcome.truncated, leftover > 0);
            // clean_len marks exactly the loadable prefix: cutting the tear
            // there is what keeps the file appendable after recovery.
            prop_assert_eq!(outcome.clean_len, (cut - leftover) as u64);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
