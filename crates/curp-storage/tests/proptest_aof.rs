//! Crash-mid-append property: truncating an AOF at **every** byte offset
//! yields a clean prefix load — no panic, no phantom entry, no reordering —
//! with the torn tail reported exactly when the cut falls inside a record.
//!
//! This is the property `BackupService::restore_from_aof` (and with it the
//! whole power-loss recovery path) leans on: an append interrupted by power
//! failure leaves a *prefix* of the bytes that were written, and every such
//! prefix must load to a prefix of the entries.

use bytes::Bytes;
use curp_proto::frame::FrameDecoder;
use curp_proto::message::LogEntry;
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{ClientId, RpcId};
use curp_proto::wire::Encode;
use curp_storage::{Aof, FsyncPolicy};
use proptest::prelude::*;

fn arb_entries() -> impl Strategy<Value = Vec<LogEntry>> {
    prop::collection::vec(
        (prop::collection::vec(any::<u8>(), 0..40), prop::collection::vec(any::<u8>(), 0..60)),
        1..6,
    )
    .prop_map(|kvs| {
        kvs.into_iter()
            .enumerate()
            .map(|(i, (key, value))| {
                let seq = i as u64;
                LogEntry {
                    seq,
                    rpc_id: Some(RpcId::new(ClientId(seq % 3 + 1), seq + 1)),
                    op: Op::Put { key: Bytes::from(key), value: Bytes::from(value) },
                    result: OpResult::Written { version: seq + 1 },
                }
            })
            .collect()
    })
}

/// Number of complete frames within the first `cut` bytes of `raw`.
fn complete_frames(raw: &[u8], cut: usize) -> (usize, usize) {
    let mut decoder = FrameDecoder::new();
    decoder.push(&raw[..cut]);
    let mut frames = 0;
    while let Ok(Some(_)) = decoder.next_frame() {
        frames += 1;
    }
    (frames, decoder.buffered())
}

fn tmpfile(tag: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("curp-proptest-aof-{}-{tag}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every byte-offset truncation of a well-formed AOF loads the exact
    /// entry prefix covered by complete frames, flags `truncated` iff the
    /// cut fell mid-record, and never errors (a tear is not corruption).
    #[test]
    fn every_truncation_offset_loads_a_clean_prefix(entries in arb_entries()) {
        let path = tmpfile(entries.iter().map(Encode::encoded_len).sum::<usize>() as u64);
        {
            let mut aof = Aof::open(&path, FsyncPolicy::Manual).unwrap();
            aof.append_batch(&entries).unwrap();
            aof.sync().unwrap();
        }
        let raw = std::fs::read(&path).unwrap();
        for cut in 0..=raw.len() {
            std::fs::write(&path, &raw[..cut]).unwrap();
            let outcome = Aof::load(&path).unwrap_or_else(|e| {
                panic!("cut at {cut}/{} must not be corruption: {e}", raw.len())
            });
            let (frames, leftover) = complete_frames(&raw, cut);
            prop_assert_eq!(
                outcome.entries.len(), frames,
                "cut {} of {}", cut, raw.len()
            );
            prop_assert_eq!(&outcome.entries[..], &entries[..frames]);
            prop_assert_eq!(outcome.truncated, leftover > 0);
            // clean_len marks exactly the loadable prefix: cutting the tear
            // there is what keeps the file appendable after recovery.
            prop_assert_eq!(outcome.clean_len, (cut - leftover) as u64);
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Crash-mid-rewrite at **every** byte offset of the tmp file: the
    /// live AOF still loads exactly the old entries (the rename is the
    /// commit point; an un-renamed tmp is dead bytes, whatever prefix of
    /// it reached disk). Once the rename lands, the file loads exactly
    /// the new entries. At no offset does a load observe a splice of the
    /// two logs — the invariant that lets `BackupService` rewrite a
    /// backup's log underneath a live replica without a recovery mode.
    #[test]
    fn rewrite_crash_at_every_offset_yields_old_or_new_never_a_splice(
        old in arb_entries(),
        new in arb_entries(),
    ) {
        let tag = (old.len() * 31 + new.len()) as u64;
        let path = tmpfile(tag);
        let tmp = path.with_extension("rewrite");
        {
            let mut aof = Aof::open(&path, FsyncPolicy::Manual).unwrap();
            aof.append_batch(&old).unwrap();
            aof.sync().unwrap();
        }
        let old_raw = std::fs::read(&path).unwrap();
        // The exact bytes `Aof::rewrite` streams into the tmp file: a
        // completed rewrite at a scratch path yields them verbatim.
        let scratch = tmpfile(tag ^ 0x5CA7C4);
        let new_raw = {
            drop(Aof::rewrite(&scratch, &new, FsyncPolicy::Never).unwrap());
            let raw = std::fs::read(&scratch).unwrap();
            std::fs::remove_file(&scratch).unwrap();
            raw
        };

        // Phase 1 — power fails while the tmp file is being written (or
        // fsynced, or before the rename commits): any byte prefix of the
        // tmp may survive next to the untouched live AOF.
        for cut in 0..=new_raw.len() {
            std::fs::write(&path, &old_raw).unwrap();
            std::fs::write(&tmp, &new_raw[..cut]).unwrap();
            let outcome = Aof::load(&path).unwrap_or_else(|e| {
                panic!("tmp cut at {cut}/{} corrupted the live AOF: {e}", new_raw.len())
            });
            prop_assert_eq!(
                &outcome.entries[..], &old[..],
                "tmp cut at {} leaked into the live log", cut
            );
            prop_assert!(!outcome.truncated, "the live AOF was never touched");
        }
        std::fs::remove_file(&tmp).unwrap();

        // Phase 2 — the rename landed (tmp was complete and fsynced
        // first): the path now loads exactly the new entries.
        std::fs::write(&path, &old_raw).unwrap();
        drop(Aof::rewrite(&path, &new, FsyncPolicy::Manual).unwrap());
        let outcome = Aof::load(&path).unwrap();
        prop_assert_eq!(&outcome.entries[..], &new[..]);
        prop_assert!(!outcome.truncated);
        prop_assert!(!tmp.exists(), "a completed rewrite must consume its tmp file");
        std::fs::remove_file(&path).unwrap();
    }
}
