//! Client-side RPC id assignment and acknowledgement tracking.

use std::collections::BTreeSet;

use curp_proto::types::{ClientId, RpcId};

/// Assigns sequence numbers and computes the piggybacked acknowledgement
/// watermark (`first_incomplete`) for one client.
///
/// The watermark is the smallest sequence number whose result the client has
/// *not* yet received; everything below it may be garbage-collected by
/// masters. Because a client can have several RPCs outstanding (e.g. reads
/// overlapping an update), completion can arrive out of order and the
/// watermark only advances over a contiguous prefix.
#[derive(Debug)]
pub struct RiflSequencer {
    id: ClientId,
    next_seq: u64,
    first_incomplete: u64,
    /// Completed-but-not-yet-contiguous sequence numbers.
    done_out_of_order: BTreeSet<u64>,
}

impl RiflSequencer {
    /// Creates a sequencer for lease `id`. Sequence numbers start at 1.
    pub fn new(id: ClientId) -> Self {
        RiflSequencer { id, next_seq: 1, first_incomplete: 1, done_out_of_order: BTreeSet::new() }
    }

    /// The lease this sequencer stamps onto RPC ids.
    pub fn client_id(&self) -> ClientId {
        self.id
    }

    /// Allocates the id for a new RPC.
    pub fn next_rpc_id(&mut self) -> RpcId {
        let id = RpcId::new(self.id, self.next_seq);
        self.next_seq += 1;
        id
    }

    /// Current acknowledgement watermark to piggyback on outgoing RPCs.
    pub fn first_incomplete(&self) -> u64 {
        self.first_incomplete
    }

    /// Marks `id`'s result as received by the application, advancing the
    /// watermark over any newly contiguous prefix.
    ///
    /// # Panics
    /// Panics if `id` belongs to a different client.
    pub fn complete(&mut self, id: RpcId) {
        assert_eq!(id.client, self.id, "completion for foreign client");
        if id.seq < self.first_incomplete {
            return; // already acknowledged
        }
        self.done_out_of_order.insert(id.seq);
        while self.done_out_of_order.remove(&self.first_incomplete) {
            self.first_incomplete += 1;
        }
    }

    /// Number of RPCs issued but not yet completed (outstanding window).
    pub fn outstanding(&self) -> u64 {
        (self.next_seq - self.first_incomplete) - self.done_out_of_order.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_start_at_one_and_increase() {
        let mut s = RiflSequencer::new(ClientId(7));
        assert_eq!(s.next_rpc_id(), RpcId::new(ClientId(7), 1));
        assert_eq!(s.next_rpc_id(), RpcId::new(ClientId(7), 2));
    }

    #[test]
    fn watermark_advances_in_order() {
        let mut s = RiflSequencer::new(ClientId(1));
        let a = s.next_rpc_id();
        let b = s.next_rpc_id();
        assert_eq!(s.first_incomplete(), 1);
        s.complete(a);
        assert_eq!(s.first_incomplete(), 2);
        s.complete(b);
        assert_eq!(s.first_incomplete(), 3);
    }

    #[test]
    fn watermark_waits_for_contiguity() {
        let mut s = RiflSequencer::new(ClientId(1));
        let a = s.next_rpc_id();
        let b = s.next_rpc_id();
        let c = s.next_rpc_id();
        s.complete(c);
        s.complete(b);
        assert_eq!(s.first_incomplete(), 1, "seq 1 still outstanding");
        s.complete(a);
        assert_eq!(s.first_incomplete(), 4, "prefix collapsed at once");
        assert_eq!(s.outstanding(), 0);
    }

    #[test]
    fn duplicate_completion_is_harmless() {
        let mut s = RiflSequencer::new(ClientId(1));
        let a = s.next_rpc_id();
        s.complete(a);
        s.complete(a);
        assert_eq!(s.first_incomplete(), 2);
    }

    #[test]
    fn outstanding_counts_window() {
        let mut s = RiflSequencer::new(ClientId(1));
        let _a = s.next_rpc_id();
        let b = s.next_rpc_id();
        assert_eq!(s.outstanding(), 2);
        s.complete(b);
        assert_eq!(s.outstanding(), 1);
    }

    #[test]
    #[should_panic(expected = "foreign client")]
    fn foreign_completion_panics() {
        let mut s = RiflSequencer::new(ClientId(1));
        s.complete(RpcId::new(ClientId(2), 1));
    }
}
