//! RIFL: Reusable Infrastructure For Linearizability (Lee et al., SOSP '15).
//!
//! CURP leans on RIFL for exactly-once semantics (§3.3): when witness
//! requests are replayed during recovery, operations that were already
//! replicated to backups would otherwise re-execute and break
//! linearizability. RIFL assigns every RPC a unique id, durably records each
//! completed RPC's result alongside the data it mutated, filters duplicate
//! invocations, and garbage-collects records via piggybacked client
//! acknowledgements and client leases.
//!
//! This crate implements the three RIFL roles:
//!
//! * [`table::RiflTable`] — server-side duplicate filter + completion records;
//! * [`client::RiflSequencer`] — client-side id assignment and ack tracking;
//! * [`lease::LeaseManager`] — coordinator-side client leases.
//!
//! Both CURP-specific modifications from §4.8 are implemented: piggybacked
//! acks are ignored while a master replays witness data (replays arrive in
//! arbitrary order), and lease expiry requires a backup sync first (enforced
//! by `curp-core`, which syncs before calling
//! [`RiflTable::expire_client`](table::RiflTable::expire_client)).

pub mod client;
pub mod lease;
pub mod table;

pub use client::RiflSequencer;
pub use lease::LeaseManager;
pub use table::{CheckResult, RiflTable};
