//! Server-side completion records and duplicate filtering.

use std::collections::{BTreeMap, HashMap};

use curp_proto::message::LogEntry;
use curp_proto::op::OpResult;
use curp_proto::types::{ClientId, RpcId};

/// Exported form of the table: `(client, first_incomplete, [(seq, result)])`
/// rows in deterministic order — the snapshot representation.
pub type RiflExport = Vec<(ClientId, u64, Vec<(u64, OpResult)>)>;

/// Outcome of checking an incoming RPC id against the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// Never seen: execute it, then call [`RiflTable::record`].
    New,
    /// Already executed: skip execution, return the recorded result.
    Duplicate(OpResult),
    /// The client already acknowledged receiving this result (or its lease
    /// expired), so the record is gone. Per RIFL, such stale retries are
    /// ignored rather than re-executed.
    Stale,
}

#[derive(Debug, Default, Clone)]
struct ClientRecords {
    /// All RPCs with `seq < first_incomplete` have been acknowledged and
    /// their completion records discarded.
    first_incomplete: u64,
    /// Completion records for non-acknowledged RPCs, by sequence number.
    records: BTreeMap<u64, OpResult>,
}

/// The per-master RIFL state.
///
/// Durability note: completion records ride inside the replicated
/// [`LogEntry`]s (op + result), so the table can always be rebuilt from a
/// backup's log via [`RiflTable::rebuild`]; no separate persistence needed.
#[derive(Debug, Default, Clone)]
pub struct RiflTable {
    clients: HashMap<ClientId, ClientRecords>,
    /// While replaying witness data, piggybacked acks must be ignored (§4.8):
    /// replays arrive in arbitrary order, and an ack carried by a later RPC
    /// must not suppress the replay of an earlier one.
    recovery_mode: bool,
}

impl RiflTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RiflTable::default()
    }

    /// Enters or leaves recovery mode (ack suppression, §4.8).
    pub fn set_recovery_mode(&mut self, on: bool) {
        self.recovery_mode = on;
    }

    /// Whether recovery mode is active.
    pub fn recovery_mode(&self) -> bool {
        self.recovery_mode
    }

    /// Classifies an incoming RPC id.
    pub fn check(&self, id: RpcId) -> CheckResult {
        let Some(client) = self.clients.get(&id.client) else {
            return CheckResult::New;
        };
        if id.seq < client.first_incomplete {
            return CheckResult::Stale;
        }
        match client.records.get(&id.seq) {
            Some(result) => CheckResult::Duplicate(result.clone()),
            None => CheckResult::New,
        }
    }

    /// Records the completion of `id` with `result`.
    ///
    /// # Panics
    /// Panics if the id is already recorded with a *different* result —
    /// that would mean non-deterministic re-execution, a protocol bug.
    pub fn record(&mut self, id: RpcId, result: OpResult) {
        let client = self.clients.entry(id.client).or_default();
        if let Some(prev) = client.records.get(&id.seq) {
            assert_eq!(prev, &result, "conflicting completion records for {id}");
            return;
        }
        client.records.insert(id.seq, result);
    }

    /// Applies a piggybacked acknowledgement: the client has received the
    /// results of all RPCs with `seq < first_incomplete`, so their records
    /// can be dropped. No-op in recovery mode (§4.8).
    pub fn ack(&mut self, client_id: ClientId, first_incomplete: u64) {
        if self.recovery_mode {
            return;
        }
        let client = self.clients.entry(client_id).or_default();
        if first_incomplete <= client.first_incomplete {
            return;
        }
        client.first_incomplete = first_incomplete;
        client.records = client.records.split_off(&first_incomplete);
    }

    /// Discards all records of an expired client (§4.8). The caller (the
    /// master) must have synced to backups first.
    pub fn expire_client(&mut self, client_id: ClientId) {
        // Leave a tombstone watermark so stale retries stay Stale rather
        // than re-executing as New.
        let client = self.clients.entry(client_id).or_default();
        client.first_incomplete = u64::MAX;
        client.records.clear();
    }

    /// Rebuilds the table from a replicated operation log (recovery restore).
    pub fn rebuild(entries: &[LogEntry]) -> Self {
        let mut table = RiflTable::new();
        for e in entries {
            if let Some(id) = e.rpc_id {
                table.record(id, e.result.clone());
            }
        }
        table
    }

    /// Number of live completion records (for the §5.2 memory accounting).
    pub fn record_count(&self) -> usize {
        self.clients.values().map(|c| c.records.len()).sum()
    }

    /// Exports the table in deterministic order for snapshotting:
    /// `(client, first_incomplete, [(seq, result)])`.
    pub fn export(&self) -> RiflExport {
        let mut out: Vec<_> = self
            .clients
            .iter()
            .map(|(&id, c)| {
                (id, c.first_incomplete, c.records.iter().map(|(&s, r)| (s, r.clone())).collect())
            })
            .collect();
        out.sort_by_key(|(id, _, _)| *id);
        out
    }

    /// Rebuilds a table from exported state (recovery restore).
    pub fn import(data: RiflExport) -> Self {
        let mut table = RiflTable::new();
        for (id, first_incomplete, records) in data {
            table.clients.insert(
                id,
                ClientRecords { first_incomplete, records: records.into_iter().collect() },
            );
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use curp_proto::op::Op;

    fn rid(c: u64, s: u64) -> RpcId {
        RpcId::new(ClientId(c), s)
    }

    fn written(v: u64) -> OpResult {
        OpResult::Written { version: v }
    }

    #[test]
    fn new_then_duplicate() {
        let mut t = RiflTable::new();
        assert_eq!(t.check(rid(1, 1)), CheckResult::New);
        t.record(rid(1, 1), written(7));
        assert_eq!(t.check(rid(1, 1)), CheckResult::Duplicate(written(7)));
        // Different seq of the same client is new.
        assert_eq!(t.check(rid(1, 2)), CheckResult::New);
        // Same seq of a different client is new.
        assert_eq!(t.check(rid(2, 1)), CheckResult::New);
    }

    #[test]
    fn ack_discards_records_and_marks_stale() {
        let mut t = RiflTable::new();
        for s in 1..=5 {
            t.record(rid(1, s), written(s));
        }
        t.ack(ClientId(1), 4);
        assert_eq!(t.check(rid(1, 3)), CheckResult::Stale);
        assert_eq!(t.check(rid(1, 4)), CheckResult::Duplicate(written(4)));
        assert_eq!(t.record_count(), 2);
    }

    #[test]
    fn ack_never_regresses() {
        let mut t = RiflTable::new();
        t.record(rid(1, 5), written(5));
        t.ack(ClientId(1), 5);
        t.ack(ClientId(1), 2); // late, out-of-order ack
        assert_eq!(t.check(rid(1, 4)), CheckResult::Stale);
        assert_eq!(t.check(rid(1, 5)), CheckResult::Duplicate(written(5)));
    }

    #[test]
    fn recovery_mode_suppresses_acks() {
        // §4.8: "clients' acknowledgments included in RPC requests must be
        // ignored during recovery from witnesses."
        let mut t = RiflTable::new();
        t.record(rid(1, 1), written(1));
        t.set_recovery_mode(true);
        t.ack(ClientId(1), 2);
        assert_eq!(
            t.check(rid(1, 1)),
            CheckResult::Duplicate(written(1)),
            "replay of seq 1 must still be filtered (not ignored) during recovery"
        );
        t.set_recovery_mode(false);
        t.ack(ClientId(1), 2);
        assert_eq!(t.check(rid(1, 1)), CheckResult::Stale);
    }

    #[test]
    fn expire_client_drops_everything() {
        let mut t = RiflTable::new();
        t.record(rid(1, 1), written(1));
        t.record(rid(1, 2), written(2));
        t.expire_client(ClientId(1));
        assert_eq!(t.record_count(), 0);
        assert_eq!(t.check(rid(1, 1)), CheckResult::Stale);
        assert_eq!(t.check(rid(1, 99)), CheckResult::Stale);
    }

    #[test]
    fn idempotent_record_of_same_result_is_ok() {
        let mut t = RiflTable::new();
        t.record(rid(1, 1), written(1));
        t.record(rid(1, 1), written(1));
        assert_eq!(t.record_count(), 1);
    }

    #[test]
    #[should_panic(expected = "conflicting completion records")]
    fn conflicting_record_panics() {
        let mut t = RiflTable::new();
        t.record(rid(1, 1), written(1));
        t.record(rid(1, 1), written(2));
    }

    #[test]
    fn rebuild_from_log() {
        let entries = vec![
            LogEntry {
                seq: 0,
                rpc_id: Some(rid(1, 1)),
                op: Op::Put { key: Bytes::from_static(b"k"), value: Bytes::from_static(b"v") },
                result: written(1),
            },
            LogEntry {
                seq: 1,
                rpc_id: None,
                op: Op::Delete { key: Bytes::from_static(b"k") },
                result: written(1),
            },
            LogEntry {
                seq: 2,
                rpc_id: Some(rid(2, 9)),
                op: Op::Incr { key: Bytes::from_static(b"c"), delta: 1 },
                result: OpResult::Counter(1),
            },
        ];
        let t = RiflTable::rebuild(&entries);
        assert_eq!(t.check(rid(1, 1)), CheckResult::Duplicate(written(1)));
        assert_eq!(t.check(rid(2, 9)), CheckResult::Duplicate(OpResult::Counter(1)));
        assert_eq!(t.record_count(), 2);
    }
}
