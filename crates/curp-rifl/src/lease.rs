//! Coordinator-side client lease management.
//!
//! RIFL clients "maintain leases in a central server; if a client's lease
//! expires, masters can delete all completion records for that client"
//! (§4.8). The manager is time-source-agnostic: callers pass the current
//! time in milliseconds, which keeps it usable under both wall clocks and
//! the simulator's virtual clock.

use std::collections::HashMap;

use curp_proto::types::ClientId;

/// Issues and tracks client leases.
#[derive(Debug)]
pub struct LeaseManager {
    ttl_ms: u64,
    next_id: u64,
    /// Lease id → expiry time (ms).
    leases: HashMap<ClientId, u64>,
}

impl LeaseManager {
    /// Creates a manager issuing leases valid for `ttl_ms`.
    pub fn new(ttl_ms: u64) -> Self {
        LeaseManager { ttl_ms, next_id: 1, leases: HashMap::new() }
    }

    /// Lease validity period.
    pub fn ttl_ms(&self) -> u64 {
        self.ttl_ms
    }

    /// Issues a fresh lease at time `now_ms`.
    pub fn issue(&mut self, now_ms: u64) -> ClientId {
        let id = ClientId(self.next_id);
        self.next_id += 1;
        self.leases.insert(id, now_ms + self.ttl_ms);
        id
    }

    /// Renews `id` at time `now_ms`. Returns `false` if the lease is unknown
    /// or already expired (the client must acquire a new identity — reusing
    /// an expired id would defeat duplicate filtering).
    pub fn renew(&mut self, id: ClientId, now_ms: u64) -> bool {
        match self.leases.get_mut(&id) {
            Some(expiry) if *expiry > now_ms => {
                *expiry = now_ms + self.ttl_ms;
                true
            }
            _ => false,
        }
    }

    /// Returns `true` if `id` holds an unexpired lease at `now_ms`.
    pub fn is_live(&self, id: ClientId, now_ms: u64) -> bool {
        self.leases.get(&id).is_some_and(|&e| e > now_ms)
    }

    /// Drains and returns all leases expired at `now_ms`. The coordinator
    /// notifies masters, which must sync to backups *before* discarding the
    /// expired clients' completion records (§4.8).
    pub fn collect_expired(&mut self, now_ms: u64) -> Vec<ClientId> {
        let expired: Vec<ClientId> =
            self.leases.iter().filter(|(_, &e)| e <= now_ms).map(|(&id, _)| id).collect();
        for id in &expired {
            self.leases.remove(id);
        }
        expired
    }

    /// Number of live leases (diagnostics).
    pub fn live_count(&self) -> usize {
        self.leases.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_unique_ids() {
        let mut lm = LeaseManager::new(1000);
        let a = lm.issue(0);
        let b = lm.issue(0);
        assert_ne!(a, b);
        assert_eq!(lm.live_count(), 2);
    }

    #[test]
    fn renew_extends() {
        let mut lm = LeaseManager::new(1000);
        let a = lm.issue(0);
        assert!(lm.renew(a, 900));
        assert!(lm.is_live(a, 1500), "renewed at 900 -> valid until 1900");
    }

    #[test]
    fn renew_after_expiry_fails() {
        let mut lm = LeaseManager::new(1000);
        let a = lm.issue(0);
        assert!(!lm.renew(a, 1000), "expiry is inclusive");
        assert!(!lm.is_live(a, 1000));
    }

    #[test]
    fn collect_expired_drains_once() {
        let mut lm = LeaseManager::new(1000);
        let a = lm.issue(0);
        let b = lm.issue(500);
        let expired = lm.collect_expired(1200);
        assert_eq!(expired, vec![a]);
        assert!(lm.collect_expired(1200).is_empty(), "already drained");
        assert!(lm.is_live(b, 1200));
    }

    #[test]
    fn unknown_lease_is_dead() {
        let lm = LeaseManager::new(1000);
        assert!(!lm.is_live(ClientId(99), 0));
    }
}
