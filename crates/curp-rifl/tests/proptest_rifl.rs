//! Property tests for RIFL's at-most-once guarantee under arbitrary
//! interleavings of execution, duplication, reordering and acknowledgement.

use curp_proto::op::OpResult;
use curp_proto::types::{ClientId, RpcId};
use curp_rifl::{CheckResult, RiflSequencer, RiflTable};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    /// A (possibly duplicate) arrival of client `c`'s rpc `seq`.
    Arrive { c: u8, seq: u8 },
    /// Client `c` acknowledges everything below `seq`.
    Ack { c: u8, seq: u8 },
    /// Toggle recovery mode.
    Recovery(bool),
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0..4u8, 1..24u8).prop_map(|(c, seq)| Action::Arrive { c, seq }),
        2 => (0..4u8, 1..24u8).prop_map(|(c, seq)| Action::Ack { c, seq }),
        1 => any::<bool>().prop_map(Action::Recovery),
    ]
}

proptest! {
    /// Each rpc id "executes" at most once no matter how often it arrives,
    /// and every duplicate that is answered gets the original result.
    #[test]
    fn at_most_once_execution(actions in prop::collection::vec(arb_action(), 1..200)) {
        let mut table = RiflTable::new();
        let mut executions: std::collections::HashMap<RpcId, u64> = Default::default();
        let mut counter = 0u64;
        for action in actions {
            match action {
                Action::Arrive { c, seq } => {
                    let id = RpcId::new(ClientId(c as u64), seq as u64);
                    match table.check(id) {
                        CheckResult::New => {
                            counter += 1;
                            let prev = executions.insert(id, counter);
                            prop_assert!(prev.is_none(), "{id} executed twice");
                            table.record(id, OpResult::Counter(counter as i64));
                        }
                        CheckResult::Duplicate(result) => {
                            let original = executions[&id];
                            prop_assert_eq!(result, OpResult::Counter(original as i64));
                        }
                        CheckResult::Stale => {
                            // Must have been executed (then acked) OR the ack
                            // outran the rpc entirely — in both cases a
                            // re-execution is forbidden, which `Stale` is.
                        }
                    }
                }
                Action::Ack { c, seq } => {
                    table.ack(ClientId(c as u64), seq as u64);
                }
                Action::Recovery(on) => table.set_recovery_mode(on),
            }
        }
    }

    /// Acks only ever move the stale frontier forward, and never turn a
    /// recorded result into a *different* result.
    #[test]
    fn acks_are_monotone(
        seqs in prop::collection::vec(1..50u64, 1..40),
        acks in prop::collection::vec(1..50u64, 1..40),
    ) {
        let mut table = RiflTable::new();
        let client = ClientId(1);
        for &s in &seqs {
            let id = RpcId::new(client, s);
            if matches!(table.check(id), CheckResult::New) {
                table.record(id, OpResult::Counter(s as i64));
            }
        }
        let mut max_ack = 0;
        for &a in &acks {
            table.ack(client, a);
            max_ack = max_ack.max(a);
            for &s in &seqs {
                let id = RpcId::new(client, s);
                match table.check(id) {
                    CheckResult::Stale => prop_assert!(s < max_ack),
                    CheckResult::Duplicate(r) => {
                        prop_assert!(s >= max_ack);
                        prop_assert_eq!(r, OpResult::Counter(s as i64));
                    }
                    CheckResult::New => prop_assert!(s >= max_ack || !seqs.contains(&s)),
                }
            }
        }
    }

    /// The sequencer's watermark is always the smallest incomplete sequence
    /// number, regardless of completion order.
    #[test]
    fn sequencer_watermark_is_exact(order in prop::collection::vec(0..20usize, 0..20)) {
        let mut s = RiflSequencer::new(ClientId(1));
        let ids: Vec<RpcId> = (0..20).map(|_| s.next_rpc_id()).collect();
        let mut done = [false; 20];
        for &i in &order {
            s.complete(ids[i]);
            done[i] = true;
            let expect = done.iter().position(|&d| !d).map(|p| p as u64 + 1).unwrap_or(21);
            prop_assert_eq!(s.first_incomplete(), expect);
        }
    }

    /// Export/import round-trips preserve every check outcome.
    #[test]
    fn export_import_identity(
        records in prop::collection::vec((0..5u64, 1..30u64), 0..50),
        acks in prop::collection::vec((0..5u64, 1..30u64), 0..10),
    ) {
        let mut table = RiflTable::new();
        for &(c, s) in &records {
            let id = RpcId::new(ClientId(c), s);
            if matches!(table.check(id), CheckResult::New) {
                table.record(id, OpResult::Counter((c * 100 + s) as i64));
            }
        }
        for &(c, s) in &acks {
            table.ack(ClientId(c), s);
        }
        let restored = RiflTable::import(table.export());
        for c in 0..5u64 {
            for s in 1..30u64 {
                let id = RpcId::new(ClientId(c), s);
                prop_assert_eq!(table.check(id), restored.check(id), "{}", id);
            }
        }
    }
}
