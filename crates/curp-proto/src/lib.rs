//! Wire protocol for CURP (Consistent Unordered Replication Protocol).
//!
//! This crate defines everything that crosses the network in a CURP cluster:
//!
//! * [`types`] — identifiers (clients, servers, RPCs, witness-list versions)
//!   and the 64-bit [`types::KeyHash`] used for commutativity checks;
//! * [`op`] — the NoSQL operation set ([`op::Op`]) executed by masters and
//!   recorded by witnesses, together with its commutativity metadata;
//! * [`footprint`] — the inline-capacity [`footprint::Footprint`] of key
//!   hashes that every conflict check consumes, heap-free for the common
//!   single-key case;
//! * [`wire`] — a small, dependency-free binary codec (`Encode`/`Decode`);
//! * [`message`] — every RPC request/response exchanged between clients,
//!   masters, backups, witnesses and the cluster coordinator;
//! * [`frame`] — length-prefixed framing for stream transports (TCP).
//!
//! The codec is hand-written rather than derived: CURP witnesses sit on the
//! fast path of every update, and the encoding below is a fixed, documented
//! layout (little-endian integers, length-prefixed byte strings, one tag byte
//! per enum variant) that can be parsed with zero copies from a [`bytes::Bytes`].

pub mod cluster;
pub mod footprint;
pub mod frame;
pub mod lockrank;
pub mod message;
pub mod op;
pub mod types;
pub mod wire;

pub use footprint::{Footprint, InlineVec};
pub use message::{Request, Response, RpcEnvelope};
pub use op::{Op, OpResult};
pub use types::{ClientId, KeyHash, MasterId, RpcId, ServerId, WitnessListVersion};
pub use wire::{Decode, DecodeError, Encode};
