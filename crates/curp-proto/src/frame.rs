//! Length-prefixed framing for stream transports.
//!
//! Every frame is a 4-byte little-endian length followed by that many bytes
//! of payload (an encoded [`RpcEnvelope`](crate::message::RpcEnvelope) in
//! practice). The decoder is incremental: feed it bytes as they arrive and it
//! yields complete frames, retaining partial input across calls — the classic
//! tokio framing pattern, implemented without a codec dependency.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum accepted frame payload (16 MiB). Larger declared lengths are
/// treated as a protocol error so a corrupt or hostile peer cannot force a
/// huge allocation.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Error produced when a peer declares an oversized frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The declared payload length.
    pub declared: usize,
}

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame of {} bytes exceeds maximum {}", self.declared, MAX_FRAME_LEN)
    }
}

impl std::error::Error for FrameTooLarge {}

/// Appends a length-prefixed frame containing `payload` to `buf`.
pub fn write_frame(payload: &[u8], buf: &mut BytesMut) {
    buf.reserve(4 + payload.len());
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
}

/// Appends a length-prefixed frame containing `msg`'s encoding to `buf`,
/// encoding directly into place — no intermediate payload allocation, so a
/// long-lived connection can reuse one encode buffer for every outbound
/// frame.
pub fn write_frame_encoded(msg: &impl crate::wire::Encode, buf: &mut BytesMut) {
    let len = msg.encoded_len();
    buf.reserve(4 + len);
    buf.put_u32_le(len as u32);
    let before = buf.len();
    msg.encode(buf);
    debug_assert_eq!(buf.len() - before, len, "encoded_len must match the actual encoding");
}

/// Incremental frame decoder.
///
/// Call [`push`](FrameDecoder::push) with newly received bytes, then drain
/// complete frames with [`next_frame`](FrameDecoder::next_frame).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds newly received bytes into the decoder.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Returns the next complete frame payload, or `None` if more input is
    /// needed. Returns an error if the peer declared an oversized frame.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameTooLarge> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameTooLarge { declared: len });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }

    /// Number of buffered-but-unconsumed bytes (for tests and metrics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frame_roundtrip() {
        let mut wire = BytesMut::new();
        write_frame(b"hello", &mut wire);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(dec.next_frame().unwrap().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn empty_frame_is_valid() {
        let mut wire = BytesMut::new();
        write_frame(b"", &mut wire);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(dec.next_frame().unwrap().unwrap(), Bytes::new());
    }

    #[test]
    fn frames_arriving_byte_by_byte() {
        let mut wire = BytesMut::new();
        write_frame(b"abc", &mut wire);
        write_frame(b"defgh", &mut wire);
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in wire.iter() {
            dec.push(&[*b]);
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, vec![Bytes::from_static(b"abc"), Bytes::from_static(b"defgh")]);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn multiple_frames_in_one_push() {
        let mut wire = BytesMut::new();
        for i in 0..10u8 {
            write_frame(&[i; 3], &mut wire);
        }
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        for i in 0..10u8 {
            assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), &[i; 3]);
        }
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn max_size_frame_accepted_header() {
        // A frame of exactly MAX_FRAME_LEN is legal (just incomplete here).
        let mut dec = FrameDecoder::new();
        dec.push(&(MAX_FRAME_LEN as u32).to_le_bytes());
        assert_eq!(dec.next_frame().unwrap(), None);
    }
}
