//! Inline-capacity commutativity footprints.
//!
//! Every conflict decision in CURP — witness record admission (§4.2), the
//! master's unsynced check (§4.3), client routing — consumes the set of key
//! hashes an operation touches. That set is almost always a single hash
//! (every op except `MultiPut`), so materializing it as a heap `Vec` on each
//! check put an allocation on the fast path of every request. [`Footprint`]
//! stores up to [`INLINE_KEYS`] hashes inline (small-vec style, implemented
//! in-repo per the workspace's no-external-deps policy) and only spills to
//! the heap for wide `MultiPut`s.
//!
//! The type is also the *cached* footprint carried by
//! [`RecordedRequest`](crate::message::RecordedRequest): computed once per
//! RPC at the client, validated/consumed everywhere else. Its wire encoding
//! is identical to the `encode_seq` layout previously used for
//! `Vec<KeyHash>` (a `u32` count followed by the hashes), so the protocol
//! bytes are unchanged.

use std::fmt;

use bytes::{Buf, BufMut};

use crate::types::KeyHash;
use crate::wire::{encode_seq, need, seq_encoded_len, Decode, DecodeError, Encode};

/// Number of elements an [`InlineVec`] (and thus a [`Footprint`]) stores
/// without touching the heap. Covers every single-key operation and
/// `MultiPut`s of up to four keys.
pub const INLINE_KEYS: usize = 4;

/// A tiny vector of `Copy` elements with inline capacity `N`.
///
/// Grows past `N` by spilling the whole contents to a heap `Vec` (after
/// which it behaves exactly like one). Used for [`Footprint`] and for the
/// witness cache's per-record slot bookkeeping.
#[derive(Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    repr: Repr<T, N>,
}

#[derive(Clone)]
enum Repr<T: Copy + Default, const N: usize> {
    Inline { buf: [T; N], len: usize },
    Spill(Vec<T>),
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no allocation).
    pub fn new() -> Self {
        InlineVec { repr: Repr::Inline { buf: [T::default(); N], len: 0 } }
    }

    /// Appends `value`, spilling to the heap when the inline buffer is full.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                if *len < N {
                    buf[*len] = value;
                    *len += 1;
                } else {
                    let mut spill = Vec::with_capacity(N * 2);
                    spill.extend_from_slice(&buf[..]);
                    spill.push(value);
                    self.repr = Repr::Spill(spill);
                }
            }
            Repr::Spill(v) => v.push(value),
        }
    }

    /// Inserts `value` at `index`, shifting later elements right (spilling
    /// to the heap when the inline buffer is full).
    ///
    /// # Panics
    /// Panics if `index > len`.
    pub fn insert(&mut self, index: usize, value: T) {
        let len = self.len();
        assert!(index <= len, "insert index {index} out of bounds (len {len})");
        match &mut self.repr {
            Repr::Inline { buf, len } if *len < N => {
                buf.copy_within(index..*len, index + 1);
                buf[index] = value;
                *len += 1;
            }
            Repr::Inline { buf, len } => {
                let mut spill = Vec::with_capacity(N * 2);
                spill.extend_from_slice(&buf[..*len]);
                spill.insert(index, value);
                self.repr = Repr::Spill(spill);
            }
            Repr::Spill(v) => v.insert(index, value),
        }
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { buf, len } => &buf[..*len],
            Repr::Spill(v) => v,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len,
            Repr::Spill(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the contents currently live in the inline buffer (tests).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    /// Content equality: an inline and a spilled vector holding the same
    /// elements compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        v.into_iter().collect()
    }
}

/// Owning iterator over an [`InlineVec`] (elements are `Copy`).
pub struct IntoIter<T: Copy + Default, const N: usize> {
    vec: InlineVec<T, N>,
    next: usize,
}

impl<T: Copy + Default, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        let item = self.vec.as_slice().get(self.next).copied();
        self.next += item.is_some() as usize;
        item
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len() - self.next;
        (rem, Some(rem))
    }
}

impl<T: Copy + Default, const N: usize> ExactSizeIterator for IntoIter<T, N> {}

impl<T: Copy + Default, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> Self::IntoIter {
        IntoIter { vec: self, next: 0 }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// The commutativity footprint of an operation: the key hashes it touches,
/// in key order, stored inline for up to [`INLINE_KEYS`] keys.
///
/// Intersection checks (conflict detection) go through
/// [`Op::commutes_with`](crate::op::Op::commutes_with), which streams one
/// side's hashes against the other's footprint — footprints are tiny (one
/// hash in the common case), so a nested scan beats building a hash set.
pub type Footprint = InlineVec<KeyHash, INLINE_KEYS>;

/// The set of execution-engine shards a footprint touches: ascending,
/// deduplicated shard indices (see [`KeyHash::shard`]). Stored inline like
/// the footprint itself, so routing a fast-path operation to its shard
/// allocates nothing.
pub type ShardSet = InlineVec<usize, INLINE_KEYS>;

impl Footprint {
    /// Returns the ascending, deduplicated set of shard indices these hashes
    /// map to under a `num_shards`-way split.
    ///
    /// Ascending order is load-bearing: every multi-shard caller acquires
    /// its shard locks in exactly this order, which is what makes multi-key
    /// operations deadlock-free (see DESIGN.md, "Sharded execution engine").
    pub fn shard_set(&self, num_shards: usize) -> ShardSet {
        let mut shards = ShardSet::new();
        for &h in self {
            let s = h.shard(num_shards);
            // Insertion sort with dedup: footprints are tiny (one element in
            // the common case), so a linear scan beats any cleverness.
            match shards.iter().position(|&existing| existing >= s) {
                Some(i) if shards[i] == s => {}
                Some(i) => shards.insert(i, s),
                None => shards.push(s),
            }
        }
        shards
    }
}

// Wire layout: delegates to `encode_seq` — a `u32` count followed by the
// hashes — so messages carrying a cached footprint are byte-compatible with
// the previous `Vec<KeyHash>` encoding. Only `decode` is hand-rolled, to
// fill the inline buffer without an intermediate `Vec`.

impl Encode for Footprint {
    fn encode(&self, buf: &mut impl BufMut) {
        encode_seq(self.as_slice(), buf);
    }
    fn encoded_len(&self) -> usize {
        seq_encoded_len(self.as_slice())
    }
}

impl Decode for Footprint {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let n = u32::decode(buf)? as usize;
        // Hostile-count guard, as in `decode_seq`: every hash needs 8 bytes.
        need(buf, n.saturating_mul(8))?;
        let mut fp = Footprint::new();
        for _ in 0..n {
            fp.push(KeyHash::decode(buf)?);
        }
        Ok(fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        assert!(v.is_empty() && v.is_inline());
        for i in 0..4 {
            v.push(i);
        }
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        v.push(4);
        assert!(!v.is_inline(), "fifth element must spill");
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn equality_ignores_representation() {
        let inline: InlineVec<u64, 4> = (0..3).collect();
        let mut spilled: InlineVec<u64, 4> = (0..6).collect();
        assert!(!spilled.is_inline());
        // Rebuild a spilled vec with the same 3 elements via From<Vec>.
        spilled = InlineVec::from((0..6).collect::<Vec<_>>());
        assert_ne!(inline, spilled);
        let same: InlineVec<u64, 4> = InlineVec::from(vec![0, 1, 2]);
        assert_eq!(inline, same);
    }

    #[test]
    fn iteration_owned_and_borrowed() {
        let v: InlineVec<u64, 2> = (10..15).collect();
        assert_eq!(v.clone().into_iter().collect::<Vec<_>>(), vec![10, 11, 12, 13, 14]);
        assert_eq!((&v).into_iter().copied().sum::<u64>(), 60);
        assert_eq!(v.into_iter().len(), 5);
    }

    #[test]
    fn footprint_codec_matches_seq_layout() {
        let fp: Footprint = (0..7).map(KeyHash).collect();
        roundtrip(&fp);
        // Byte-compatible with the old Vec<KeyHash> encoding.
        let mut seq = bytes::BytesMut::new();
        crate::wire::encode_seq(&(0..7).map(KeyHash).collect::<Vec<_>>(), &mut seq);
        assert_eq!(fp.to_bytes(), seq.freeze());
    }

    #[test]
    fn insert_shifts_and_spills() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        v.push(1);
        v.push(3);
        v.insert(1, 2);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        v.insert(0, 0);
        assert!(v.is_inline());
        // Fifth element via insert must spill, preserving order.
        v.insert(2, 9);
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 9, 2, 3]);
        v.insert(5, 7);
        assert_eq!(v.as_slice(), &[0, 1, 9, 2, 3, 7]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_past_end_panics() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        v.insert(1, 0);
    }

    #[test]
    fn shard_set_is_ascending_and_deduped() {
        use crate::types::KeyHash;
        // Construct hashes with controlled high bits.
        let h = |top: u64| KeyHash(top << 32);
        let fp: Footprint = [h(5), h(1), h(5), h(3)].into_iter().collect();
        let shards = fp.shard_set(8);
        assert_eq!(shards.as_slice(), &[1, 3, 5]);
        assert!(shards.is_inline());
        // A single-key footprint routes to exactly one shard, allocation-free.
        let one: Footprint = [h(6)].into_iter().collect();
        assert_eq!(one.shard_set(4).as_slice(), &[6 % 4]);
        // Empty footprint -> empty shard set.
        assert!(Footprint::new().shard_set(4).is_empty());
    }

    #[test]
    fn shard_uses_high_bits() {
        use crate::types::KeyHash;
        // Two hashes sharing low 32 bits but differing in the high bits must
        // land on different shards (for any shard count > 1 dividing the
        // difference pattern); sharing high bits must land on the same one.
        let a = KeyHash(0x0000_0001_0000_abcd);
        let b = KeyHash(0x0000_0002_0000_abcd);
        assert_ne!(a.shard(8), b.shard(8));
        let c = KeyHash(0x0000_0001_ffff_0000);
        assert_eq!(a.shard(8), c.shard(8));
    }

    #[test]
    fn footprint_decode_rejects_hostile_count() {
        let mut buf = bytes::BytesMut::new();
        buf.put_u32_le(u32::MAX);
        assert!(Footprint::from_bytes(&buf).is_err());
    }
}
