//! The NoSQL operation set executed by CURP masters.
//!
//! CURP requires that the commutativity of two operations is decidable from
//! the operation parameters alone (§3.2.2): witnesses cannot evaluate
//! state-dependent commutativity. Every [`Op`] therefore exposes the exact
//! set of primary keys it touches via [`Op::key_hashes`]; two operations
//! commute iff those sets are disjoint, with the refinement that *read-only*
//! operations commute with each other even on the same key.
//!
//! The operation set covers both halves of the paper's evaluation:
//!
//! * RAMCloud-style KV operations (`Get`/`Put`/`Delete`/`ConditionalPut`/
//!   `MultiPut`), and
//! * Redis-style typed operations (`HSet`, `Incr`, `ListPush`, `SetAdd`, …)
//!   used by the Figure 8–10 experiments.

use bytes::{Buf, BufMut, Bytes};

use crate::footprint::Footprint;
use crate::types::KeyHash;
use crate::wire::{decode_seq, encode_seq, need, seq_encoded_len, Decode, DecodeError, Encode};

/// An operation submitted by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Reads the value of `key`. Read-only.
    Get {
        /// Primary key.
        key: Bytes,
    },
    /// Writes `value` to `key`, overwriting any previous value.
    Put {
        /// Primary key.
        key: Bytes,
        /// New value.
        value: Bytes,
    },
    /// Removes `key`.
    Delete {
        /// Primary key.
        key: Bytes,
    },
    /// Writes `value` to `key` only if the object's current version equals
    /// `expected_version` (0 means "must not exist"). The paper's §A.3
    /// "conditional write" primitive.
    ConditionalPut {
        /// Primary key.
        key: Bytes,
        /// Version the object must currently have.
        expected_version: u64,
        /// New value.
        value: Bytes,
    },
    /// Atomically writes several objects. Touches every key in `kvs`
    /// (witnesses record one slot per key, §4.2).
    MultiPut {
        /// Key/value pairs to write.
        kvs: Vec<(Bytes, Bytes)>,
    },
    /// Adds `delta` to the 64-bit signed counter stored at `key`
    /// (Redis `INCR`/`INCRBY`). Missing objects start at zero.
    Incr {
        /// Primary key.
        key: Bytes,
        /// Amount to add (may be negative).
        delta: i64,
    },
    /// Sets `field` to `value` inside the hash object at `key`
    /// (Redis `HMSET` with a single member, as in Figure 10).
    HSet {
        /// Primary key of the hash object.
        key: Bytes,
        /// Field within the hash.
        field: Bytes,
        /// New value for the field.
        value: Bytes,
    },
    /// Reads `field` from the hash object at `key`. Read-only.
    HGet {
        /// Primary key of the hash object.
        key: Bytes,
        /// Field within the hash.
        field: Bytes,
    },
    /// Appends `value` to the list at `key` (Redis `RPUSH`).
    ListPush {
        /// Primary key of the list object.
        key: Bytes,
        /// Element to append.
        value: Bytes,
    },
    /// Adds `member` to the set at `key` (Redis `SADD`).
    SetAdd {
        /// Primary key of the set object.
        key: Bytes,
        /// Member to insert.
        member: Bytes,
    },
}

impl Op {
    /// Returns `true` if the operation does not mutate any object.
    ///
    /// Read-only operations are never recorded on witnesses, never create
    /// RIFL completion records, and commute with each other even on the same
    /// key. They still participate in the master's commutativity check
    /// against *unsynced writes* (§3.2.3: "touched — either updated or just
    /// read").
    pub fn is_read_only(&self) -> bool {
        matches!(self, Op::Get { .. } | Op::HGet { .. })
    }

    /// Iterates over the primary keys this operation touches, in key order.
    /// Allocation-free (the common single-key case never touches the heap).
    pub fn keys(&self) -> Keys<'_> {
        match self {
            Op::Get { key }
            | Op::Put { key, .. }
            | Op::Delete { key }
            | Op::ConditionalPut { key, .. }
            | Op::Incr { key, .. }
            | Op::HSet { key, .. }
            | Op::HGet { key, .. }
            | Op::ListPush { key, .. }
            | Op::SetAdd { key, .. } => Keys::One(Some(key)),
            Op::MultiPut { kvs } => Keys::Many(kvs.iter()),
        }
    }

    /// Iterates over the 64-bit key hashes this operation touches, in key
    /// order, hashing on the fly without materializing a footprint.
    pub fn key_hashes_iter(&self) -> impl Iterator<Item = KeyHash> + '_ {
        self.keys().map(|k| KeyHash::of(k))
    }

    /// Returns the 64-bit key hashes this operation touches, in key order.
    ///
    /// This is the commutativity footprint used by both witnesses (§4.2) and
    /// masters (§4.3): two operations conflict iff their footprints intersect
    /// and at least one of them is a mutation. The returned [`Footprint`]
    /// stores single-key (and up to four-key) footprints inline, so the fast
    /// path allocates nothing. Anything that caches a footprint (e.g.
    /// [`RecordedRequest`](crate::message::RecordedRequest)) must keep it
    /// equal to what this method recomputes — see DESIGN.md, invariant 1.
    pub fn key_hashes(&self) -> Footprint {
        self.key_hashes_iter().collect()
    }

    /// Short operation name, used in traces and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Get { .. } => "GET",
            Op::Put { .. } => "PUT",
            Op::Delete { .. } => "DELETE",
            Op::ConditionalPut { .. } => "CPUT",
            Op::MultiPut { .. } => "MULTIPUT",
            Op::Incr { .. } => "INCR",
            Op::HSet { .. } => "HSET",
            Op::HGet { .. } => "HGET",
            Op::ListPush { .. } => "RPUSH",
            Op::SetAdd { .. } => "SADD",
        }
    }

    /// Returns `true` if `self` and `other` commute: executing them in either
    /// order yields the same state and the same results.
    ///
    /// Decided purely from operation parameters, as CURP requires. Two
    /// read-only operations always commute; otherwise the operations commute
    /// iff their key footprints are disjoint.
    ///
    /// Note this is deliberately conservative: `Incr` on the same key
    /// technically commutes with another `Incr` state-wise, but their
    /// *results* (the post-increment values) do not, so they are treated as
    /// conflicting — linearizability is about externalized results.
    pub fn commutes_with(&self, other: &Op) -> bool {
        if self.is_read_only() && other.is_read_only() {
            return true;
        }
        // Hash `other` once into an (inline, allocation-free) footprint and
        // stream `self`'s hashes against it — no `Vec` per comparison.
        let b = other.key_hashes();
        !self.key_hashes_iter().any(|h| b.contains(&h))
    }
}

/// Iterator over the primary keys of an [`Op`] (see [`Op::keys`]).
#[derive(Debug, Clone)]
pub enum Keys<'a> {
    /// A single-key operation (everything except `MultiPut`).
    One(Option<&'a Bytes>),
    /// A `MultiPut`: one key per written pair.
    Many(std::slice::Iter<'a, (Bytes, Bytes)>),
}

impl<'a> Iterator for Keys<'a> {
    type Item = &'a Bytes;
    fn next(&mut self) -> Option<&'a Bytes> {
        match self {
            Keys::One(key) => key.take(),
            Keys::Many(kvs) => kvs.next().map(|(k, _)| k),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Keys::One(key) => {
                let n = key.is_some() as usize;
                (n, Some(n))
            }
            Keys::Many(kvs) => kvs.size_hint(),
        }
    }
}

impl ExactSizeIterator for Keys<'_> {}

const OP_GET: u8 = 0;
const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_CPUT: u8 = 3;
const OP_MULTIPUT: u8 = 4;
const OP_INCR: u8 = 5;
const OP_HSET: u8 = 6;
const OP_HGET: u8 = 7;
const OP_RPUSH: u8 = 8;
const OP_SADD: u8 = 9;

impl Encode for Op {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Op::Get { key } => {
                buf.put_u8(OP_GET);
                key.encode(buf);
            }
            Op::Put { key, value } => {
                buf.put_u8(OP_PUT);
                key.encode(buf);
                value.encode(buf);
            }
            Op::Delete { key } => {
                buf.put_u8(OP_DELETE);
                key.encode(buf);
            }
            Op::ConditionalPut { key, expected_version, value } => {
                buf.put_u8(OP_CPUT);
                key.encode(buf);
                expected_version.encode(buf);
                value.encode(buf);
            }
            Op::MultiPut { kvs } => {
                buf.put_u8(OP_MULTIPUT);
                encode_seq(kvs, buf);
            }
            Op::Incr { key, delta } => {
                buf.put_u8(OP_INCR);
                key.encode(buf);
                delta.encode(buf);
            }
            Op::HSet { key, field, value } => {
                buf.put_u8(OP_HSET);
                key.encode(buf);
                field.encode(buf);
                value.encode(buf);
            }
            Op::HGet { key, field } => {
                buf.put_u8(OP_HGET);
                key.encode(buf);
                field.encode(buf);
            }
            Op::ListPush { key, value } => {
                buf.put_u8(OP_RPUSH);
                key.encode(buf);
                value.encode(buf);
            }
            Op::SetAdd { key, member } => {
                buf.put_u8(OP_SADD);
                key.encode(buf);
                member.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Op::Get { key } | Op::Delete { key } => key.encoded_len(),
            Op::Put { key, value } => key.encoded_len() + value.encoded_len(),
            Op::ConditionalPut { key, expected_version, value } => {
                key.encoded_len() + expected_version.encoded_len() + value.encoded_len()
            }
            Op::MultiPut { kvs } => seq_encoded_len(kvs),
            Op::Incr { key, delta } => key.encoded_len() + delta.encoded_len(),
            Op::HSet { key, field, value } => {
                key.encoded_len() + field.encoded_len() + value.encoded_len()
            }
            Op::HGet { key, field } => key.encoded_len() + field.encoded_len(),
            Op::ListPush { key, value } => key.encoded_len() + value.encoded_len(),
            Op::SetAdd { key, member } => key.encoded_len() + member.encoded_len(),
        }
    }
}

impl Decode for Op {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(buf, 1)?;
        let tag = buf.get_u8();
        Ok(match tag {
            OP_GET => Op::Get { key: Bytes::decode(buf)? },
            OP_PUT => Op::Put { key: Bytes::decode(buf)?, value: Bytes::decode(buf)? },
            OP_DELETE => Op::Delete { key: Bytes::decode(buf)? },
            OP_CPUT => Op::ConditionalPut {
                key: Bytes::decode(buf)?,
                expected_version: u64::decode(buf)?,
                value: Bytes::decode(buf)?,
            },
            OP_MULTIPUT => Op::MultiPut { kvs: decode_seq(buf)? },
            OP_INCR => Op::Incr { key: Bytes::decode(buf)?, delta: i64::decode(buf)? },
            OP_HSET => Op::HSet {
                key: Bytes::decode(buf)?,
                field: Bytes::decode(buf)?,
                value: Bytes::decode(buf)?,
            },
            OP_HGET => Op::HGet { key: Bytes::decode(buf)?, field: Bytes::decode(buf)? },
            OP_RPUSH => Op::ListPush { key: Bytes::decode(buf)?, value: Bytes::decode(buf)? },
            OP_SADD => Op::SetAdd { key: Bytes::decode(buf)?, member: Bytes::decode(buf)? },
            tag => return Err(DecodeError::InvalidTag { ty: "Op", tag }),
        })
    }
}

/// The result of executing an [`Op`] on a master.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// Mutation succeeded; `version` is the object's new version number.
    Written {
        /// New object version (monotonically increasing per key).
        version: u64,
    },
    /// Read result: `None` if the object (or hash field) does not exist.
    Value(Option<Bytes>),
    /// New counter value after an `Incr`.
    Counter(i64),
    /// A `ConditionalPut` whose version precondition failed; carries the
    /// object's actual current version.
    ConditionFailed {
        /// The version the object actually had.
        actual_version: u64,
    },
    /// The operation was applied to an object of an incompatible type
    /// (e.g. `Incr` on a list).
    WrongType,
}

const RES_WRITTEN: u8 = 0;
const RES_VALUE: u8 = 1;
const RES_COUNTER: u8 = 2;
const RES_CONDFAIL: u8 = 3;
const RES_WRONGTYPE: u8 = 4;

impl Encode for OpResult {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            OpResult::Written { version } => {
                buf.put_u8(RES_WRITTEN);
                version.encode(buf);
            }
            OpResult::Value(v) => {
                buf.put_u8(RES_VALUE);
                v.encode(buf);
            }
            OpResult::Counter(v) => {
                buf.put_u8(RES_COUNTER);
                v.encode(buf);
            }
            OpResult::ConditionFailed { actual_version } => {
                buf.put_u8(RES_CONDFAIL);
                actual_version.encode(buf);
            }
            OpResult::WrongType => buf.put_u8(RES_WRONGTYPE),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            OpResult::Written { version } => version.encoded_len(),
            OpResult::Value(v) => v.encoded_len(),
            OpResult::Counter(v) => v.encoded_len(),
            OpResult::ConditionFailed { actual_version } => actual_version.encoded_len(),
            OpResult::WrongType => 0,
        }
    }
}

impl Decode for OpResult {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(buf, 1)?;
        let tag = buf.get_u8();
        Ok(match tag {
            RES_WRITTEN => OpResult::Written { version: u64::decode(buf)? },
            RES_VALUE => OpResult::Value(Option::<Bytes>::decode(buf)?),
            RES_COUNTER => OpResult::Counter(i64::decode(buf)?),
            RES_CONDFAIL => OpResult::ConditionFailed { actual_version: u64::decode(buf)? },
            RES_WRONGTYPE => OpResult::WrongType,
            tag => return Err(DecodeError::InvalidTag { ty: "OpResult", tag }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Get { key: b("k1") },
            Op::Put { key: b("k1"), value: b("v1") },
            Op::Delete { key: b("k2") },
            Op::ConditionalPut { key: b("k3"), expected_version: 7, value: b("v3") },
            Op::MultiPut { kvs: vec![(b("a"), b("1")), (b("b"), b("2"))] },
            Op::Incr { key: b("ctr"), delta: -3 },
            Op::HSet { key: b("h"), field: b("f"), value: b("v") },
            Op::HGet { key: b("h"), field: b("f") },
            Op::ListPush { key: b("l"), value: b("x") },
            Op::SetAdd { key: b("s"), member: b("m") },
        ]
    }

    #[test]
    fn all_ops_roundtrip() {
        for op in sample_ops() {
            roundtrip(&op);
        }
    }

    #[test]
    fn all_results_roundtrip() {
        roundtrip(&OpResult::Written { version: 9 });
        roundtrip(&OpResult::Value(Some(b("v"))));
        roundtrip(&OpResult::Value(None));
        roundtrip(&OpResult::Counter(-1));
        roundtrip(&OpResult::ConditionFailed { actual_version: 3 });
        roundtrip(&OpResult::WrongType);
    }

    #[test]
    fn read_only_classification() {
        assert!(Op::Get { key: b("k") }.is_read_only());
        assert!(Op::HGet { key: b("k"), field: b("f") }.is_read_only());
        for op in sample_ops() {
            if !matches!(op, Op::Get { .. } | Op::HGet { .. }) {
                assert!(!op.is_read_only(), "{} misclassified", op.name());
            }
        }
    }

    #[test]
    fn multiput_touches_all_keys() {
        let op = Op::MultiPut { kvs: vec![(b("a"), b("1")), (b("b"), b("2")), (b("c"), b("3"))] };
        assert_eq!(op.key_hashes().len(), 3);
        assert_eq!(op.key_hashes()[0], KeyHash::of(b"a"));
    }

    #[test]
    fn writes_on_same_key_conflict() {
        let w1 = Op::Put { key: b("x"), value: b("1") };
        let w2 = Op::Put { key: b("x"), value: b("5") };
        assert!(!w1.commutes_with(&w2));
    }

    #[test]
    fn writes_on_different_keys_commute() {
        let w1 = Op::Put { key: b("x"), value: b("1") };
        let w2 = Op::Put { key: b("y"), value: b("5") };
        assert!(w1.commutes_with(&w2));
        assert!(w2.commutes_with(&w1));
    }

    #[test]
    fn read_write_same_key_conflict() {
        // §3.2.3: "x <- 2" then "read x" must not both be speculative.
        let w = Op::Put { key: b("x"), value: b("2") };
        let r = Op::Get { key: b("x") };
        assert!(!w.commutes_with(&r));
        assert!(!r.commutes_with(&w));
    }

    #[test]
    fn reads_always_commute() {
        let r1 = Op::Get { key: b("x") };
        let r2 = Op::Get { key: b("x") };
        let r3 = Op::HGet { key: b("x"), field: b("f") };
        assert!(r1.commutes_with(&r2));
        assert!(r1.commutes_with(&r3));
    }

    #[test]
    fn incr_on_same_key_conflicts() {
        // Results (post-increment values) are externalized, so INCRs on the
        // same counter must not be reordered.
        let i1 = Op::Incr { key: b("c"), delta: 1 };
        let i2 = Op::Incr { key: b("c"), delta: 2 };
        assert!(!i1.commutes_with(&i2));
    }

    #[test]
    fn multiput_conflicts_if_any_key_overlaps() {
        let m = Op::MultiPut { kvs: vec![(b("a"), b("1")), (b("b"), b("2"))] };
        let w = Op::Put { key: b("b"), value: b("9") };
        assert!(!m.commutes_with(&w));
        let w2 = Op::Put { key: b("c"), value: b("9") };
        assert!(m.commutes_with(&w2));
    }

    #[test]
    fn hash_ops_conflict_at_key_granularity() {
        // Witnesses only see key hashes, so two HSETs on different fields of
        // the same hash object are conservatively treated as conflicting.
        let h1 = Op::HSet { key: b("h"), field: b("f1"), value: b("v") };
        let h2 = Op::HSet { key: b("h"), field: b("f2"), value: b("v") };
        assert!(!h1.commutes_with(&h2));
    }
}
