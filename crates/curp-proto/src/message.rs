//! Every RPC exchanged inside a CURP cluster.
//!
//! One request enum and one response enum cover all five parties (client,
//! master, backup, witness, coordinator); the transport layer moves opaque
//! `Request`/`Response` values and does not interpret them. The RPC surface
//! follows Figure 4 of the paper plus the master/backup/coordinator calls the
//! paper describes in prose.

use bytes::{Buf, BufMut, Bytes};

use crate::cluster::{ClusterConfig, LoadStats};
use crate::footprint::Footprint;
use crate::op::{Op, OpResult};
use crate::types::{ClientId, Epoch, KeyHash, MasterId, RpcId, ServerId, WitnessListVersion};
use crate::wire::{decode_seq, encode_seq, need, seq_encoded_len, Decode, DecodeError, Encode};

/// A client request as recorded by (and recovered from) a witness.
///
/// This is exactly what `record` stores (§4.2) and `getRecoveryData`
/// returns (§4.6): enough to re-execute the operation on a new master and to
/// garbage-collect it by `(keyHash, rpcId)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedRequest {
    /// Master the request was addressed to.
    pub master_id: MasterId,
    /// RIFL id of the client RPC.
    pub rpc_id: RpcId,
    /// Key hashes the operation touches — the commutativity footprint,
    /// computed once per RPC at the client and cached here. Must equal
    /// `op.key_hashes()` recomputed (DESIGN.md, invariant 1).
    pub key_hashes: Footprint,
    /// The operation itself.
    pub op: Op,
}

impl RecordedRequest {
    /// Checks the cached footprint against the op (DESIGN.md invariant 1).
    ///
    /// The single definition of footprint honesty: every replay trust
    /// boundary (a master or consensus leader about to re-execute a
    /// witness-recorded request) must drop requests failing this check —
    /// their footprint claims keys the op does not touch, so the witness's
    /// mutual-commutativity guarantee does not cover them.
    pub fn footprint_matches_op(&self) -> bool {
        self.key_hashes == self.op.key_hashes()
    }
}

impl Encode for RecordedRequest {
    fn encode(&self, buf: &mut impl BufMut) {
        self.master_id.encode(buf);
        self.rpc_id.encode(buf);
        self.key_hashes.encode(buf);
        self.op.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.master_id.encoded_len()
            + self.rpc_id.encoded_len()
            + self.key_hashes.encoded_len()
            + self.op.encoded_len()
    }
}

impl Decode for RecordedRequest {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(RecordedRequest {
            master_id: MasterId::decode(buf)?,
            rpc_id: RpcId::decode(buf)?,
            key_hashes: Footprint::decode(buf)?,
            op: Op::decode(buf)?,
        })
    }
}

/// One ordered entry of a master's operation log, as replicated to backups.
///
/// CURP replicates *requests and results* rather than just values, which
/// makes RIFL completion records trivially durable (§3.3: "If a system
/// replicates client requests to backups ... providing atomic durability
/// becomes trivial").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Position in the master's execution order (starts at 0).
    pub seq: u64,
    /// RIFL id, present for client mutations (absent for internal entries
    /// such as recovery replays of non-RIFL ops).
    pub rpc_id: Option<RpcId>,
    /// The executed operation.
    pub op: Op,
    /// The result the master returned (part of the completion record).
    pub result: OpResult,
}

impl Encode for LogEntry {
    fn encode(&self, buf: &mut impl BufMut) {
        self.seq.encode(buf);
        self.rpc_id.encode(buf);
        self.op.encode(buf);
        self.result.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        8 + self.rpc_id.encoded_len() + self.op.encoded_len() + self.result.encoded_len()
    }
}

impl Decode for LogEntry {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(LogEntry {
            seq: u64::decode(buf)?,
            rpc_id: Option::<RpcId>::decode(buf)?,
            op: Op::decode(buf)?,
            result: OpResult::decode(buf)?,
        })
    }
}

/// Requests sent between CURP parties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    // ---- client -> master -------------------------------------------------
    /// An update RPC (§3.2.1). Carries the RIFL id, a piggybacked
    /// acknowledgement (`first_incomplete`: all of this client's RPCs with
    /// `seq < first_incomplete` have had their results received), and the
    /// witness-list version the client recorded against (§3.6).
    ClientUpdate {
        /// RIFL id of this RPC.
        rpc_id: RpcId,
        /// RIFL garbage-collection hint (see above).
        first_incomplete: u64,
        /// Witness-list version used for the parallel `record` RPCs.
        witness_list_version: WitnessListVersion,
        /// The mutation to execute.
        op: Op,
    },
    /// A read-only RPC executed at the master. Not recorded on witnesses and
    /// assigned no completion record, but still subject to the master's
    /// commutativity check against unsynced writes (§3.2.3).
    ClientRead {
        /// The read-only operation.
        op: Op,
    },
    /// Client asks the master to sync to backups (slow path, §3.2.1).
    ///
    /// Bound to the master *incarnation* that executed the client's ops
    /// speculatively: a `SyncDone` only proves durability of what **this**
    /// master has in its log. A server whose partition was since recovered
    /// onto a new master id must refuse, or the client would externalize a
    /// dead incarnation's speculative results on the strength of a sync that
    /// never covered them (§4.7's fencing, client side).
    Sync {
        /// The master incarnation whose unsynced tail must become durable.
        master_id: MasterId,
    },

    // ---- client -> witness (Figure 4) --------------------------------------
    /// `record(masterID, keyHashes, rpcId, request)`.
    WitnessRecord {
        /// The request, including the master id and key hashes.
        request: RecordedRequest,
    },
    /// Commutativity probe for consistent reads from backups (§A.1): does a
    /// read of these key hashes commute with everything the witness holds?
    WitnessCommuteCheck {
        /// The master whose witness instance is addressed.
        master_id: MasterId,
        /// Key hashes the reader wants to read (cached footprint).
        key_hashes: Footprint,
    },

    // ---- master -> witness (Figure 4) ---------------------------------------
    /// `gc(list of {keyHash, rpcId})`.
    WitnessGc {
        /// The master whose witness instance is addressed.
        master_id: MasterId,
        /// Slots to free, one pair per (key, rpc).
        entries: Vec<(KeyHash, RpcId)>,
    },
    /// `getRecoveryData()` — irreversibly moves the witness to recovery mode.
    WitnessGetRecoveryData {
        /// The crashed master whose requests are wanted.
        master_id: MasterId,
    },

    // ---- coordinator -> witness (Figure 4) ----------------------------------
    /// `start(masterId)` — begin a witness life for `master_id`.
    WitnessStart {
        /// Master this witness will serve.
        master_id: MasterId,
    },
    /// `end()` — decommission the witness instance for `master_id`.
    WitnessEnd {
        /// The master whose witness instance is decommissioned.
        master_id: MasterId,
    },

    // ---- master -> backup ----------------------------------------------------
    /// Replicates a batch of ordered log entries (a "sync", §3.2.3).
    BackupSync {
        /// Partition being replicated.
        master_id: MasterId,
        /// Zombie-fencing epoch (§4.7); backups reject stale epochs.
        epoch: Epoch,
        /// Entries in execution order; `entries[0].seq` equals the backup's
        /// expected next sequence number.
        entries: Vec<LogEntry>,
    },
    /// Recovery restore: fetch the backup's entire replicated log (§3.3).
    BackupFetch {
        /// Partition to restore.
        master_id: MasterId,
    },
    /// Direct read of a backup's (possibly stale) state for §A.1 reads.
    BackupRead {
        /// Partition to read from.
        master_id: MasterId,
        /// The read-only operation.
        op: Op,
    },
    /// Replaces a backup's replica state wholesale with a snapshot. Sent by a
    /// recovery master after witness replay (§4.6, "finalizes the recovery by
    /// syncing to backups") and when the coordinator seeds a replacement
    /// backup.
    BackupInstall {
        /// Partition (the *new* master incarnation).
        master_id: MasterId,
        /// Fencing epoch of the new master.
        epoch: Epoch,
        /// Next expected log-entry sequence number after the snapshot.
        next_seq: u64,
        /// Opaque encoded snapshot (see `curp-core`'s snapshot module).
        snapshot: Bytes,
    },
    /// Coordinator raises the fencing epoch so a zombie master's syncs are
    /// rejected before recovery begins (§4.7).
    BackupSetEpoch {
        /// Partition to fence.
        master_id: MasterId,
        /// New minimum epoch.
        epoch: Epoch,
    },

    // ---- coordinator -> master -------------------------------------------------
    /// Notifies a master of a new witness list (§3.6). The master must sync
    /// to backups before acknowledging.
    MasterWitnessList {
        /// New version.
        version: WitnessListVersion,
        /// New witness set.
        witnesses: Vec<ServerId>,
    },
    /// Tells a master that a client lease expired; the master must sync
    /// before dropping the client's completion records (§4.8).
    MasterClientExpired {
        /// The expired client.
        client: ClientId,
    },
    /// Asks a master for its current load snapshot (update counter, queue
    /// depth, hot-hash histogram) — the autoscaler's polling RPC.
    MasterLoadStats {
        /// The master incarnation being polled.
        master_id: MasterId,
    },

    // ---- consensus (Appendix A.2) -------------------------------------------
    /// An opaque consensus-protocol message (`curp-consensus` defines the
    /// payload codec). Tunneled so the consensus extension shares the
    /// transport without widening the core protocol surface.
    Consensus {
        /// Encoded consensus message.
        payload: Bytes,
    },

    // ---- any -> any (transport batching) -----------------------------------
    /// A batch of independent requests flushed as one frame (one transport
    /// write, one dispatch charge per direction). Each inner request keeps
    /// its own payload — in particular each [`Request::WitnessRecord`]
    /// carries its own per-op footprint, so witness commutativity checks
    /// stay per-op. The receiver handles every inner request independently
    /// and replies with a [`Response::Batch`] whose `responses[i]` answers
    /// `requests[i]`, whatever order the handlers completed in. Batches do
    /// not nest: the codec rejects a `Batch` inside a `Batch`.
    Batch {
        /// The independent inner requests, in submission order.
        requests: Vec<Request>,
    },

    // ---- any -> coordinator ------------------------------------------------------
    /// Fetches the current cluster configuration.
    GetConfig,
    /// Acquires a new RIFL client lease.
    AcquireLease,
    /// Renews an existing lease.
    RenewLease {
        /// Lease to renew.
        client: ClientId,
    },
}

/// Responses to [`Request`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Successful update. `synced == true` means the master replicated to
    /// backups before responding (the operation is durable regardless of
    /// witnesses, §3.2.3), so the client may complete even if witnesses
    /// rejected.
    Update {
        /// Execution result.
        result: OpResult,
        /// Whether the master synced before responding.
        synced: bool,
    },
    /// Successful read.
    Read {
        /// Execution result.
        result: OpResult,
    },
    /// The master synced to backups (reply to [`Request::Sync`]).
    SyncDone,
    /// The client's witness-list version is stale; it must refetch the
    /// configuration and retry (§3.6).
    StaleWitnessList {
        /// The version the master currently holds.
        current: WitnessListVersion,
    },
    /// This master does not own the key (dropped or migrated partition,
    /// §3.6); the client must refetch the configuration.
    NotOwner,

    /// Witness accepted the record (§3.2.2).
    RecordAccepted,
    /// Witness rejected the record: not commutative with a stored request,
    /// no slot available, wrong master, or recovery mode.
    RecordRejected,
    /// Answer to a commutativity probe (§A.1): `true` iff a read of the
    /// probed keys commutes with everything stored.
    CommuteOk {
        /// Whether the read is safe from a backup.
        commutative: bool,
    },
    /// Witness processed a gc RPC; returns requests it suspects are
    /// uncollected garbage so the master can retry them (§4.5).
    GcDone {
        /// Suspected-stale requests the master should re-execute and re-gc.
        stale: Vec<RecordedRequest>,
    },
    /// All requests held for the crashed master (§4.6).
    RecoveryData {
        /// The recorded requests, mutually commutative.
        requests: Vec<RecordedRequest>,
    },
    /// Witness accepted `start` (Figure 4: SUCCESS/FAIL).
    WitnessStarted {
        /// Whether the instance was created.
        ok: bool,
    },
    /// Witness decommissioned.
    WitnessEnded,

    /// Backup accepted (or rejected, if the epoch was stale) a sync batch.
    BackupSynced {
        /// `false` means the sender is a fenced zombie (§4.7).
        accepted: bool,
        /// The backup's next expected sequence number (for gap detection).
        next_seq: u64,
    },
    /// The backup's materialized replica for a partition.
    BackupData {
        /// Next log-entry sequence number the backup expects (== number of
        /// entries applied).
        next_seq: u64,
        /// Opaque encoded snapshot of the replica state.
        snapshot: Bytes,
    },
    /// Acknowledges a [`Request::BackupInstall`].
    BackupInstalled,
    /// Result of a [`Request::BackupRead`].
    BackupValue {
        /// Execution result against the backup's replica state.
        result: OpResult,
    },
    /// Epoch fencing installed.
    EpochSet,

    /// Master acknowledged a witness-list change (it has synced, §3.6).
    WitnessListInstalled,
    /// A master's load snapshot (reply to [`Request::MasterLoadStats`]).
    LoadStats {
        /// The snapshot.
        stats: LoadStats,
    },
    /// Master acknowledged a lease expiry (it has synced, §4.8).
    ClientExpiredAck,

    /// Current cluster configuration.
    Config {
        /// The configuration.
        config: ClusterConfig,
    },
    /// A fresh (or renewed) RIFL lease.
    Lease {
        /// The client id.
        client: ClientId,
        /// Lease validity in milliseconds from now.
        ttl_ms: u64,
    },

    /// An opaque consensus-protocol reply (see [`Request::Consensus`]).
    Consensus {
        /// Encoded consensus reply.
        payload: Bytes,
    },

    /// Positional answers to a [`Request::Batch`]: `responses[i]` answers
    /// `requests[i]` regardless of handler completion order.
    Batch {
        /// One response per inner request, in request order.
        responses: Vec<Response>,
    },

    /// Generic retriable failure with a human-readable reason.
    Retry {
        /// Why the request could not be served.
        reason: String,
    },
}

macro_rules! tags {
    ($($name:ident = $val:expr,)*) => {
        $(const $name: u8 = $val;)*
    };
}

tags! {
    REQ_CLIENT_UPDATE = 0,
    REQ_CLIENT_READ = 1,
    REQ_SYNC = 2,
    REQ_W_RECORD = 3,
    REQ_W_COMMUTE = 4,
    REQ_W_GC = 5,
    REQ_W_RECOVERY = 6,
    REQ_W_START = 7,
    REQ_W_END = 8,
    REQ_B_SYNC = 9,
    REQ_B_FETCH = 10,
    REQ_B_READ = 11,
    REQ_B_EPOCH = 12,
    REQ_B_INSTALL = 21,
    REQ_M_WLIST = 13,
    REQ_M_EXPIRED = 14,
    REQ_GET_CONFIG = 15,
    REQ_ACQUIRE_LEASE = 16,
    REQ_RENEW_LEASE = 17,
    REQ_CONSENSUS = 22,
    REQ_BATCH = 23,
    REQ_M_LOAD = 24,
}

impl Encode for Request {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Request::ClientUpdate { rpc_id, first_incomplete, witness_list_version, op } => {
                buf.put_u8(REQ_CLIENT_UPDATE);
                rpc_id.encode(buf);
                first_incomplete.encode(buf);
                witness_list_version.encode(buf);
                op.encode(buf);
            }
            Request::ClientRead { op } => {
                buf.put_u8(REQ_CLIENT_READ);
                op.encode(buf);
            }
            Request::Sync { master_id } => {
                buf.put_u8(REQ_SYNC);
                master_id.encode(buf);
            }
            Request::WitnessRecord { request } => {
                buf.put_u8(REQ_W_RECORD);
                request.encode(buf);
            }
            Request::WitnessCommuteCheck { master_id, key_hashes } => {
                buf.put_u8(REQ_W_COMMUTE);
                master_id.encode(buf);
                key_hashes.encode(buf);
            }
            Request::WitnessGc { master_id, entries } => {
                buf.put_u8(REQ_W_GC);
                master_id.encode(buf);
                encode_seq(entries, buf);
            }
            Request::WitnessGetRecoveryData { master_id } => {
                buf.put_u8(REQ_W_RECOVERY);
                master_id.encode(buf);
            }
            Request::WitnessStart { master_id } => {
                buf.put_u8(REQ_W_START);
                master_id.encode(buf);
            }
            Request::WitnessEnd { master_id } => {
                buf.put_u8(REQ_W_END);
                master_id.encode(buf);
            }
            Request::BackupSync { master_id, epoch, entries } => {
                buf.put_u8(REQ_B_SYNC);
                master_id.encode(buf);
                epoch.encode(buf);
                encode_seq(entries, buf);
            }
            Request::BackupFetch { master_id } => {
                buf.put_u8(REQ_B_FETCH);
                master_id.encode(buf);
            }
            Request::BackupRead { master_id, op } => {
                buf.put_u8(REQ_B_READ);
                master_id.encode(buf);
                op.encode(buf);
            }
            Request::BackupSetEpoch { master_id, epoch } => {
                buf.put_u8(REQ_B_EPOCH);
                master_id.encode(buf);
                epoch.encode(buf);
            }
            Request::BackupInstall { master_id, epoch, next_seq, snapshot } => {
                buf.put_u8(REQ_B_INSTALL);
                master_id.encode(buf);
                epoch.encode(buf);
                next_seq.encode(buf);
                snapshot.encode(buf);
            }
            Request::MasterWitnessList { version, witnesses } => {
                buf.put_u8(REQ_M_WLIST);
                version.encode(buf);
                encode_seq(witnesses, buf);
            }
            Request::MasterClientExpired { client } => {
                buf.put_u8(REQ_M_EXPIRED);
                client.encode(buf);
            }
            Request::MasterLoadStats { master_id } => {
                buf.put_u8(REQ_M_LOAD);
                master_id.encode(buf);
            }
            Request::Consensus { payload } => {
                buf.put_u8(REQ_CONSENSUS);
                payload.encode(buf);
            }
            Request::Batch { requests } => {
                buf.put_u8(REQ_BATCH);
                encode_seq(requests, buf);
            }
            Request::GetConfig => buf.put_u8(REQ_GET_CONFIG),
            Request::AcquireLease => buf.put_u8(REQ_ACQUIRE_LEASE),
            Request::RenewLease { client } => {
                buf.put_u8(REQ_RENEW_LEASE);
                client.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Request::ClientUpdate { rpc_id, first_incomplete, witness_list_version, op } => {
                rpc_id.encoded_len()
                    + first_incomplete.encoded_len()
                    + witness_list_version.encoded_len()
                    + op.encoded_len()
            }
            Request::ClientRead { op } => op.encoded_len(),
            Request::GetConfig | Request::AcquireLease => 0,
            Request::Sync { master_id } => master_id.encoded_len(),
            Request::WitnessEnd { master_id } => master_id.encoded_len(),
            Request::WitnessRecord { request } => request.encoded_len(),
            Request::WitnessCommuteCheck { master_id, key_hashes } => {
                master_id.encoded_len() + key_hashes.encoded_len()
            }
            Request::WitnessGc { master_id, entries } => {
                master_id.encoded_len() + seq_encoded_len(entries)
            }
            Request::WitnessGetRecoveryData { master_id } => master_id.encoded_len(),
            Request::WitnessStart { master_id } => master_id.encoded_len(),
            Request::BackupSync { master_id, epoch, entries } => {
                master_id.encoded_len() + epoch.encoded_len() + seq_encoded_len(entries)
            }
            Request::BackupFetch { master_id } => master_id.encoded_len(),
            Request::BackupRead { master_id, op } => master_id.encoded_len() + op.encoded_len(),
            Request::BackupSetEpoch { master_id, epoch } => {
                master_id.encoded_len() + epoch.encoded_len()
            }
            Request::BackupInstall { master_id, epoch, next_seq, snapshot } => {
                master_id.encoded_len()
                    + epoch.encoded_len()
                    + next_seq.encoded_len()
                    + snapshot.encoded_len()
            }
            Request::MasterWitnessList { version, witnesses } => {
                version.encoded_len() + seq_encoded_len(witnesses)
            }
            Request::MasterClientExpired { client } => client.encoded_len(),
            Request::MasterLoadStats { master_id } => master_id.encoded_len(),
            Request::RenewLease { client } => client.encoded_len(),
            Request::Consensus { payload } => payload.encoded_len(),
            Request::Batch { requests } => seq_encoded_len(requests),
        }
    }
}

impl Decode for Request {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(buf, 1)?;
        let tag = buf.get_u8();
        Ok(match tag {
            REQ_CLIENT_UPDATE => Request::ClientUpdate {
                rpc_id: RpcId::decode(buf)?,
                first_incomplete: u64::decode(buf)?,
                witness_list_version: WitnessListVersion::decode(buf)?,
                op: Op::decode(buf)?,
            },
            REQ_CLIENT_READ => Request::ClientRead { op: Op::decode(buf)? },
            REQ_SYNC => Request::Sync { master_id: MasterId::decode(buf)? },
            REQ_W_RECORD => Request::WitnessRecord { request: RecordedRequest::decode(buf)? },
            REQ_W_COMMUTE => Request::WitnessCommuteCheck {
                master_id: MasterId::decode(buf)?,
                key_hashes: Footprint::decode(buf)?,
            },
            REQ_W_GC => {
                Request::WitnessGc { master_id: MasterId::decode(buf)?, entries: decode_seq(buf)? }
            }
            REQ_W_RECOVERY => Request::WitnessGetRecoveryData { master_id: MasterId::decode(buf)? },
            REQ_W_START => Request::WitnessStart { master_id: MasterId::decode(buf)? },
            REQ_W_END => Request::WitnessEnd { master_id: MasterId::decode(buf)? },
            REQ_B_SYNC => Request::BackupSync {
                master_id: MasterId::decode(buf)?,
                epoch: Epoch::decode(buf)?,
                entries: decode_seq(buf)?,
            },
            REQ_B_FETCH => Request::BackupFetch { master_id: MasterId::decode(buf)? },
            REQ_B_READ => {
                Request::BackupRead { master_id: MasterId::decode(buf)?, op: Op::decode(buf)? }
            }
            REQ_B_EPOCH => Request::BackupSetEpoch {
                master_id: MasterId::decode(buf)?,
                epoch: Epoch::decode(buf)?,
            },
            REQ_B_INSTALL => Request::BackupInstall {
                master_id: MasterId::decode(buf)?,
                epoch: Epoch::decode(buf)?,
                next_seq: u64::decode(buf)?,
                snapshot: Bytes::decode(buf)?,
            },
            REQ_M_WLIST => Request::MasterWitnessList {
                version: WitnessListVersion::decode(buf)?,
                witnesses: decode_seq(buf)?,
            },
            REQ_M_EXPIRED => Request::MasterClientExpired { client: ClientId::decode(buf)? },
            REQ_M_LOAD => Request::MasterLoadStats { master_id: MasterId::decode(buf)? },
            REQ_CONSENSUS => Request::Consensus { payload: Bytes::decode(buf)? },
            REQ_BATCH => {
                let requests: Vec<Request> = decode_seq(buf)?;
                // Batches never nest; bounding the recursion depth here keeps
                // adversarial frames from growing an unbounded decode stack.
                if requests.iter().any(|r| matches!(r, Request::Batch { .. })) {
                    return Err(DecodeError::InvalidTag { ty: "Request (nested batch)", tag });
                }
                Request::Batch { requests }
            }
            REQ_GET_CONFIG => Request::GetConfig,
            REQ_ACQUIRE_LEASE => Request::AcquireLease,
            REQ_RENEW_LEASE => Request::RenewLease { client: ClientId::decode(buf)? },
            tag => return Err(DecodeError::InvalidTag { ty: "Request", tag }),
        })
    }
}

tags! {
    RSP_UPDATE = 0,
    RSP_READ = 1,
    RSP_SYNC_DONE = 2,
    RSP_STALE_WLIST = 3,
    RSP_NOT_OWNER = 4,
    RSP_REC_ACCEPTED = 5,
    RSP_REC_REJECTED = 6,
    RSP_COMMUTE = 7,
    RSP_GC_DONE = 8,
    RSP_RECOVERY = 9,
    RSP_W_STARTED = 10,
    RSP_W_ENDED = 11,
    RSP_B_SYNCED = 12,
    RSP_B_DATA = 13,
    RSP_B_VALUE = 14,
    RSP_EPOCH_SET = 15,
    RSP_WLIST_INSTALLED = 16,
    RSP_EXPIRED_ACK = 17,
    RSP_CONFIG = 18,
    RSP_LEASE = 19,
    RSP_RETRY = 20,
    RSP_B_INSTALLED = 21,
    RSP_CONSENSUS = 22,
    RSP_BATCH = 23,
    RSP_LOAD_STATS = 24,
}

impl Encode for Response {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Response::Update { result, synced } => {
                buf.put_u8(RSP_UPDATE);
                result.encode(buf);
                synced.encode(buf);
            }
            Response::Read { result } => {
                buf.put_u8(RSP_READ);
                result.encode(buf);
            }
            Response::SyncDone => buf.put_u8(RSP_SYNC_DONE),
            Response::StaleWitnessList { current } => {
                buf.put_u8(RSP_STALE_WLIST);
                current.encode(buf);
            }
            Response::NotOwner => buf.put_u8(RSP_NOT_OWNER),
            Response::RecordAccepted => buf.put_u8(RSP_REC_ACCEPTED),
            Response::RecordRejected => buf.put_u8(RSP_REC_REJECTED),
            Response::CommuteOk { commutative } => {
                buf.put_u8(RSP_COMMUTE);
                commutative.encode(buf);
            }
            Response::GcDone { stale } => {
                buf.put_u8(RSP_GC_DONE);
                encode_seq(stale, buf);
            }
            Response::RecoveryData { requests } => {
                buf.put_u8(RSP_RECOVERY);
                encode_seq(requests, buf);
            }
            Response::WitnessStarted { ok } => {
                buf.put_u8(RSP_W_STARTED);
                ok.encode(buf);
            }
            Response::WitnessEnded => buf.put_u8(RSP_W_ENDED),
            Response::BackupSynced { accepted, next_seq } => {
                buf.put_u8(RSP_B_SYNCED);
                accepted.encode(buf);
                next_seq.encode(buf);
            }
            Response::BackupData { next_seq, snapshot } => {
                buf.put_u8(RSP_B_DATA);
                next_seq.encode(buf);
                snapshot.encode(buf);
            }
            Response::BackupInstalled => buf.put_u8(RSP_B_INSTALLED),
            Response::BackupValue { result } => {
                buf.put_u8(RSP_B_VALUE);
                result.encode(buf);
            }
            Response::EpochSet => buf.put_u8(RSP_EPOCH_SET),
            Response::WitnessListInstalled => buf.put_u8(RSP_WLIST_INSTALLED),
            Response::LoadStats { stats } => {
                buf.put_u8(RSP_LOAD_STATS);
                stats.encode(buf);
            }
            Response::ClientExpiredAck => buf.put_u8(RSP_EXPIRED_ACK),
            Response::Config { config } => {
                buf.put_u8(RSP_CONFIG);
                config.encode(buf);
            }
            Response::Lease { client, ttl_ms } => {
                buf.put_u8(RSP_LEASE);
                client.encode(buf);
                ttl_ms.encode(buf);
            }
            Response::Retry { reason } => {
                buf.put_u8(RSP_RETRY);
                reason.encode(buf);
            }
            Response::Consensus { payload } => {
                buf.put_u8(RSP_CONSENSUS);
                payload.encode(buf);
            }
            Response::Batch { responses } => {
                buf.put_u8(RSP_BATCH);
                encode_seq(responses, buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Response::Update { result, synced } => result.encoded_len() + synced.encoded_len(),
            Response::Read { result } => result.encoded_len(),
            Response::SyncDone
            | Response::NotOwner
            | Response::RecordAccepted
            | Response::RecordRejected
            | Response::WitnessEnded
            | Response::EpochSet
            | Response::WitnessListInstalled
            | Response::ClientExpiredAck => 0,
            Response::StaleWitnessList { current } => current.encoded_len(),
            Response::CommuteOk { commutative } => commutative.encoded_len(),
            Response::GcDone { stale } => seq_encoded_len(stale),
            Response::RecoveryData { requests } => seq_encoded_len(requests),
            Response::WitnessStarted { ok } => ok.encoded_len(),
            Response::BackupSynced { accepted, next_seq } => {
                accepted.encoded_len() + next_seq.encoded_len()
            }
            Response::BackupData { next_seq, snapshot } => {
                next_seq.encoded_len() + snapshot.encoded_len()
            }
            Response::BackupInstalled => 0,
            Response::BackupValue { result } => result.encoded_len(),
            Response::LoadStats { stats } => stats.encoded_len(),
            Response::Config { config } => config.encoded_len(),
            Response::Lease { client, ttl_ms } => client.encoded_len() + ttl_ms.encoded_len(),
            Response::Retry { reason } => reason.encoded_len(),
            Response::Consensus { payload } => payload.encoded_len(),
            Response::Batch { responses } => seq_encoded_len(responses),
        }
    }
}

impl Decode for Response {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        need(buf, 1)?;
        let tag = buf.get_u8();
        Ok(match tag {
            RSP_UPDATE => {
                Response::Update { result: OpResult::decode(buf)?, synced: bool::decode(buf)? }
            }
            RSP_READ => Response::Read { result: OpResult::decode(buf)? },
            RSP_SYNC_DONE => Response::SyncDone,
            RSP_STALE_WLIST => {
                Response::StaleWitnessList { current: WitnessListVersion::decode(buf)? }
            }
            RSP_NOT_OWNER => Response::NotOwner,
            RSP_REC_ACCEPTED => Response::RecordAccepted,
            RSP_REC_REJECTED => Response::RecordRejected,
            RSP_COMMUTE => Response::CommuteOk { commutative: bool::decode(buf)? },
            RSP_GC_DONE => Response::GcDone { stale: decode_seq(buf)? },
            RSP_RECOVERY => Response::RecoveryData { requests: decode_seq(buf)? },
            RSP_W_STARTED => Response::WitnessStarted { ok: bool::decode(buf)? },
            RSP_W_ENDED => Response::WitnessEnded,
            RSP_B_SYNCED => {
                Response::BackupSynced { accepted: bool::decode(buf)?, next_seq: u64::decode(buf)? }
            }
            RSP_B_DATA => {
                Response::BackupData { next_seq: u64::decode(buf)?, snapshot: Bytes::decode(buf)? }
            }
            RSP_B_INSTALLED => Response::BackupInstalled,
            RSP_B_VALUE => Response::BackupValue { result: OpResult::decode(buf)? },
            RSP_EPOCH_SET => Response::EpochSet,
            RSP_WLIST_INSTALLED => Response::WitnessListInstalled,
            RSP_LOAD_STATS => Response::LoadStats { stats: LoadStats::decode(buf)? },
            RSP_EXPIRED_ACK => Response::ClientExpiredAck,
            RSP_CONFIG => Response::Config { config: ClusterConfig::decode(buf)? },
            RSP_LEASE => {
                Response::Lease { client: ClientId::decode(buf)?, ttl_ms: u64::decode(buf)? }
            }
            RSP_RETRY => Response::Retry { reason: String::decode(buf)? },
            RSP_CONSENSUS => Response::Consensus { payload: Bytes::decode(buf)? },
            RSP_BATCH => {
                let responses: Vec<Response> = decode_seq(buf)?;
                if responses.iter().any(|r| matches!(r, Response::Batch { .. })) {
                    return Err(DecodeError::InvalidTag { ty: "Response (nested batch)", tag });
                }
                Response::Batch { responses }
            }
            tag => return Err(DecodeError::InvalidTag { ty: "Response", tag }),
        })
    }
}

/// Transport-level envelope correlating requests with responses on a shared
/// stream (used by the TCP transport; the in-memory transport correlates via
/// oneshot channels instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcEnvelope {
    /// Correlation id, unique per connection.
    pub corr_id: u64,
    /// `true` if `payload` is a [`Response`], `false` for a [`Request`].
    pub is_response: bool,
    /// Encoded request or response.
    pub payload: Bytes,
}

impl Encode for RpcEnvelope {
    fn encode(&self, buf: &mut impl BufMut) {
        self.corr_id.encode(buf);
        self.is_response.encode(buf);
        self.payload.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        8 + 1 + self.payload.encoded_len()
    }
}

impl Decode for RpcEnvelope {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(RpcEnvelope {
            corr_id: u64::decode(buf)?,
            is_response: bool::decode(buf)?,
            payload: Bytes::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{HashRange, PartitionConfig};
    use crate::wire::roundtrip;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn rid(c: u64, s: u64) -> RpcId {
        RpcId::new(ClientId(c), s)
    }

    fn recorded() -> RecordedRequest {
        RecordedRequest {
            master_id: MasterId(3),
            rpc_id: rid(1, 5),
            key_hashes: vec![KeyHash(11), KeyHash(22)].into(),
            op: Op::Put { key: b("k"), value: b("v") },
        }
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::ClientUpdate {
                rpc_id: rid(1, 2),
                first_incomplete: 1,
                witness_list_version: WitnessListVersion(4),
                op: Op::Put { key: b("k"), value: b("v") },
            },
            Request::ClientRead { op: Op::Get { key: b("k") } },
            Request::Sync { master_id: MasterId(1) },
            Request::WitnessRecord { request: recorded() },
            Request::WitnessCommuteCheck {
                master_id: MasterId(3),
                key_hashes: vec![KeyHash(9)].into(),
            },
            Request::WitnessGc { master_id: MasterId(3), entries: vec![(KeyHash(1), rid(2, 3))] },
            Request::WitnessGetRecoveryData { master_id: MasterId(3) },
            Request::WitnessStart { master_id: MasterId(3) },
            Request::WitnessEnd { master_id: MasterId(3) },
            Request::BackupSync {
                master_id: MasterId(3),
                epoch: Epoch(2),
                entries: vec![LogEntry {
                    seq: 7,
                    rpc_id: Some(rid(1, 2)),
                    op: Op::Delete { key: b("k") },
                    result: OpResult::Written { version: 8 },
                }],
            },
            Request::BackupFetch { master_id: MasterId(3) },
            Request::BackupRead { master_id: MasterId(3), op: Op::Get { key: b("k") } },
            Request::BackupSetEpoch { master_id: MasterId(3), epoch: Epoch(5) },
            Request::BackupInstall {
                master_id: MasterId(4),
                epoch: Epoch(6),
                next_seq: 17,
                snapshot: b("snapshot-bytes"),
            },
            Request::MasterWitnessList {
                version: WitnessListVersion(6),
                witnesses: vec![ServerId(1), ServerId(2)],
            },
            Request::MasterClientExpired { client: ClientId(9) },
            Request::MasterLoadStats { master_id: MasterId(3) },
            Request::Consensus { payload: b("raft-bytes") },
            Request::Batch {
                requests: vec![
                    Request::ClientUpdate {
                        rpc_id: rid(1, 2),
                        first_incomplete: 1,
                        witness_list_version: WitnessListVersion(4),
                        op: Op::Put { key: b("k"), value: b("v") },
                    },
                    Request::WitnessRecord { request: recorded() },
                    Request::Sync { master_id: MasterId(1) },
                ],
            },
            Request::Batch { requests: Vec::new() },
            Request::GetConfig,
            Request::AcquireLease,
            Request::RenewLease { client: ClientId(9) },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Update { result: OpResult::Written { version: 1 }, synced: true },
            Response::Read { result: OpResult::Value(Some(b("v"))) },
            Response::SyncDone,
            Response::StaleWitnessList { current: WitnessListVersion(7) },
            Response::NotOwner,
            Response::RecordAccepted,
            Response::RecordRejected,
            Response::CommuteOk { commutative: false },
            Response::GcDone { stale: vec![recorded()] },
            Response::RecoveryData { requests: vec![recorded(), recorded()] },
            Response::WitnessStarted { ok: true },
            Response::WitnessEnded,
            Response::BackupSynced { accepted: false, next_seq: 12 },
            Response::BackupData { next_seq: 12, snapshot: b("blob") },
            Response::BackupInstalled,
            Response::BackupValue { result: OpResult::Value(None) },
            Response::EpochSet,
            Response::WitnessListInstalled,
            Response::LoadStats {
                stats: LoadStats {
                    updates: 420,
                    pending: 3,
                    range: HashRange { start: 0, end: 1 << 63 },
                    hot_hash_histogram: vec![1, 0, 7, 2],
                },
            },
            Response::ClientExpiredAck,
            Response::Config {
                config: ClusterConfig {
                    partitions: vec![PartitionConfig {
                        master_id: MasterId(1),
                        master: ServerId(1),
                        backups: vec![ServerId(2)],
                        witnesses: vec![ServerId(3)],
                        witness_list_version: WitnessListVersion(1),
                        epoch: Epoch(0),
                        range: HashRange::FULL,
                    }],
                    version: 1,
                },
            },
            Response::Lease { client: ClientId(4), ttl_ms: 30_000 },
            Response::Retry { reason: "busy".into() },
            Response::Consensus { payload: b("raft-reply") },
            Response::Batch {
                responses: vec![
                    Response::Update { result: OpResult::Written { version: 1 }, synced: false },
                    Response::RecordAccepted,
                    Response::SyncDone,
                ],
            },
            Response::Batch { responses: Vec::new() },
        ]
    }

    #[test]
    fn all_requests_roundtrip() {
        for r in sample_requests() {
            roundtrip(&r);
        }
    }

    #[test]
    fn all_responses_roundtrip() {
        for r in sample_responses() {
            roundtrip(&r);
        }
    }

    #[test]
    fn envelope_roundtrips() {
        let req = Request::Sync { master_id: MasterId(1) };
        let env = RpcEnvelope { corr_id: 42, is_response: false, payload: req.to_bytes() };
        roundtrip(&env);
        let back = Request::from_bytes(&env.payload).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(Request::from_bytes(&[200]).is_err());
        assert!(Response::from_bytes(&[200]).is_err());
    }

    #[test]
    fn nested_batches_rejected() {
        let req = Request::Batch { requests: vec![Request::Batch { requests: vec![] }] };
        assert!(Request::from_bytes(&req.to_bytes()).is_err());
        let rsp = Response::Batch { responses: vec![Response::Batch { responses: vec![] }] };
        assert!(Response::from_bytes(&rsp.to_bytes()).is_err());
    }

    #[test]
    fn batch_keeps_per_op_footprints() {
        // The batch frame must not collapse footprints: each WitnessRecord
        // inside a batch round-trips with its own key hashes.
        let a = recorded();
        let mut b2 = recorded();
        b2.rpc_id = rid(1, 6);
        b2.key_hashes = vec![KeyHash(33)].into();
        let req = Request::Batch {
            requests: vec![
                Request::WitnessRecord { request: a.clone() },
                Request::WitnessRecord { request: b2.clone() },
            ],
        };
        let back = Request::from_bytes(&req.to_bytes()).unwrap();
        let Request::Batch { requests } = back else { panic!("not a batch") };
        assert_eq!(requests[0], Request::WitnessRecord { request: a });
        assert_eq!(requests[1], Request::WitnessRecord { request: b2 });
    }

    #[test]
    fn truncated_messages_rejected() {
        for r in sample_requests() {
            let bytes = r.to_bytes();
            for cut in 0..bytes.len() {
                assert!(Request::from_bytes(&bytes[..cut]).is_err(), "{r:?} cut={cut}");
            }
        }
    }
}
