//! The workspace-wide lock-rank table (DESIGN.md invariant 6).
//!
//! Every `parking_lot::Mutex`/`RwLock` in production code is constructed
//! with `::ranked(rank, name, ..)` using a constant from this module. Under
//! the `lock_audit` feature of the vendored parking_lot shim (enabled for
//! all `cargo test` invocations from the workspace root), a thread may only
//! acquire locks in strictly ascending rank order, and a strict-leaf lock
//! forbids any further acquisition while held. `curp-lint` statically
//! rejects unranked `Mutex::new` in these crates, so the table below is the
//! single place lock-ordering decisions live.
//!
//! Ranks are grouped in bands, lowest (outermost) first:
//!
//! | band            | locks                                              |
//! |-----------------|----------------------------------------------------|
//! | `0x0100..0x01ff`| infrastructure roots (fleet history, autoscaler)   |
//! | `0x0200..0x02ff`| coordinator state/servers/plans                    |
//! | `0x0300..0x03ff`| client session state/pipes                         |
//! | `0x0400`        | server master slot                                 |
//! | `0x0500`        | backup replica map (held across store operations)  |
//! | `0x0600..0x07ff`| witness service map, per-instance mode             |
//! | `0x1000..0x1fff`| store shards, rank = `STORE_SHARD + index`         |
//! | `0x2000..0x2fff`| witness cache shards, rank = `WITNESS_SHARD + i`   |
//! | `0x3000..0x30ff`| master leaves: RIFL, ctrl, pending-GC              |
//! | `0x3100..0x31ff`| consensus replica/client leaves                    |
//! | `0x3200`        | witness journal file                               |
//! | `0x3300..0x33ff`| transport leaves (in-memory fabric, TCP)           |
//! | `0x4000`        | tier run list — **strict leaf**                    |
//!
//! The shard bands hold up to 4096 shards; `ShardedStore` asserts this
//! bound at construction. Two locks of the same band are distinguished by
//! shard index, so ascending shard order (invariant 6's original form) is
//! exactly ascending rank order.

/// Chaos-fleet run history (outermost: held while nothing else is).
pub const FLEET_HISTORY: u32 = 0x0100;
/// Autoscaler background-error sink.
pub const AUTOSCALER_ERRORS: u32 = 0x0110;

/// Coordinator cluster-state table.
pub const COORD_STATE: u32 = 0x0200;
/// Coordinator server registry.
pub const COORD_SERVERS: u32 = 0x0210;
/// Coordinator persisted migration/split plans.
pub const COORD_PLANS: u32 = 0x0220;

/// Client session state (RIFL sequencing, config cache).
pub const CLIENT_STATE: u32 = 0x0300;
/// Client per-server pipeline map.
pub const CLIENT_PIPES: u32 = 0x0310;

/// Server's installed-master slot.
pub const SERVER_MASTER: u32 = 0x0400;

/// Backup service replica map. Ranked below the store band because
/// `BackupService::sync` applies log entries (shard + tier locks) while
/// holding it.
pub const BACKUP_REPLICAS: u32 = 0x0500;

/// Witness service instance map.
pub const WITNESS_INSTANCES: u32 = 0x0600;
/// Per-witness-instance mode (accepting/frozen); held across cache shards.
pub const WITNESS_MODE: u32 = 0x0700;

/// Base rank of the store shard band: shard `i` is `STORE_SHARD + i`.
pub const STORE_SHARD: u32 = 0x1000;
/// Base rank of the witness cache shard band.
pub const WITNESS_SHARD: u32 = 0x2000;
/// Maximum shards per band (both bands are 0x1000 wide).
pub const MAX_SHARDS: usize = 0x1000;

/// Master RIFL (exactly-once result) table.
pub const MASTER_RIFL: u32 = 0x3000;
/// Master control block (sync/migration epochs).
pub const MASTER_CTRL: u32 = 0x3010;
/// Master pending-GC queue.
pub const MASTER_PENDING_GC: u32 = 0x3020;

/// Consensus replica state.
pub const CONSENSUS_REPLICA: u32 = 0x3100;
/// Consensus client RIFL table.
pub const CONSENSUS_CLIENT_RIFL: u32 = 0x3110;
/// Consensus client leader cache.
pub const CONSENSUS_LEADER_CACHE: u32 = 0x3120;

/// Witness durability journal (file handle).
pub const WITNESS_JOURNAL: u32 = 0x3200;

/// In-memory transport: server handler registry.
pub const TRANSPORT_SERVERS: u32 = 0x3300;
/// In-memory transport: per-link latency overrides.
pub const TRANSPORT_LINK_LATENCY: u32 = 0x3310;
/// In-memory transport: default latency model.
pub const TRANSPORT_DEFAULT_LATENCY: u32 = 0x3318;
/// In-memory transport: per-link latency RNG streams.
pub const TRANSPORT_LATENCY_RNGS: u32 = 0x3320;
/// In-memory transport: partition matrix.
pub const TRANSPORT_PARTITIONS: u32 = 0x3330;
/// In-memory transport: per-link fault injectors.
pub const TRANSPORT_LINK_FAULTS: u32 = 0x3340;
/// In-memory transport: default fault injector.
pub const TRANSPORT_DEFAULT_FAULT: u32 = 0x3348;
/// In-memory transport: RPC timeout knob.
pub const TRANSPORT_RPC_TIMEOUT: u32 = 0x3350;
/// TCP transport: route table.
pub const TCP_ROUTES: u32 = 0x3360;
/// TCP transport: pending-call table.
pub const TCP_PENDING: u32 = 0x3370;

/// Tier run list. A strict leaf (`Mutex::ranked_leaf`): absolutely nothing
/// may be acquired while it is held (DESIGN.md invariant 12).
pub const TIER_RUNS: u32 = 0x4000;
