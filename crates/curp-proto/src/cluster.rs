//! Cluster configuration objects served by the coordinator.
//!
//! A CURP cluster is partitioned by key hash. Each partition has one master,
//! `f` backups and `f` witnesses (§3.1); the coordinator owns the
//! authoritative mapping and hands it to clients, which cache it (§3.6).

use bytes::{Buf, BufMut};

use crate::types::{Epoch, KeyHash, MasterId, ServerId, WitnessListVersion};
use crate::wire::{decode_seq, encode_seq, seq_encoded_len, Decode, DecodeError, Encode};

/// A half-open, non-wrapping range of the 64-bit key-hash space:
/// `[start, end)`, with `end == u64::MAX` treated as inclusive of the top
/// hash so that a single range can cover the whole space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashRange {
    /// First hash owned (inclusive).
    pub start: u64,
    /// First hash *not* owned (exclusive), except that `u64::MAX` also owns
    /// the maximal hash value.
    pub end: u64,
}

impl HashRange {
    /// The range covering the entire hash space.
    pub const FULL: HashRange = HashRange { start: 0, end: u64::MAX };

    /// Returns `true` if `h` falls inside this range.
    pub fn contains(&self, h: KeyHash) -> bool {
        if self.end == u64::MAX {
            h.0 >= self.start
        } else {
            h.0 >= self.start && h.0 < self.end
        }
    }

    /// Splits the range at `mid`, returning `([start, mid), [mid, end))`.
    ///
    /// # Panics
    /// Panics if `mid` is not strictly inside the range. In particular
    /// `mid == u64::MAX` is rejected even when `end == u64::MAX`: the lower
    /// half's `end` would become `u64::MAX`, which this type treats as
    /// inclusive of the top hash — both halves would own it.
    pub fn split_at(&self, mid: u64) -> (HashRange, HashRange) {
        assert!(mid > self.start && mid < self.end);
        (HashRange { start: self.start, end: mid }, HashRange { start: mid, end: self.end })
    }
}

impl Encode for HashRange {
    fn encode(&self, buf: &mut impl BufMut) {
        self.start.encode(buf);
        self.end.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        16
    }
}

impl Decode for HashRange {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(HashRange { start: u64::decode(buf)?, end: u64::decode(buf)? })
    }
}

/// Configuration of one partition: its master, backups and witnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionConfig {
    /// The master role incarnation currently serving this partition.
    pub master_id: MasterId,
    /// Transport address of the master.
    pub master: ServerId,
    /// Transport addresses of the `f` backups.
    pub backups: Vec<ServerId>,
    /// Transport addresses of the `f` witnesses.
    pub witnesses: Vec<ServerId>,
    /// Version of the witness list (§3.6); bumped on every witness change.
    pub witness_list_version: WitnessListVersion,
    /// Zombie-fencing epoch for this partition (§4.7).
    pub epoch: Epoch,
    /// The slice of the key-hash space this partition owns.
    pub range: HashRange,
}

impl PartitionConfig {
    /// Replication/fault-tolerance factor `f` for this partition.
    pub fn fault_tolerance(&self) -> usize {
        self.backups.len()
    }
}

impl Encode for PartitionConfig {
    fn encode(&self, buf: &mut impl BufMut) {
        self.master_id.encode(buf);
        self.master.encode(buf);
        encode_seq(&self.backups, buf);
        encode_seq(&self.witnesses, buf);
        self.witness_list_version.encode(buf);
        self.epoch.encode(buf);
        self.range.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.master_id.encoded_len()
            + self.master.encoded_len()
            + seq_encoded_len(&self.backups)
            + seq_encoded_len(&self.witnesses)
            + self.witness_list_version.encoded_len()
            + self.epoch.encoded_len()
            + self.range.encoded_len()
    }
}

impl Decode for PartitionConfig {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(PartitionConfig {
            master_id: MasterId::decode(buf)?,
            master: ServerId::decode(buf)?,
            backups: decode_seq(buf)?,
            witnesses: decode_seq(buf)?,
            witness_list_version: WitnessListVersion::decode(buf)?,
            epoch: Epoch::decode(buf)?,
            range: HashRange::decode(buf)?,
        })
    }
}

/// The full cluster configuration: every partition's layout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterConfig {
    /// All partitions, with pairwise-disjoint ranges covering the hash space.
    pub partitions: Vec<PartitionConfig>,
    /// Monotonically increasing configuration version.
    pub version: u64,
}

impl ClusterConfig {
    /// Finds the partition owning key hash `h`.
    pub fn partition_for(&self, h: KeyHash) -> Option<&PartitionConfig> {
        self.partitions.iter().find(|p| p.range.contains(h))
    }

    /// Finds the partition served by master `id`.
    pub fn partition_by_master(&self, id: MasterId) -> Option<&PartitionConfig> {
        self.partitions.iter().find(|p| p.master_id == id)
    }
}

impl Encode for ClusterConfig {
    fn encode(&self, buf: &mut impl BufMut) {
        encode_seq(&self.partitions, buf);
        self.version.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        seq_encoded_len(&self.partitions) + 8
    }
}

impl Decode for ClusterConfig {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(ClusterConfig { partitions: decode_seq(buf)?, version: u64::decode(buf)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    fn sample_partition(range: HashRange) -> PartitionConfig {
        PartitionConfig {
            master_id: MasterId(1),
            master: ServerId(10),
            backups: vec![ServerId(11), ServerId(12), ServerId(13)],
            witnesses: vec![ServerId(21), ServerId(22), ServerId(23)],
            witness_list_version: WitnessListVersion(2),
            epoch: Epoch(1),
            range,
        }
    }

    #[test]
    fn range_contains() {
        let r = HashRange { start: 100, end: 200 };
        assert!(!r.contains(KeyHash(99)));
        assert!(r.contains(KeyHash(100)));
        assert!(r.contains(KeyHash(199)));
        assert!(!r.contains(KeyHash(200)));
    }

    #[test]
    fn full_range_covers_extremes() {
        assert!(HashRange::FULL.contains(KeyHash(0)));
        assert!(HashRange::FULL.contains(KeyHash(u64::MAX)));
    }

    #[test]
    fn split_partitions_cover_exactly_once() {
        let (lo, hi) = HashRange::FULL.split_at(1 << 63);
        for h in [0u64, 1, (1 << 63) - 1, 1 << 63, u64::MAX] {
            let in_lo = lo.contains(KeyHash(h));
            let in_hi = hi.contains(KeyHash(h));
            assert!(in_lo ^ in_hi, "hash {h} covered {}x", in_lo as u8 + in_hi as u8);
        }
    }

    #[test]
    #[should_panic]
    fn split_outside_range_panics() {
        let r = HashRange { start: 100, end: 200 };
        r.split_at(50);
    }

    #[test]
    #[should_panic]
    fn split_at_top_hash_panics() {
        // mid == u64::MAX would give the lower half end == u64::MAX, whose
        // inclusive-top semantics would make BOTH halves own the top hash.
        HashRange::FULL.split_at(u64::MAX);
    }

    #[test]
    #[should_panic]
    fn split_at_start_panics() {
        HashRange { start: 100, end: 200 }.split_at(100);
    }

    #[test]
    fn split_just_below_top_isolates_the_wrap_hashes() {
        // The top of the hash space wraps into the inclusive end == u64::MAX
        // range: a split at u64::MAX - 1 leaves a two-hash upper range
        // {MAX-1, MAX} and each boundary hash has exactly one owner.
        let (lo, hi) = HashRange::FULL.split_at(u64::MAX - 1);
        assert!(lo.contains(KeyHash(u64::MAX - 2)) && !hi.contains(KeyHash(u64::MAX - 2)));
        assert!(!lo.contains(KeyHash(u64::MAX - 1)) && hi.contains(KeyHash(u64::MAX - 1)));
        assert!(!lo.contains(KeyHash(u64::MAX)) && hi.contains(KeyHash(u64::MAX)));
    }

    #[test]
    fn empty_range_contains_nothing() {
        let empty = HashRange { start: 500, end: 500 };
        for h in [0, 499, 500, 501, u64::MAX] {
            assert!(!empty.contains(KeyHash(h)), "empty range claimed {h}");
        }
        // Degenerate exception baked into the wire format: start == end ==
        // u64::MAX is NOT empty — end == u64::MAX is inclusive of the top
        // hash, so this is the top-hash singleton.
        let top = HashRange { start: u64::MAX, end: u64::MAX };
        assert!(top.contains(KeyHash(u64::MAX)));
        assert!(!top.contains(KeyHash(u64::MAX - 1)));
    }

    #[test]
    fn adjacent_ranges_boundary_hash_belongs_to_the_upper_range() {
        let (lo, hi) = HashRange { start: 100, end: 300 }.split_at(200);
        assert_eq!((lo.start, lo.end, hi.start, hi.end), (100, 200, 200, 300));
        // The split point itself is owned by exactly the upper range.
        assert!(!lo.contains(KeyHash(200)) && hi.contains(KeyHash(200)));
        assert!(lo.contains(KeyHash(199)) && !hi.contains(KeyHash(199)));
        // Outer edges unchanged.
        assert!(lo.contains(KeyHash(100)) && !lo.contains(KeyHash(99)));
        assert!(hi.contains(KeyHash(299)) && !hi.contains(KeyHash(300)));
    }

    #[test]
    fn partition_for_boundary_hashes_have_exactly_one_owner() {
        // Three adjacent partitions built by repeated splitting, as the
        // coordinator's migration path does.
        let (p0, rest) = HashRange::FULL.split_at(1 << 62);
        let (p1, p2) = rest.split_at(1 << 63);
        let mut parts = Vec::new();
        for (i, range) in [p0, p1, p2].into_iter().enumerate() {
            let mut p = sample_partition(range);
            p.master_id = MasterId(i as u64 + 1);
            parts.push(p);
        }
        let cfg = ClusterConfig { partitions: parts, version: 1 };
        let expected = [
            (0u64, 1u64),
            ((1 << 62) - 1, 1),
            (1 << 62, 2), // boundary: upper partition owns it
            ((1 << 63) - 1, 2),
            (1 << 63, 3), // boundary: upper partition owns it
            (u64::MAX, 3),
        ];
        for (h, owner) in expected {
            let owners = cfg.partitions.iter().filter(|p| p.range.contains(KeyHash(h))).count();
            assert_eq!(owners, 1, "hash {h} owned {owners}x");
            assert_eq!(cfg.partition_for(KeyHash(h)).unwrap().master_id, MasterId(owner), "{h}");
        }
    }

    #[test]
    fn partition_for_uncovered_hash_is_none() {
        let cfg = ClusterConfig {
            partitions: vec![sample_partition(HashRange { start: 100, end: 200 })],
            version: 1,
        };
        assert!(cfg.partition_for(KeyHash(99)).is_none());
        assert!(cfg.partition_for(KeyHash(200)).is_none());
        assert!(cfg.partition_for(KeyHash(u64::MAX)).is_none());
        assert!(ClusterConfig::default().partition_for(KeyHash(0)).is_none());
    }

    #[test]
    fn config_roundtrips() {
        let cfg = ClusterConfig {
            partitions: vec![
                sample_partition(HashRange { start: 0, end: 1 << 63 }),
                sample_partition(HashRange { start: 1 << 63, end: u64::MAX }),
            ],
            version: 4,
        };
        roundtrip(&cfg);
        roundtrip(&ClusterConfig::default());
    }

    #[test]
    fn partition_lookup() {
        let (lo, hi) = HashRange::FULL.split_at(1 << 63);
        let mut p1 = sample_partition(lo);
        p1.master_id = MasterId(1);
        let mut p2 = sample_partition(hi);
        p2.master_id = MasterId(2);
        let cfg = ClusterConfig { partitions: vec![p1, p2], version: 1 };
        assert_eq!(cfg.partition_for(KeyHash(5)).unwrap().master_id, MasterId(1));
        assert_eq!(cfg.partition_for(KeyHash(u64::MAX)).unwrap().master_id, MasterId(2));
        assert!(cfg.partition_by_master(MasterId(2)).is_some());
        assert!(cfg.partition_by_master(MasterId(9)).is_none());
    }

    #[test]
    fn fault_tolerance_is_backup_count() {
        assert_eq!(sample_partition(HashRange::FULL).fault_tolerance(), 3);
    }
}
