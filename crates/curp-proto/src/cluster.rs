//! Cluster configuration objects served by the coordinator.
//!
//! A CURP cluster is partitioned by key hash. Each partition has one master,
//! `f` backups and `f` witnesses (§3.1); the coordinator owns the
//! authoritative mapping and hands it to clients, which cache it (§3.6).

use bytes::{Buf, BufMut};

use crate::types::{Epoch, KeyHash, MasterId, ServerId, WitnessListVersion};
use crate::wire::{decode_seq, encode_seq, seq_encoded_len, Decode, DecodeError, Encode};

/// A half-open, non-wrapping range of the 64-bit key-hash space:
/// `[start, end)`, with `end == u64::MAX` treated as inclusive of the top
/// hash so that a single range can cover the whole space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashRange {
    /// First hash owned (inclusive).
    pub start: u64,
    /// First hash *not* owned (exclusive), except that `u64::MAX` also owns
    /// the maximal hash value.
    pub end: u64,
}

impl HashRange {
    /// The range covering the entire hash space.
    pub const FULL: HashRange = HashRange { start: 0, end: u64::MAX };

    /// Returns `true` if `h` falls inside this range.
    pub fn contains(&self, h: KeyHash) -> bool {
        if self.end == u64::MAX {
            h.0 >= self.start
        } else {
            h.0 >= self.start && h.0 < self.end
        }
    }

    /// Splits the range at `mid`, returning `([start, mid), [mid, end))`.
    ///
    /// # Panics
    /// Panics if `mid` is not strictly inside the range.
    pub fn split_at(&self, mid: u64) -> (HashRange, HashRange) {
        assert!(mid > self.start && (mid < self.end || self.end == u64::MAX));
        (HashRange { start: self.start, end: mid }, HashRange { start: mid, end: self.end })
    }
}

impl Encode for HashRange {
    fn encode(&self, buf: &mut impl BufMut) {
        self.start.encode(buf);
        self.end.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        16
    }
}

impl Decode for HashRange {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(HashRange { start: u64::decode(buf)?, end: u64::decode(buf)? })
    }
}

/// Configuration of one partition: its master, backups and witnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionConfig {
    /// The master role incarnation currently serving this partition.
    pub master_id: MasterId,
    /// Transport address of the master.
    pub master: ServerId,
    /// Transport addresses of the `f` backups.
    pub backups: Vec<ServerId>,
    /// Transport addresses of the `f` witnesses.
    pub witnesses: Vec<ServerId>,
    /// Version of the witness list (§3.6); bumped on every witness change.
    pub witness_list_version: WitnessListVersion,
    /// Zombie-fencing epoch for this partition (§4.7).
    pub epoch: Epoch,
    /// The slice of the key-hash space this partition owns.
    pub range: HashRange,
}

impl PartitionConfig {
    /// Replication/fault-tolerance factor `f` for this partition.
    pub fn fault_tolerance(&self) -> usize {
        self.backups.len()
    }
}

impl Encode for PartitionConfig {
    fn encode(&self, buf: &mut impl BufMut) {
        self.master_id.encode(buf);
        self.master.encode(buf);
        encode_seq(&self.backups, buf);
        encode_seq(&self.witnesses, buf);
        self.witness_list_version.encode(buf);
        self.epoch.encode(buf);
        self.range.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.master_id.encoded_len()
            + self.master.encoded_len()
            + seq_encoded_len(&self.backups)
            + seq_encoded_len(&self.witnesses)
            + self.witness_list_version.encoded_len()
            + self.epoch.encoded_len()
            + self.range.encoded_len()
    }
}

impl Decode for PartitionConfig {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(PartitionConfig {
            master_id: MasterId::decode(buf)?,
            master: ServerId::decode(buf)?,
            backups: decode_seq(buf)?,
            witnesses: decode_seq(buf)?,
            witness_list_version: WitnessListVersion::decode(buf)?,
            epoch: Epoch::decode(buf)?,
            range: HashRange::decode(buf)?,
        })
    }
}

/// The full cluster configuration: every partition's layout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterConfig {
    /// All partitions, with pairwise-disjoint ranges covering the hash space.
    pub partitions: Vec<PartitionConfig>,
    /// Monotonically increasing configuration version.
    pub version: u64,
}

impl ClusterConfig {
    /// Finds the partition owning key hash `h`.
    pub fn partition_for(&self, h: KeyHash) -> Option<&PartitionConfig> {
        self.partitions.iter().find(|p| p.range.contains(h))
    }

    /// Finds the partition served by master `id`.
    pub fn partition_by_master(&self, id: MasterId) -> Option<&PartitionConfig> {
        self.partitions.iter().find(|p| p.master_id == id)
    }
}

impl Encode for ClusterConfig {
    fn encode(&self, buf: &mut impl BufMut) {
        encode_seq(&self.partitions, buf);
        self.version.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        seq_encoded_len(&self.partitions) + 8
    }
}

impl Decode for ClusterConfig {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(ClusterConfig { partitions: decode_seq(buf)?, version: u64::decode(buf)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    fn sample_partition(range: HashRange) -> PartitionConfig {
        PartitionConfig {
            master_id: MasterId(1),
            master: ServerId(10),
            backups: vec![ServerId(11), ServerId(12), ServerId(13)],
            witnesses: vec![ServerId(21), ServerId(22), ServerId(23)],
            witness_list_version: WitnessListVersion(2),
            epoch: Epoch(1),
            range,
        }
    }

    #[test]
    fn range_contains() {
        let r = HashRange { start: 100, end: 200 };
        assert!(!r.contains(KeyHash(99)));
        assert!(r.contains(KeyHash(100)));
        assert!(r.contains(KeyHash(199)));
        assert!(!r.contains(KeyHash(200)));
    }

    #[test]
    fn full_range_covers_extremes() {
        assert!(HashRange::FULL.contains(KeyHash(0)));
        assert!(HashRange::FULL.contains(KeyHash(u64::MAX)));
    }

    #[test]
    fn split_partitions_cover_exactly_once() {
        let (lo, hi) = HashRange::FULL.split_at(1 << 63);
        for h in [0u64, 1, (1 << 63) - 1, 1 << 63, u64::MAX] {
            let in_lo = lo.contains(KeyHash(h));
            let in_hi = hi.contains(KeyHash(h));
            assert!(in_lo ^ in_hi, "hash {h} covered {}x", in_lo as u8 + in_hi as u8);
        }
    }

    #[test]
    #[should_panic]
    fn split_outside_range_panics() {
        let r = HashRange { start: 100, end: 200 };
        r.split_at(50);
    }

    #[test]
    fn config_roundtrips() {
        let cfg = ClusterConfig {
            partitions: vec![
                sample_partition(HashRange { start: 0, end: 1 << 63 }),
                sample_partition(HashRange { start: 1 << 63, end: u64::MAX }),
            ],
            version: 4,
        };
        roundtrip(&cfg);
        roundtrip(&ClusterConfig::default());
    }

    #[test]
    fn partition_lookup() {
        let (lo, hi) = HashRange::FULL.split_at(1 << 63);
        let mut p1 = sample_partition(lo);
        p1.master_id = MasterId(1);
        let mut p2 = sample_partition(hi);
        p2.master_id = MasterId(2);
        let cfg = ClusterConfig { partitions: vec![p1, p2], version: 1 };
        assert_eq!(cfg.partition_for(KeyHash(5)).unwrap().master_id, MasterId(1));
        assert_eq!(cfg.partition_for(KeyHash(u64::MAX)).unwrap().master_id, MasterId(2));
        assert!(cfg.partition_by_master(MasterId(2)).is_some());
        assert!(cfg.partition_by_master(MasterId(9)).is_none());
    }

    #[test]
    fn fault_tolerance_is_backup_count() {
        assert_eq!(sample_partition(HashRange::FULL).fault_tolerance(), 3);
    }
}
