//! Cluster configuration objects served by the coordinator.
//!
//! A CURP cluster is partitioned by key hash. Each partition has one master,
//! `f` backups and `f` witnesses (§3.1); the coordinator owns the
//! authoritative mapping and hands it to clients, which cache it (§3.6).

use bytes::{Buf, BufMut};

use crate::types::{Epoch, KeyHash, MasterId, ServerId, WitnessListVersion};
use crate::wire::{decode_seq, encode_seq, seq_encoded_len, Decode, DecodeError, Encode};

/// A half-open, non-wrapping range of the 64-bit key-hash space:
/// `[start, end)`, with `end == u64::MAX` treated as inclusive of the top
/// hash so that a single range can cover the whole space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HashRange {
    /// First hash owned (inclusive).
    pub start: u64,
    /// First hash *not* owned (exclusive), except that `u64::MAX` also owns
    /// the maximal hash value.
    pub end: u64,
}

impl HashRange {
    /// The range covering the entire hash space.
    pub const FULL: HashRange = HashRange { start: 0, end: u64::MAX };

    /// Returns `true` if `h` falls inside this range.
    pub fn contains(&self, h: KeyHash) -> bool {
        if self.end == u64::MAX {
            h.0 >= self.start
        } else {
            h.0 >= self.start && h.0 < self.end
        }
    }

    /// Splits the range at `mid`, returning `([start, mid), [mid, end))`.
    ///
    /// # Panics
    /// Panics if `mid` is not strictly inside the range. In particular
    /// `mid == u64::MAX` is rejected even when `end == u64::MAX`: the lower
    /// half's `end` would become `u64::MAX`, which this type treats as
    /// inclusive of the top hash — both halves would own it.
    pub fn split_at(&self, mid: u64) -> (HashRange, HashRange) {
        assert!(mid > self.start && mid < self.end);
        (HashRange { start: self.start, end: mid }, HashRange { start: mid, end: self.end })
    }
}

impl Encode for HashRange {
    fn encode(&self, buf: &mut impl BufMut) {
        self.start.encode(buf);
        self.end.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        16
    }
}

impl Decode for HashRange {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(HashRange { start: u64::decode(buf)?, end: u64::decode(buf)? })
    }
}

/// Configuration of one partition: its master, backups and witnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionConfig {
    /// The master role incarnation currently serving this partition.
    pub master_id: MasterId,
    /// Transport address of the master.
    pub master: ServerId,
    /// Transport addresses of the `f` backups.
    pub backups: Vec<ServerId>,
    /// Transport addresses of the `f` witnesses.
    pub witnesses: Vec<ServerId>,
    /// Version of the witness list (§3.6); bumped on every witness change.
    pub witness_list_version: WitnessListVersion,
    /// Zombie-fencing epoch for this partition (§4.7).
    pub epoch: Epoch,
    /// The slice of the key-hash space this partition owns.
    pub range: HashRange,
}

impl PartitionConfig {
    /// Replication/fault-tolerance factor `f` for this partition.
    pub fn fault_tolerance(&self) -> usize {
        self.backups.len()
    }
}

impl Encode for PartitionConfig {
    fn encode(&self, buf: &mut impl BufMut) {
        self.master_id.encode(buf);
        self.master.encode(buf);
        encode_seq(&self.backups, buf);
        encode_seq(&self.witnesses, buf);
        self.witness_list_version.encode(buf);
        self.epoch.encode(buf);
        self.range.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.master_id.encoded_len()
            + self.master.encoded_len()
            + seq_encoded_len(&self.backups)
            + seq_encoded_len(&self.witnesses)
            + self.witness_list_version.encoded_len()
            + self.epoch.encoded_len()
            + self.range.encoded_len()
    }
}

impl Decode for PartitionConfig {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(PartitionConfig {
            master_id: MasterId::decode(buf)?,
            master: ServerId::decode(buf)?,
            backups: decode_seq(buf)?,
            witnesses: decode_seq(buf)?,
            witness_list_version: WitnessListVersion::decode(buf)?,
            epoch: Epoch::decode(buf)?,
            range: HashRange::decode(buf)?,
        })
    }
}

/// The full cluster configuration: every partition's layout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterConfig {
    /// All partitions, with pairwise-disjoint ranges covering the hash space.
    pub partitions: Vec<PartitionConfig>,
    /// Monotonically increasing configuration version.
    pub version: u64,
}

impl ClusterConfig {
    /// Finds the partition owning key hash `h`.
    pub fn partition_for(&self, h: KeyHash) -> Option<&PartitionConfig> {
        self.partitions.iter().find(|p| p.range.contains(h))
    }

    /// Finds the partition served by master `id`.
    pub fn partition_by_master(&self, id: MasterId) -> Option<&PartitionConfig> {
        self.partitions.iter().find(|p| p.master_id == id)
    }
}

impl Encode for ClusterConfig {
    fn encode(&self, buf: &mut impl BufMut) {
        encode_seq(&self.partitions, buf);
        self.version.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        seq_encoded_len(&self.partitions) + 8
    }
}

impl Decode for ClusterConfig {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(ClusterConfig { partitions: decode_seq(buf)?, version: u64::decode(buf)? })
    }
}

/// Number of fixed-width hash buckets in a [`LoadStats`] histogram. The
/// snapshot is allocation-bounded by construction: however many keys a
/// partition holds, the histogram never grows past this.
pub const LOAD_HISTOGRAM_BUCKETS: usize = 64;

/// A per-partition load snapshot exported by a master for the coordinator's
/// autoscaler (§3.6 reconfiguration, driven by load instead of an operator).
///
/// The histogram is the split-point oracle: bucket `i` counts recently
/// updated key hashes in the `i`-th fixed-width slice of `range`, so the
/// hotkey-mass median ([`LoadStats::split_point`]) lands the split where the
/// *load* divides in half, not where the range does.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LoadStats {
    /// Updates executed by this master since install (monotone counter; the
    /// poller differences consecutive snapshots for a rate).
    pub updates: u64,
    /// Speculative (unsynced) entries queued at snapshot time — the
    /// saturation signal.
    pub pending: u64,
    /// The hash range the master owned when the snapshot was taken.
    pub range: HashRange,
    /// Recently-updated-key counts per fixed-width bucket of `range`; at
    /// most [`LOAD_HISTOGRAM_BUCKETS`] entries.
    pub hot_hash_histogram: Vec<u64>,
}

impl LoadStats {
    /// Width of one histogram bucket over `range` (saturating; never zero).
    pub fn bucket_width(range: &HashRange) -> u64 {
        let span = range.end.saturating_sub(range.start);
        (span / LOAD_HISTOGRAM_BUCKETS as u64).max(1)
    }

    /// The histogram bucket owning hash `h` within `range`, clamped to the
    /// last bucket (the top slice absorbs the rounding remainder and, for
    /// `end == u64::MAX`, the inclusive top hash).
    pub fn bucket_for(range: &HashRange, h: KeyHash) -> usize {
        let off = h.0.saturating_sub(range.start);
        ((off / Self::bucket_width(range)) as usize).min(LOAD_HISTOGRAM_BUCKETS - 1)
    }

    /// Total hotkey mass in the histogram.
    pub fn mass(&self) -> u64 {
        self.hot_hash_histogram.iter().sum()
    }

    /// The load-weighted split point: the bucket boundary closest to the
    /// hotkey-mass median, clamped strictly inside `range` so it satisfies
    /// [`HashRange::split_at`]'s preconditions (in particular it is never
    /// `u64::MAX`). Returns `None` when the histogram is empty or the range
    /// is too narrow to split.
    pub fn split_point(&self) -> Option<u64> {
        let total = self.mass();
        if total == 0 || self.range.end.saturating_sub(self.range.start) < 2 {
            return None;
        }
        let width = Self::bucket_width(&self.range);
        let mut cum = 0u64;
        let mut boundary = self.range.start.saturating_add(width);
        for (i, count) in self.hot_hash_histogram.iter().enumerate() {
            cum += count;
            if cum * 2 >= total {
                boundary = self.range.start.saturating_add(width.saturating_mul(i as u64 + 1));
                break;
            }
        }
        Some(boundary.clamp(self.range.start + 1, self.range.end - 1))
    }
}

impl Encode for LoadStats {
    fn encode(&self, buf: &mut impl BufMut) {
        self.updates.encode(buf);
        self.pending.encode(buf);
        self.range.encode(buf);
        encode_seq(&self.hot_hash_histogram, buf);
    }
    fn encoded_len(&self) -> usize {
        8 + 8 + self.range.encoded_len() + seq_encoded_len(&self.hot_hash_histogram)
    }
}

impl Decode for LoadStats {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(LoadStats {
            updates: u64::decode(buf)?,
            pending: u64::decode(buf)?,
            range: HashRange::decode(buf)?,
            hot_hash_histogram: decode_seq(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    fn sample_partition(range: HashRange) -> PartitionConfig {
        PartitionConfig {
            master_id: MasterId(1),
            master: ServerId(10),
            backups: vec![ServerId(11), ServerId(12), ServerId(13)],
            witnesses: vec![ServerId(21), ServerId(22), ServerId(23)],
            witness_list_version: WitnessListVersion(2),
            epoch: Epoch(1),
            range,
        }
    }

    #[test]
    fn range_contains() {
        let r = HashRange { start: 100, end: 200 };
        assert!(!r.contains(KeyHash(99)));
        assert!(r.contains(KeyHash(100)));
        assert!(r.contains(KeyHash(199)));
        assert!(!r.contains(KeyHash(200)));
    }

    #[test]
    fn full_range_covers_extremes() {
        assert!(HashRange::FULL.contains(KeyHash(0)));
        assert!(HashRange::FULL.contains(KeyHash(u64::MAX)));
    }

    #[test]
    fn split_partitions_cover_exactly_once() {
        let (lo, hi) = HashRange::FULL.split_at(1 << 63);
        for h in [0u64, 1, (1 << 63) - 1, 1 << 63, u64::MAX] {
            let in_lo = lo.contains(KeyHash(h));
            let in_hi = hi.contains(KeyHash(h));
            assert!(in_lo ^ in_hi, "hash {h} covered {}x", in_lo as u8 + in_hi as u8);
        }
    }

    #[test]
    #[should_panic]
    fn split_outside_range_panics() {
        let r = HashRange { start: 100, end: 200 };
        r.split_at(50);
    }

    #[test]
    #[should_panic]
    fn split_at_top_hash_panics() {
        // mid == u64::MAX would give the lower half end == u64::MAX, whose
        // inclusive-top semantics would make BOTH halves own the top hash.
        HashRange::FULL.split_at(u64::MAX);
    }

    #[test]
    #[should_panic]
    fn split_at_start_panics() {
        HashRange { start: 100, end: 200 }.split_at(100);
    }

    #[test]
    fn split_just_below_top_isolates_the_wrap_hashes() {
        // The top of the hash space wraps into the inclusive end == u64::MAX
        // range: a split at u64::MAX - 1 leaves a two-hash upper range
        // {MAX-1, MAX} and each boundary hash has exactly one owner.
        let (lo, hi) = HashRange::FULL.split_at(u64::MAX - 1);
        assert!(lo.contains(KeyHash(u64::MAX - 2)) && !hi.contains(KeyHash(u64::MAX - 2)));
        assert!(!lo.contains(KeyHash(u64::MAX - 1)) && hi.contains(KeyHash(u64::MAX - 1)));
        assert!(!lo.contains(KeyHash(u64::MAX)) && hi.contains(KeyHash(u64::MAX)));
    }

    #[test]
    fn empty_range_contains_nothing() {
        let empty = HashRange { start: 500, end: 500 };
        for h in [0, 499, 500, 501, u64::MAX] {
            assert!(!empty.contains(KeyHash(h)), "empty range claimed {h}");
        }
        // Degenerate exception baked into the wire format: start == end ==
        // u64::MAX is NOT empty — end == u64::MAX is inclusive of the top
        // hash, so this is the top-hash singleton.
        let top = HashRange { start: u64::MAX, end: u64::MAX };
        assert!(top.contains(KeyHash(u64::MAX)));
        assert!(!top.contains(KeyHash(u64::MAX - 1)));
    }

    #[test]
    fn adjacent_ranges_boundary_hash_belongs_to_the_upper_range() {
        let (lo, hi) = HashRange { start: 100, end: 300 }.split_at(200);
        assert_eq!((lo.start, lo.end, hi.start, hi.end), (100, 200, 200, 300));
        // The split point itself is owned by exactly the upper range.
        assert!(!lo.contains(KeyHash(200)) && hi.contains(KeyHash(200)));
        assert!(lo.contains(KeyHash(199)) && !hi.contains(KeyHash(199)));
        // Outer edges unchanged.
        assert!(lo.contains(KeyHash(100)) && !lo.contains(KeyHash(99)));
        assert!(hi.contains(KeyHash(299)) && !hi.contains(KeyHash(300)));
    }

    #[test]
    fn partition_for_boundary_hashes_have_exactly_one_owner() {
        // Three adjacent partitions built by repeated splitting, as the
        // coordinator's migration path does.
        let (p0, rest) = HashRange::FULL.split_at(1 << 62);
        let (p1, p2) = rest.split_at(1 << 63);
        let mut parts = Vec::new();
        for (i, range) in [p0, p1, p2].into_iter().enumerate() {
            let mut p = sample_partition(range);
            p.master_id = MasterId(i as u64 + 1);
            parts.push(p);
        }
        let cfg = ClusterConfig { partitions: parts, version: 1 };
        let expected = [
            (0u64, 1u64),
            ((1 << 62) - 1, 1),
            (1 << 62, 2), // boundary: upper partition owns it
            ((1 << 63) - 1, 2),
            (1 << 63, 3), // boundary: upper partition owns it
            (u64::MAX, 3),
        ];
        for (h, owner) in expected {
            let owners = cfg.partitions.iter().filter(|p| p.range.contains(KeyHash(h))).count();
            assert_eq!(owners, 1, "hash {h} owned {owners}x");
            assert_eq!(cfg.partition_for(KeyHash(h)).unwrap().master_id, MasterId(owner), "{h}");
        }
    }

    #[test]
    fn partition_for_uncovered_hash_is_none() {
        let cfg = ClusterConfig {
            partitions: vec![sample_partition(HashRange { start: 100, end: 200 })],
            version: 1,
        };
        assert!(cfg.partition_for(KeyHash(99)).is_none());
        assert!(cfg.partition_for(KeyHash(200)).is_none());
        assert!(cfg.partition_for(KeyHash(u64::MAX)).is_none());
        assert!(ClusterConfig::default().partition_for(KeyHash(0)).is_none());
    }

    #[test]
    fn config_roundtrips() {
        let cfg = ClusterConfig {
            partitions: vec![
                sample_partition(HashRange { start: 0, end: 1 << 63 }),
                sample_partition(HashRange { start: 1 << 63, end: u64::MAX }),
            ],
            version: 4,
        };
        roundtrip(&cfg);
        roundtrip(&ClusterConfig::default());
    }

    #[test]
    fn partition_lookup() {
        let (lo, hi) = HashRange::FULL.split_at(1 << 63);
        let mut p1 = sample_partition(lo);
        p1.master_id = MasterId(1);
        let mut p2 = sample_partition(hi);
        p2.master_id = MasterId(2);
        let cfg = ClusterConfig { partitions: vec![p1, p2], version: 1 };
        assert_eq!(cfg.partition_for(KeyHash(5)).unwrap().master_id, MasterId(1));
        assert_eq!(cfg.partition_for(KeyHash(u64::MAX)).unwrap().master_id, MasterId(2));
        assert!(cfg.partition_by_master(MasterId(2)).is_some());
        assert!(cfg.partition_by_master(MasterId(9)).is_none());
    }

    #[test]
    fn fault_tolerance_is_backup_count() {
        assert_eq!(sample_partition(HashRange::FULL).fault_tolerance(), 3);
    }

    #[test]
    fn load_stats_roundtrips() {
        let stats = LoadStats {
            updates: 12_345,
            pending: 17,
            range: HashRange { start: 1 << 62, end: u64::MAX },
            hot_hash_histogram: vec![3; LOAD_HISTOGRAM_BUCKETS],
        };
        roundtrip(&stats);
        roundtrip(&LoadStats::default());
    }

    #[test]
    fn split_point_tracks_the_hotkey_mass_median() {
        // All mass piled in bucket 0: the split isolates the hot slice near
        // the bottom of the range, far below the naive midpoint.
        let range = HashRange { start: 0, end: 1 << 32 };
        let mut hist = vec![0u64; LOAD_HISTOGRAM_BUCKETS];
        hist[0] = 100;
        let stats = LoadStats { updates: 0, pending: 0, range, hot_hash_histogram: hist };
        let mid = stats.split_point().unwrap();
        assert_eq!(mid, LoadStats::bucket_width(&range), "split must hug the hot bucket");
        assert!(mid < (range.end - range.start) / 2);
        // Uniform mass: the split lands at (about) the range midpoint.
        let uniform = LoadStats {
            hot_hash_histogram: vec![5; LOAD_HISTOGRAM_BUCKETS],
            range,
            ..LoadStats::default()
        };
        let mid = uniform.split_point().unwrap();
        let naive = range.start + (range.end - range.start) / 2;
        assert!(mid.abs_diff(naive) <= LoadStats::bucket_width(&range), "{mid} vs {naive}");
    }

    #[test]
    fn split_point_is_always_strictly_inside_the_range() {
        // Even with all mass in the LAST bucket of a full-space range, the
        // returned point must satisfy split_at's preconditions — notably it
        // can never be u64::MAX.
        let mut hist = vec![0u64; LOAD_HISTOGRAM_BUCKETS];
        hist[LOAD_HISTOGRAM_BUCKETS - 1] = 9;
        let stats =
            LoadStats { range: HashRange::FULL, hot_hash_histogram: hist, ..LoadStats::default() };
        let mid = stats.split_point().unwrap();
        assert!(mid > 0 && mid < u64::MAX);
        HashRange::FULL.split_at(mid); // must not panic
    }

    #[test]
    fn split_point_refuses_empty_or_unsplittable_inputs() {
        assert_eq!(LoadStats::default().split_point(), None, "no mass, no split");
        let narrow = LoadStats {
            range: HashRange { start: 7, end: 8 },
            hot_hash_histogram: vec![1],
            ..LoadStats::default()
        };
        assert_eq!(narrow.split_point(), None, "a one-hash range cannot split");
    }

    #[test]
    fn bucket_for_covers_the_range_edges() {
        let range = HashRange { start: 1000, end: 2000 };
        assert_eq!(LoadStats::bucket_for(&range, KeyHash(1000)), 0);
        assert_eq!(LoadStats::bucket_for(&range, KeyHash(1999)), LOAD_HISTOGRAM_BUCKETS - 1);
        // The inclusive top hash of a MAX-ended range lands in the last bucket.
        assert_eq!(
            LoadStats::bucket_for(&HashRange::FULL, KeyHash(u64::MAX)),
            LOAD_HISTOGRAM_BUCKETS - 1
        );
    }
}

#[cfg(test)]
mod split_props {
    //! Boundary proptest for online splits: after ANY sequence of random
    //! splits (the coordinator's migration path applied repeatedly),
    //! `partition_for` must assign exactly one owner to every hash —
    //! including `u64::MAX` and every split edge — and the map version must
    //! strictly increase with each split.

    use proptest::prelude::*;

    use super::*;

    fn partition(id: u64, range: HashRange) -> PartitionConfig {
        PartitionConfig {
            master_id: MasterId(id),
            master: ServerId(id),
            backups: Vec::new(),
            witnesses: Vec::new(),
            witness_list_version: WitnessListVersion(1),
            epoch: Epoch(1),
            range,
        }
    }

    /// Applies one coordinator-style split: partition `idx`'s range is cut
    /// at a point derived from `frac`, the new upper half is appended, and
    /// the version bumps. Skips (returning false) when the chosen range is
    /// too narrow — exactly what the autoscaler does.
    fn apply_split(cfg: &mut ClusterConfig, idx: usize, frac: u64) -> bool {
        let range = cfg.partitions[idx % cfg.partitions.len()].range;
        let span = range.end.saturating_sub(range.start);
        if span < 2 {
            return false;
        }
        // Map frac into (start, end) exclusive — always a legal split point.
        let mid = range.start + 1 + frac % (span - 1);
        let (lo, hi) = range.split_at(mid);
        let next_id = cfg.partitions.iter().map(|p| p.master_id.0).max().unwrap_or(0) + 1;
        let i = idx % cfg.partitions.len();
        cfg.partitions[i].range = lo;
        cfg.partitions.push(partition(next_id, hi));
        cfg.version += 1;
        true
    }

    proptest! {
        #[test]
        fn random_split_sequences_keep_single_ownership(
            splits in proptest::collection::vec((any::<usize>(), any::<u64>()), 0..12),
            probes in proptest::collection::vec(any::<u64>(), 0..32),
        ) {
            let mut cfg = ClusterConfig {
                partitions: vec![partition(1, HashRange::FULL)],
                version: 1,
            };
            let mut last_version = cfg.version;
            for (idx, frac) in splits {
                if apply_split(&mut cfg, idx, frac) {
                    prop_assert!(cfg.version > last_version, "map version must strictly increase");
                    last_version = cfg.version;
                }
            }
            // Probe set: fuzz probes plus every boundary the splits created
            // (each range edge and its neighbours) plus the extremes.
            let mut hashes: Vec<u64> = probes;
            hashes.extend([0, 1, u64::MAX - 1, u64::MAX]);
            for p in &cfg.partitions {
                for edge in [p.range.start, p.range.end] {
                    hashes.extend([edge.saturating_sub(1), edge, edge.saturating_add(1)]);
                }
            }
            for h in hashes {
                let owners = cfg
                    .partitions
                    .iter()
                    .filter(|p| p.range.contains(KeyHash(h)))
                    .count();
                prop_assert_eq!(owners, 1, "hash {} owned {}x after splits", h, owners);
                prop_assert!(cfg.partition_for(KeyHash(h)).is_some());
            }
        }
    }
}
