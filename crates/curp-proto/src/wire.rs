//! A minimal binary codec used for every CURP message.
//!
//! Layout rules:
//!
//! * integers are little-endian, fixed width;
//! * byte strings and vectors are prefixed with a `u32` length;
//! * enum variants are tagged with a single `u8`;
//! * `Option<T>` is a `u8` presence flag followed by the value.
//!
//! Decoding is non-panicking: truncated or malformed input yields a
//! [`DecodeError`]. All container lengths are validated against the remaining
//! buffer before allocation, so a hostile length prefix cannot trigger an
//! out-of-memory.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Error returned when decoding malformed or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value was fully decoded.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// An enum tag byte did not match any known variant.
    InvalidTag {
        /// Name of the type being decoded.
        ty: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length prefix exceeded the remaining buffer.
    LengthOverrun {
        /// The declared length.
        declared: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected eof: needed {needed} bytes, {remaining} remaining")
            }
            DecodeError::InvalidTag { ty, tag } => write!(f, "invalid tag {tag} for {ty}"),
            DecodeError::LengthOverrun { declared, remaining } => {
                write!(f, "length prefix {declared} exceeds remaining {remaining} bytes")
            }
            DecodeError::InvalidBool(b) => write!(f, "invalid boolean byte {b}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Types that can be serialized into the CURP wire format.
pub trait Encode {
    /// Appends the encoded representation of `self` to `buf`.
    fn encode(&self, buf: &mut impl BufMut);

    /// Returns the exact number of bytes [`encode`](Encode::encode) will write.
    ///
    /// Used to pre-size buffers and to compute frame headers without a
    /// second serialization pass.
    fn encoded_len(&self) -> usize;

    /// Encodes `self` into a freshly allocated [`Bytes`].
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf.freeze()
    }
}

/// Types that can be deserialized from the CURP wire format.
pub trait Decode: Sized {
    /// Decodes a value from the front of `buf`, consuming exactly the bytes
    /// that [`Encode::encode`] produced.
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError>;

    /// Decodes a value from a byte slice, requiring that the slice is fully
    /// consumed. Every embedded `Bytes` field is *copied* out of the slice;
    /// prefer [`from_bytes_shared`](Decode::from_bytes_shared) when the
    /// source is already a [`Bytes`].
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut buf = bytes;
        let v = Self::decode(&mut buf)?;
        if buf.has_remaining() {
            return Err(DecodeError::LengthOverrun {
                declared: bytes.len(),
                remaining: buf.remaining(),
            });
        }
        Ok(v)
    }

    /// Decodes a value from an owned [`Bytes`] buffer, requiring that the
    /// buffer is fully consumed.
    ///
    /// Zero-copy: every embedded `Bytes` field (keys, values, payloads,
    /// snapshots) becomes an O(1) slice of the source buffer instead of a
    /// fresh allocation, because `Bytes::copy_to_bytes` is a window split.
    /// This is the decode path the transports use — a received frame is
    /// already a `Bytes`, so a decoded request borrows the frame's
    /// allocation all the way into the store.
    fn from_bytes_shared(mut bytes: Bytes) -> Result<Self, DecodeError> {
        let total = bytes.len();
        let v = Self::decode(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(DecodeError::LengthOverrun { declared: total, remaining: bytes.len() });
        }
        Ok(v)
    }
}

/// Checks that at least `n` bytes remain in `buf`.
pub fn need(buf: &impl Buf, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::UnexpectedEof { needed: n, remaining: buf.remaining() })
    } else {
        Ok(())
    }
}

macro_rules! impl_wire_int {
    ($t:ty, $put:ident, $get:ident, $len:expr) => {
        impl Encode for $t {
            fn encode(&self, buf: &mut impl BufMut) {
                buf.$put(*self);
            }
            fn encoded_len(&self) -> usize {
                $len
            }
        }
        impl Decode for $t {
            fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
                need(buf, $len)?;
                Ok(buf.$get())
            }
        }
    };
}

impl_wire_int!(u8, put_u8, get_u8, 1);
impl_wire_int!(u16, put_u16_le, get_u16_le, 2);
impl_wire_int!(u32, put_u32_le, get_u32_le, 4);
impl_wire_int!(u64, put_u64_le, get_u64_le, 8);
impl_wire_int!(i64, put_i64_le, get_i64_le, 8);

impl Encode for bool {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(*self as u8);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::InvalidBool(b)),
        }
    }
}

impl Encode for Bytes {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Decode for Bytes {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let len = u32::decode(buf)? as usize;
        if buf.remaining() < len {
            return Err(DecodeError::LengthOverrun { declared: len, remaining: buf.remaining() });
        }
        Ok(buf.copy_to_bytes(len))
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Decode for Vec<u8> {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let b = Bytes::decode(buf)?;
        Ok(b.to_vec())
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Decode for String {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        let b = Bytes::decode(buf)?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError::InvalidTag { ty: "String", tag: 0 })
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, |v| v.encoded_len())
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            tag => Err(DecodeError::InvalidTag { ty: "Option", tag }),
        }
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, buf: &mut impl BufMut) {
        (**self).encode(buf)
    }
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

// Note: there is deliberately no generic `impl Encode for Vec<T>` — it would
// conflict with the `Vec<u8>` impl above (no specialization on stable Rust).
// Sequences of messages use the `encode_seq`/`decode_seq` helpers instead.

/// Encodes a slice of values with a `u32` count prefix.
pub fn encode_seq<T: Encode>(items: &[T], buf: &mut impl BufMut) {
    buf.put_u32_le(items.len() as u32);
    for it in items {
        it.encode(buf);
    }
}

/// Returns the encoded length of a sequence written by [`encode_seq`].
pub fn seq_encoded_len<T: Encode>(items: &[T]) -> usize {
    4 + items.iter().map(|i| i.encoded_len()).sum::<usize>()
}

/// Decodes a sequence written by [`encode_seq`].
pub fn decode_seq<T: Decode>(buf: &mut impl Buf) -> Result<Vec<T>, DecodeError> {
    let n = u32::decode(buf)? as usize;
    // Guard against hostile counts: each element needs at least one byte.
    if buf.remaining() < n {
        return Err(DecodeError::LengthOverrun { declared: n, remaining: buf.remaining() });
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(T::decode(buf)?);
    }
    Ok(out)
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

/// Test helper: asserts that a value round-trips through the codec and that
/// `encoded_len` matches the bytes actually produced.
pub fn roundtrip<T: Encode + Decode + PartialEq + fmt::Debug>(v: &T) {
    let bytes = v.to_bytes();
    assert_eq!(bytes.len(), v.encoded_len(), "encoded_len mismatch for {v:?}");
    let back = T::from_bytes(&bytes).expect("decode failed");
    assert_eq!(&back, v, "roundtrip mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        roundtrip(&0u8);
        roundtrip(&u8::MAX);
        roundtrip(&0xbeefu16);
        roundtrip(&0xdead_beefu32);
        roundtrip(&u64::MAX);
        roundtrip(&(-42i64));
        roundtrip(&true);
        roundtrip(&false);
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(&Bytes::from_static(b"hello"));
        roundtrip(&Bytes::new());
        roundtrip(&b"world".to_vec());
        roundtrip(&String::from("key-42"));
        roundtrip(&Some(7u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&(3u32, Bytes::from_static(b"v")));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = 0xdead_beef_u64.to_bytes();
        for cut in 0..bytes.len() {
            let err = u64::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, DecodeError::UnexpectedEof { .. }), "cut={cut}: {err}");
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // Declares 4 GiB of payload but provides none.
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        let err = Bytes::from_bytes(&buf).unwrap_err();
        assert!(matches!(err, DecodeError::LengthOverrun { .. }), "{err}");
    }

    #[test]
    fn hostile_seq_count_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        let mut slice: &[u8] = &buf;
        let err = decode_seq::<u64>(&mut slice).unwrap_err();
        assert!(matches!(err, DecodeError::LengthOverrun { .. }), "{err}");
    }

    #[test]
    fn trailing_bytes_are_rejected_by_from_bytes() {
        let mut bytes = 1u64.to_bytes().to_vec();
        bytes.push(0);
        assert!(u64::from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_is_rejected() {
        assert_eq!(bool::from_bytes(&[2]), Err(DecodeError::InvalidBool(2)));
    }

    #[test]
    fn option_tag_validation() {
        assert!(matches!(
            Option::<u64>::from_bytes(&[9]),
            Err(DecodeError::InvalidTag { ty: "Option", .. })
        ));
    }

    #[test]
    fn from_bytes_shared_is_zero_copy() {
        // A (length, payload, trailer) sandwich: the decoded payload must be
        // a window into the source buffer, not a fresh allocation.
        let payload = Bytes::from(vec![7u8; 64]);
        let src = (payload.clone(), 9u64).to_bytes();
        let (back, tail) = <(Bytes, u64)>::from_bytes_shared(src.clone()).unwrap();
        assert_eq!((&back, tail), (&payload, 9));
        let src_range = src.as_ptr() as usize..src.as_ptr() as usize + src.len();
        assert!(src_range.contains(&(back.as_ptr() as usize)), "payload was copied, not sliced");
    }

    #[test]
    fn from_bytes_shared_rejects_trailing_bytes() {
        let mut raw = 1u64.to_bytes().to_vec();
        raw.push(0);
        assert!(u64::from_bytes_shared(Bytes::from(raw)).is_err());
    }

    #[test]
    fn reference_encode_forwards() {
        let v = Bytes::from_static(b"ref");
        let r: &Bytes = &v;
        assert_eq!(Encode::encoded_len(&r), v.encoded_len());
        assert_eq!(Encode::to_bytes(&r), v.to_bytes());
    }

    #[test]
    fn seq_roundtrip() {
        let items = vec![1u64, 2, 3, u64::MAX];
        let mut buf = BytesMut::new();
        encode_seq(&items, &mut buf);
        assert_eq!(buf.len(), seq_encoded_len(&items));
        let mut slice: &[u8] = &buf;
        let back = decode_seq::<u64>(&mut slice).unwrap();
        assert_eq!(back, items);
        assert!(slice.is_empty());
    }
}
