//! Core identifier types shared across the CURP protocol.

use std::fmt;

use bytes::{Buf, BufMut};

use crate::wire::{Decode, DecodeError, Encode};

/// A 64-bit hash of an object's primary key.
///
/// CURP witnesses and masters decide commutativity by comparing key hashes
/// (§4.2 of the paper: "for performance, we compare 64-bit hashes of primary
/// keys instead of full keys"). Two operations are treated as conflicting iff
/// they touch an overlapping set of key hashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct KeyHash(pub u64);

impl KeyHash {
    /// Hashes a primary key into a [`KeyHash`] using FxHash-style mixing.
    ///
    /// The exact function does not matter for correctness (only that it is
    /// deterministic and well-distributed); it matters that *all* parties —
    /// clients, masters and witnesses — use the same function.
    pub fn of(key: &[u8]) -> Self {
        // FNV-1a with a 64-bit finalizer (xor-shift mix from SplitMix64).
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        // Finalize to break up FNV's weak avalanche in low bits.
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        KeyHash(h)
    }

    /// Maps this hash onto one of `num_shards` execution-engine shards.
    ///
    /// Deliberately derived from the *high* bits: the witness cache picks its
    /// set from the low bits (`hash % num_sets`), so sharding must not reuse
    /// them — otherwise every key of one shard would collapse onto a fraction
    /// of the cache sets. All parties that shard by key (master store,
    /// witness cache) route through this one function.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero.
    pub fn shard(self, num_shards: usize) -> usize {
        assert!(num_shards > 0, "num_shards must be positive");
        ((self.0 >> 32) as usize) % num_shards
    }
}

impl fmt::Display for KeyHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Uniquely identifies a client in the cluster.
///
/// Client ids are issued by the cluster coordinator when the client acquires
/// its RIFL lease; they are embedded in every [`RpcId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u64);

/// Uniquely identifies an RPC for exactly-once (RIFL) semantics.
///
/// The pair `(client, seq)` is unique across the lifetime of the cluster:
/// `client` is the RIFL lease id and `seq` increases monotonically within a
/// client. Witness garbage collection and duplicate filtering are both keyed
/// by `RpcId` (§3.5, §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RpcId {
    /// The issuing client's lease id.
    pub client: ClientId,
    /// Client-local monotonically increasing sequence number (starts at 1).
    pub seq: u64,
}

impl RpcId {
    /// Convenience constructor.
    pub fn new(client: ClientId, seq: u64) -> Self {
        RpcId { client, seq }
    }
}

impl fmt::Display for RpcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.client.0, self.seq)
    }
}

/// Identifies a master (primary) instance.
///
/// A master id names a *role incarnation*, not a machine: when a crashed
/// master's partition is recovered onto a new server, the new server gets a
/// fresh `MasterId`. Witnesses are started for a specific master id and
/// reject records addressed to any other (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MasterId(pub u64);

/// Identifies a physical server process (master, backup, witness or
/// coordinator endpoint) in the transport layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u64);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Monotonically increasing version of a master's witness list (§3.6).
///
/// Incremented by the coordinator every time the set of witnesses assigned to
/// a master changes. Clients attach the version they used to every update so
/// the master can detect records sent to a decommissioned witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct WitnessListVersion(pub u64);

impl WitnessListVersion {
    /// Returns the next version.
    pub fn next(self) -> Self {
        WitnessListVersion(self.0 + 1)
    }
}

/// Epoch number used to fence zombie masters (§4.7).
///
/// Backups remember the highest epoch they have seen for a partition and
/// reject sync RPCs from older epochs, which neutralizes a master that was
/// declared dead but is still running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Epoch(pub u64);

impl Epoch {
    /// Returns the next epoch.
    pub fn next(self) -> Self {
        Epoch(self.0 + 1)
    }
}

macro_rules! impl_wire_newtype_u64 {
    ($t:ty, |$v:ident| $ctor:expr) => {
        impl Encode for $t {
            fn encode(&self, buf: &mut impl BufMut) {
                buf.put_u64_le(self.0);
            }
            fn encoded_len(&self) -> usize {
                8
            }
        }
        impl Decode for $t {
            fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
                let $v = u64::decode(buf)?;
                Ok($ctor)
            }
        }
    };
}

impl_wire_newtype_u64!(KeyHash, |v| KeyHash(v));
impl_wire_newtype_u64!(ClientId, |v| ClientId(v));
impl_wire_newtype_u64!(MasterId, |v| MasterId(v));
impl_wire_newtype_u64!(ServerId, |v| ServerId(v));
impl_wire_newtype_u64!(WitnessListVersion, |v| WitnessListVersion(v));
impl_wire_newtype_u64!(Epoch, |v| Epoch(v));

impl Encode for RpcId {
    fn encode(&self, buf: &mut impl BufMut) {
        self.client.encode(buf);
        buf.put_u64_le(self.seq);
    }
    fn encoded_len(&self) -> usize {
        16
    }
}

impl Decode for RpcId {
    fn decode(buf: &mut impl Buf) -> Result<Self, DecodeError> {
        Ok(RpcId { client: ClientId::decode(buf)?, seq: u64::decode(buf)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn key_hash_is_deterministic() {
        assert_eq!(KeyHash::of(b"alpha"), KeyHash::of(b"alpha"));
        assert_ne!(KeyHash::of(b"alpha"), KeyHash::of(b"beta"));
    }

    #[test]
    fn key_hash_distributes_sequential_keys() {
        // Sequential keys (the common YCSB pattern "user0", "user1", ...)
        // must land in different cache sets; check low bits vary.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..1024u32 {
            let h = KeyHash::of(format!("user{i}").as_bytes());
            low_bits.insert(h.0 & 0xff);
        }
        // With 1024 samples over 256 buckets we expect nearly all buckets hit.
        assert!(low_bits.len() > 240, "only {} distinct buckets", low_bits.len());
    }

    #[test]
    fn key_hash_empty_key() {
        // The empty key is a valid key and must hash consistently.
        assert_eq!(KeyHash::of(b""), KeyHash::of(b""));
    }

    #[test]
    fn newtype_roundtrips() {
        roundtrip(&KeyHash(42));
        roundtrip(&ClientId(7));
        roundtrip(&MasterId(u64::MAX));
        roundtrip(&ServerId(0));
        roundtrip(&WitnessListVersion(3));
        roundtrip(&Epoch(9));
        roundtrip(&RpcId::new(ClientId(1), 99));
    }

    #[test]
    fn versions_and_epochs_increment() {
        assert_eq!(WitnessListVersion(1).next(), WitnessListVersion(2));
        assert_eq!(Epoch(0).next(), Epoch(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(RpcId::new(ClientId(3), 14).to_string(), "3:14");
        assert_eq!(ServerId(5).to_string(), "s5");
        assert_eq!(format!("{}", KeyHash(0xabc)).len(), 16);
    }
}
