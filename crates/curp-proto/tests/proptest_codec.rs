//! Property-based tests: every message the protocol can construct must
//! round-trip through the wire codec, and the decoder must never panic on
//! arbitrary input.

use bytes::Bytes;
use curp_proto::cluster::{ClusterConfig, HashRange, PartitionConfig};
use curp_proto::message::{LogEntry, RecordedRequest, Request, Response, RpcEnvelope};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{ClientId, Epoch, KeyHash, MasterId, RpcId, ServerId, WitnessListVersion};
use curp_proto::wire::{Decode, Encode};
use proptest::prelude::*;

fn arb_bytes() -> impl Strategy<Value = Bytes> {
    prop::collection::vec(any::<u8>(), 0..64).prop_map(Bytes::from)
}

fn arb_rpc_id() -> impl Strategy<Value = RpcId> {
    (any::<u64>(), any::<u64>()).prop_map(|(c, s)| RpcId::new(ClientId(c), s))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_bytes().prop_map(|key| Op::Get { key }),
        (arb_bytes(), arb_bytes()).prop_map(|(key, value)| Op::Put { key, value }),
        arb_bytes().prop_map(|key| Op::Delete { key }),
        (arb_bytes(), any::<u64>(), arb_bytes()).prop_map(|(key, expected_version, value)| {
            Op::ConditionalPut { key, expected_version, value }
        }),
        prop::collection::vec((arb_bytes(), arb_bytes()), 0..8)
            .prop_map(|kvs| Op::MultiPut { kvs }),
        (arb_bytes(), any::<i64>()).prop_map(|(key, delta)| Op::Incr { key, delta }),
        (arb_bytes(), arb_bytes(), arb_bytes()).prop_map(|(key, field, value)| Op::HSet {
            key,
            field,
            value
        }),
        (arb_bytes(), arb_bytes()).prop_map(|(key, field)| Op::HGet { key, field }),
        (arb_bytes(), arb_bytes()).prop_map(|(key, value)| Op::ListPush { key, value }),
        (arb_bytes(), arb_bytes()).prop_map(|(key, member)| Op::SetAdd { key, member }),
    ]
}

fn arb_result() -> impl Strategy<Value = OpResult> {
    prop_oneof![
        any::<u64>().prop_map(|version| OpResult::Written { version }),
        prop::option::of(arb_bytes()).prop_map(OpResult::Value),
        any::<i64>().prop_map(OpResult::Counter),
        any::<u64>().prop_map(|actual_version| OpResult::ConditionFailed { actual_version }),
        Just(OpResult::WrongType),
    ]
}

fn arb_recorded() -> impl Strategy<Value = RecordedRequest> {
    (any::<u64>(), arb_rpc_id(), prop::collection::vec(any::<u64>(), 0..6), arb_op()).prop_map(
        |(m, rpc_id, hashes, op)| RecordedRequest {
            master_id: MasterId(m),
            rpc_id,
            key_hashes: hashes.into_iter().map(KeyHash).collect(),
            op,
        },
    )
}

fn arb_log_entry() -> impl Strategy<Value = LogEntry> {
    (any::<u64>(), prop::option::of(arb_rpc_id()), arb_op(), arb_result())
        .prop_map(|(seq, rpc_id, op, result)| LogEntry { seq, rpc_id, op, result })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (arb_rpc_id(), any::<u64>(), any::<u64>(), arb_op()).prop_map(|(r, f, w, op)| {
            Request::ClientUpdate {
                rpc_id: r,
                first_incomplete: f,
                witness_list_version: WitnessListVersion(w),
                op,
            }
        }),
        arb_op().prop_map(|op| Request::ClientRead { op }),
        Just(Request::Sync { master_id: MasterId(1) }),
        arb_recorded().prop_map(|request| Request::WitnessRecord { request }),
        (any::<u64>(), prop::collection::vec(any::<u64>(), 0..6)).prop_map(|(m, hs)| {
            Request::WitnessCommuteCheck {
                master_id: MasterId(m),
                key_hashes: hs.into_iter().map(KeyHash).collect(),
            }
        }),
        (any::<u64>(), prop::collection::vec((any::<u64>(), arb_rpc_id()), 0..6)).prop_map(
            |(m, es)| Request::WitnessGc {
                master_id: MasterId(m),
                entries: es.into_iter().map(|(h, r)| (KeyHash(h), r)).collect(),
            }
        ),
        any::<u64>().prop_map(|m| Request::WitnessGetRecoveryData { master_id: MasterId(m) }),
        any::<u64>().prop_map(|m| Request::WitnessStart { master_id: MasterId(m) }),
        any::<u64>().prop_map(|m| Request::WitnessEnd { master_id: MasterId(m) }),
        (any::<u64>(), any::<u64>(), prop::collection::vec(arb_log_entry(), 0..4)).prop_map(
            |(m, e, entries)| Request::BackupSync {
                master_id: MasterId(m),
                epoch: Epoch(e),
                entries
            }
        ),
        any::<u64>().prop_map(|m| Request::BackupFetch { master_id: MasterId(m) }),
        (any::<u64>(), any::<u64>(), any::<u64>(), arb_bytes()).prop_map(|(m, e, n, sn)| {
            Request::BackupInstall {
                master_id: MasterId(m),
                epoch: Epoch(e),
                next_seq: n,
                snapshot: sn,
            }
        }),
        (any::<u64>(), arb_op())
            .prop_map(|(m, op)| Request::BackupRead { master_id: MasterId(m), op }),
        Just(Request::GetConfig),
        Just(Request::AcquireLease),
        any::<u64>().prop_map(|c| Request::RenewLease { client: ClientId(c) }),
    ]
}

fn arb_partition() -> impl Strategy<Value = PartitionConfig> {
    (
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(any::<u64>(), 0..4),
        prop::collection::vec(any::<u64>(), 0..4),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(m, ms, bs, ws, v, e, s, en)| PartitionConfig {
            master_id: MasterId(m),
            master: ServerId(ms),
            backups: bs.into_iter().map(ServerId).collect(),
            witnesses: ws.into_iter().map(ServerId).collect(),
            witness_list_version: WitnessListVersion(v),
            epoch: Epoch(e),
            range: HashRange { start: s, end: en },
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (arb_result(), any::<bool>())
            .prop_map(|(result, synced)| Response::Update { result, synced }),
        arb_result().prop_map(|result| Response::Read { result }),
        Just(Response::SyncDone),
        any::<u64>().prop_map(|v| Response::StaleWitnessList { current: WitnessListVersion(v) }),
        Just(Response::NotOwner),
        Just(Response::RecordAccepted),
        Just(Response::RecordRejected),
        any::<bool>().prop_map(|commutative| Response::CommuteOk { commutative }),
        prop::collection::vec(arb_recorded(), 0..4).prop_map(|stale| Response::GcDone { stale }),
        prop::collection::vec(arb_recorded(), 0..4)
            .prop_map(|requests| Response::RecoveryData { requests }),
        (any::<bool>(), any::<u64>())
            .prop_map(|(accepted, next_seq)| Response::BackupSynced { accepted, next_seq }),
        (any::<u64>(), arb_bytes())
            .prop_map(|(next_seq, snapshot)| Response::BackupData { next_seq, snapshot }),
        Just(Response::BackupInstalled),
        (prop::collection::vec(arb_partition(), 0..3), any::<u64>()).prop_map(|(p, v)| {
            Response::Config { config: ClusterConfig { partitions: p, version: v } }
        }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(c, t)| Response::Lease { client: ClientId(c), ttl_ms: t }),
        "[a-z ]{0,32}".prop_map(|reason| Response::Retry { reason }),
    ]
}

proptest! {
    #[test]
    fn op_roundtrip(op in arb_op()) {
        let bytes = op.to_bytes();
        prop_assert_eq!(bytes.len(), op.encoded_len());
        prop_assert_eq!(Op::from_bytes(&bytes).unwrap(), op);
    }

    #[test]
    fn request_roundtrip(req in arb_request()) {
        let bytes = req.to_bytes();
        prop_assert_eq!(bytes.len(), req.encoded_len());
        prop_assert_eq!(Request::from_bytes(&bytes).unwrap(), req);
    }

    #[test]
    fn response_roundtrip(rsp in arb_response()) {
        let bytes = rsp.to_bytes();
        prop_assert_eq!(bytes.len(), rsp.encoded_len());
        prop_assert_eq!(Response::from_bytes(&bytes).unwrap(), rsp);
    }

    #[test]
    fn envelope_roundtrip(corr in any::<u64>(), is_rsp in any::<bool>(), payload in arb_bytes()) {
        let env = RpcEnvelope { corr_id: corr, is_response: is_rsp, payload };
        let bytes = env.to_bytes();
        prop_assert_eq!(bytes.len(), env.encoded_len());
        prop_assert_eq!(RpcEnvelope::from_bytes(&bytes).unwrap(), env);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine as long as we do not panic or loop.
        let _ = Request::from_bytes(&bytes);
        let _ = Response::from_bytes(&bytes);
        let _ = Op::from_bytes(&bytes);
        let _ = RpcEnvelope::from_bytes(&bytes);
    }

    #[test]
    fn commutativity_is_symmetric(a in arb_op(), b in arb_op()) {
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
    }

    #[test]
    fn disjoint_keys_commute(k1 in "[a-m]{1,8}", k2 in "[n-z]{1,8}", v in arb_bytes()) {
        let a = Op::Put { key: Bytes::from(k1), value: v.clone() };
        let b = Op::Put { key: Bytes::from(k2), value: v };
        prop_assert!(a.commutes_with(&b));
    }
}
