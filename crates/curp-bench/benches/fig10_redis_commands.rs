//! Figure 10: median latency of SET / HMSET / INCR, with and without CURP.
//!
//! Paper setup: random 30 B keys over 2 M unique keys; SET writes 100 B
//! values; HMSET sets one member with a 100 B value; INCR bumps a counter.
//! Reported shape: small overhead with 1 witness for all three commands;
//! ~+10 µs with 2 witnesses (tail effects).

use curp_bench::{figure_header, print_scalar};
use curp_sim::redis::RedisCommand;
use curp_sim::{run_sim, RedisMode, RedisParams, RedisSim};

const SAMPLES: usize = 3_000;
const KEYS: u64 = 2_000_000;

fn median(mode: RedisMode, cmd: RedisCommand) -> f64 {
    run_sim(async move {
        let sim = RedisSim::build(mode, RedisParams::default()).await;
        let mut rec = sim.measure_command_latency(cmd, SAMPLES, KEYS, 30, 100).await;
        rec.median_us()
    })
}

fn main() {
    curp_bench::ignore_bench_args();
    figure_header(
        "Figure 10",
        "median latency (us) of Redis commands x {non-durable, CURP 1w, CURP 2w}",
        &[
            "all commands: small overhead with 1 witness",
            "~+10us with 2 witnesses due to TCP tail latency",
        ],
    );
    let modes: Vec<(&str, RedisMode)> = vec![
        ("nondurable", RedisMode::NonDurable),
        ("curp_1w", RedisMode::Curp { witnesses: 1 }),
        ("curp_2w", RedisMode::Curp { witnesses: 2 }),
    ];
    for (cmd_name, cmd) in
        [("SET", RedisCommand::Set), ("HMSET", RedisCommand::Hmset), ("INCR", RedisCommand::Incr)]
    {
        for (mode_name, mode) in &modes {
            print_scalar(&format!("{cmd_name}_{mode_name}"), median(*mode, cmd), "us");
        }
    }
}
