//! Figure 8: CDF of 100 B Redis SET latency.
//!
//! Paper setup: one client, sequential SETs, NVMe fsync ≈ 50–100 µs, kernel
//! TCP. Reported shape: CURP with 1 witness costs ~3 µs (12 %) over the
//! non-durable cache; 2 witnesses hurt the tail (waiting on three
//! heavy-tailed TCP RPCs); fsync-always durable Redis is ~100 µs slower.

use curp_bench::{figure_header, print_scalar, print_series};
use curp_sim::{run_sim, RedisMode, RedisParams, RedisSim};

const SAMPLES: usize = 6_000;
const KEYS: u64 = 1_000_000;

fn measure(mode: RedisMode) -> curp_workload::LatencyRecorder {
    run_sim(async move {
        let sim = RedisSim::build(mode, RedisParams::default()).await;
        sim.measure_set_latency(SAMPLES, KEYS, 30, 100).await
    })
}

fn main() {
    curp_bench::ignore_bench_args();
    figure_header(
        "Figure 8",
        "CDF of 100B Redis SET latency (single client)",
        &[
            "CURP 1-witness median ~+3us (~12%) over non-durable Redis",
            "2 witnesses raise latency further via TCP tail effects",
            "durable (fsync-always) Redis pays the full fsync on every SET",
        ],
    );
    let configs: Vec<(&str, RedisMode)> = vec![
        ("nondurable", RedisMode::NonDurable),
        ("curp_1w", RedisMode::Curp { witnesses: 1 }),
        ("curp_2w", RedisMode::Curp { witnesses: 2 }),
        ("durable", RedisMode::Durable),
    ];
    for (name, mode) in configs {
        let mut rec = measure(mode);
        print_scalar(&format!("{name}_median_us"), rec.median_us(), "us");
        print_series(name, &rec.cdf_us(40));
    }
}
