//! Criterion micro-benchmarks of the protocol's fast-path components:
//! witness record/gc, commutativity checks, store execution, and the wire
//! codec. These are real wall-clock numbers (no simulation).
//!
//! Several benches pin the allocation-free fast path (see EXPERIMENTS.md,
//! "Perf trajectory"): the `store_*_1k_*` collection benches assert-by-
//! trajectory that typed mutations stay O(1) amortized (the
//! `*_clone_baseline` twin measures the clone-per-mutation alternative),
//! `witness_record_reject_alloc_free` pins the no-allocation reject path,
//! and `codec_decode_update` measures the zero-copy (`from_bytes_shared`)
//! decode the transports use (`codec_decode_update_copy` keeps the copying
//! slice path for comparison).
//!
//! Run `--smoke` for a seconds-long CI pass, `--json=BENCH_micro.json` to
//! emit the machine-readable trajectory file.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use curp_core::client::PipelineConfig;
use curp_proto::cluster::{HashRange, LoadStats, LOAD_HISTOGRAM_BUCKETS};
use curp_proto::message::{LogEntry, RecordedRequest, Request};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{ClientId, KeyHash, MasterId, RpcId, WitnessListVersion};
use curp_proto::wire::{Decode, Encode};
use curp_sim::{run_sim, to_virtual_ns, Mode, RamcloudParams, SimCluster};
use curp_storage::{Aof, FsyncPolicy, ShardedStore, StateStore, Store, TierConfig, TieredStore};
use curp_witness::{CacheConfig, WitnessCache, WitnessService};

fn request(seq: u64, key: u64) -> RecordedRequest {
    let op = Op::Put {
        key: Bytes::from(key.to_le_bytes().to_vec()),
        value: Bytes::from_static(b"0123456789012345678901234567890123456789"),
    };
    RecordedRequest {
        master_id: MasterId(1),
        rpc_id: RpcId::new(ClientId(1), seq),
        key_hashes: op.key_hashes(),
        op,
    }
}

fn bench_witness(c: &mut Criterion) {
    c.bench_function("witness_record_gc_cycle", |b| {
        let mut cache = WitnessCache::new(CacheConfig::default());
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let req = request(seq, seq);
            let pair = (req.key_hashes[0], req.rpc_id);
            cache.record(req);
            cache.gc(&[pair]);
        });
    });
    c.bench_function("witness_record_reject_conflict", |b| {
        let mut cache = WitnessCache::new(CacheConfig::default());
        cache.record(request(1, 42));
        let mut seq = 1u64;
        b.iter(|| {
            seq += 1;
            cache.record(request(seq, 42)) // same key: rejected
        });
    });
    c.bench_function("witness_commute_probe", |b| {
        let mut cache = WitnessCache::new(CacheConfig::default());
        for i in 0..1000 {
            cache.record(request(i + 1, i));
        }
        let probe = [KeyHash::of(b"some-other-key")];
        b.iter(|| cache.commutes_with_read(&probe));
    });
    c.bench_function("witness_record_reject_alloc_free", |b| {
        // Pins the validate-before-allocate reject path: a conflicting
        // record must be turned away without touching the heap. The
        // recorded request is cloned per iteration, which is allocation-free
        // itself (`Bytes` is refcounted, the footprint is inline).
        let mut cache = WitnessCache::new(CacheConfig::default());
        cache.record(request(1, 7));
        let conflicting = request(2, 7);
        b.iter(|| cache.record(conflicting.clone()));
    });
}

fn bench_store(c: &mut Criterion) {
    c.bench_function("store_put_100b", |b| {
        let mut store = Store::new();
        let value = Bytes::from(vec![0u8; 100]);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store.execute(&Op::Put {
                key: Bytes::from((i % 100_000).to_le_bytes().to_vec()),
                value: value.clone(),
            })
        });
    });
    // Typed-collection mutations on a 1 000-element object: the in-place
    // execute path must stay O(1) amortized regardless of collection size.
    // The `_clone_baseline` twin prices the clone-per-mutation alternative
    // (what `execute` used to do); the acceptance bar is a >= 10x gap.
    let fields: Vec<Bytes> = (0..1000u32).map(|i| Bytes::from(format!("field-{i}"))).collect();
    let value = Bytes::from(vec![0u8; 32]);
    c.bench_function("store_hset_1k_fields", |b| {
        let mut store = Store::new();
        let key = Bytes::from_static(b"hash-object");
        for f in &fields {
            store.execute(&Op::HSet { key: key.clone(), field: f.clone(), value: value.clone() });
        }
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            store.execute(&Op::HSet {
                key: key.clone(),
                field: fields[i % fields.len()].clone(),
                value: value.clone(),
            })
        });
    });
    c.bench_function("store_hset_1k_fields_clone_baseline", |b| {
        let mut baseline: HashMap<Bytes, Bytes> =
            fields.iter().map(|f| (f.clone(), value.clone())).collect();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            // Clone-modify-replace, as the pre-refactor execute did.
            let mut h = baseline.clone();
            h.insert(fields[i % fields.len()].clone(), value.clone());
            baseline = h;
            baseline.len()
        });
    });
    c.bench_function("store_list_push_1k", |b| {
        // The list is reset to 1 000 elements every 1 000 pushes so the
        // measured size stays bounded (1k–2k) no matter how many iterations
        // the harness runs; the amortized reset cost is a few ns/iter.
        let mut base = Store::new();
        let key = Bytes::from_static(b"list-object");
        for _ in 0..1000 {
            base.execute(&Op::ListPush { key: key.clone(), value: value.clone() });
        }
        let mut store = base.clone();
        let mut pushes = 0u32;
        b.iter(|| {
            if pushes == 1000 {
                store = base.clone();
                pushes = 0;
            }
            pushes += 1;
            store.execute(&Op::ListPush { key: key.clone(), value: value.clone() })
        });
    });
    c.bench_function("store_set_add_1k_members", |b| {
        let mut store = Store::new();
        let key = Bytes::from_static(b"set-object");
        for f in &fields {
            store.execute(&Op::SetAdd { key: key.clone(), member: f.clone() });
        }
        // Re-adding an existing member keeps the set at 1 000 members, so
        // every iteration measures the same-size O(1) path.
        let member = fields[500].clone();
        b.iter(|| store.execute(&Op::SetAdd { key: key.clone(), member: member.clone() }));
    });
    c.bench_function("store_unsynced_check", |b| {
        let mut store = Store::new();
        for i in 0..100_000u64 {
            store.execute(&Op::Put {
                key: Bytes::from(i.to_le_bytes().to_vec()),
                value: Bytes::from_static(b"v"),
            });
        }
        store.mark_synced(store.log_head());
        let op = Op::Put { key: Bytes::from(7u64.to_le_bytes().to_vec()), value: Bytes::new() };
        b.iter(|| store.touches_unsynced(&op));
    });
}

// ---- lock-granularity contention benches -----------------------------------
//
// The sharding claim — commuting (key-disjoint) operations proceed without
// contending on one global lock — is a *parallelism* property. This CI
// container pins the whole process to a single core, where OS threads can
// never overlap and a wall-clock A/B shows ~1x regardless of locking (see
// EXPERIMENTS.md, "Lock-granularity benches"). The headline benches
// therefore measure **critical-path throughput**, the standard
// machine-independent way to quantify available parallelism:
//
//  * every operation is executed for real on the real `ShardedStore`
//    (real shard locks, real hash maps) and its cost measured in batches;
//  * a deterministic scheduler replays the 4-worker round-robin arrival
//    order, advancing each worker's clock and each shard's clock — an op
//    starts at max(worker free, shard free), i.e. ops serialize exactly
//    when they need the same shard lock;
//  * the reported ns/iter is makespan / ops: with one shard every op
//    serializes behind one clock (the old global-lock geometry); with 8
//    shards the 4 disjoint-key workers overlap almost perfectly.
//
// `store_single_lock_put_4threads` is the *same engine* configured with a
// single shard, so the comparison holds the lock implementation, data
// structure and workload constant and varies only the lock granularity.
// The `_wallclock` twin runs 4 real OS threads for thread-safety proof and
// honest hardware numbers (≈1x here; the full parallel gap on multicore).

/// One batch of puts timed per `TIME_BATCH` ops (amortizes the timer cost),
/// replayed through the worker/shard critical-path scheduler.
fn critical_path_put_ns(num_shards: usize, workers: usize, iters: u64) -> Duration {
    const TIME_BATCH: u64 = 64;
    let store: ShardedStore = ShardedStore::new(num_shards);
    let value = Bytes::from_static(b"0123456789012345678901234567890123456789");
    let mut worker_clock = vec![0u64; workers];
    let mut shard_clock = vec![0u64; num_shards];
    let mut shards_of = Vec::with_capacity(TIME_BATCH as usize);
    let mut done = 0u64;
    while done < iters {
        let batch = TIME_BATCH.min(iters - done);
        shards_of.clear();
        let t0 = Instant::now();
        for i in done..done + batch {
            // Round-robin arrival order; each worker writes its own
            // disjoint, bounded key stream (keys recycle like
            // `store_put_100b`'s so the map size stays fixed).
            let w = i % workers as u64;
            let k = ((i / workers as u64) % 25_000) * workers as u64 + w;
            let key = Bytes::from(k.to_le_bytes().to_vec());
            shards_of.push((w as usize, store.shard_of(&key)));
            store.execute(&Op::Put { key, value: value.clone() });
        }
        let per_op = t0.elapsed().as_nanos() as u64 / batch;
        // Replay the batch through the critical-path scheduler: an op
        // starts when both its worker and its shard lock are free.
        for &(w, s) in &shards_of {
            let end = worker_clock[w].max(shard_clock[s]) + per_op;
            worker_clock[w] = end;
            shard_clock[s] = end;
        }
        done += batch;
    }
    Duration::from_nanos(worker_clock.into_iter().max().unwrap_or(0))
}

/// Real OS threads hammering one shared store; returns wall time.
fn wallclock_put_ns(num_shards: usize, workers: u64, iters: u64) -> Duration {
    let store: ShardedStore = ShardedStore::new(num_shards);
    let value = Bytes::from_static(b"0123456789012345678901234567890123456789");
    let per_worker = iters / workers + 1;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (store, value) = (&store, &value);
            scope.spawn(move || {
                for i in 0..per_worker {
                    let k = (i % 25_000) * workers + w;
                    store.execute(&Op::Put {
                        key: Bytes::from(k.to_le_bytes().to_vec()),
                        value: value.clone(),
                    });
                }
            });
        }
    });
    start.elapsed()
}

fn bench_contention(c: &mut Criterion) {
    c.bench_function("store_sharded_put_4threads", |b| {
        b.iter_custom(|iters| critical_path_put_ns(8, 4, iters))
    });
    c.bench_function("store_single_lock_put_4threads", |b| {
        // Baseline: the same engine, one shard — the pre-sharding
        // global-lock geometry. Every op serializes on the single lock.
        b.iter_custom(|iters| critical_path_put_ns(1, 4, iters))
    });
    c.bench_function("store_sharded_put_4threads_wallclock", |b| {
        // Hardware-dependent: ≈1x vs a single shard on a 1-core container,
        // the real parallel speedup on multicore. Kept for thread-safety
        // proof and for runs on wider machines.
        b.iter_custom(|iters| wallclock_put_ns(8, 4, iters))
    });
    c.bench_function("witness_record_2masters_concurrent", |b| {
        // Two masters' record streams through one WitnessService from two
        // real threads: per-master instance locks mean neither stream
        // waits on the other's cache. Each record is gc'd immediately so
        // occupancy stays bounded at any iteration count.
        b.iter_custom(|iters| {
            let service = WitnessService::new(CacheConfig::default());
            assert!(service.start(MasterId(1)));
            assert!(service.start(MasterId(2)));
            let per_master = iters / 2 + 1;
            let start = Instant::now();
            std::thread::scope(|scope| {
                for m in 1..=2u64 {
                    let service = &service;
                    scope.spawn(move || {
                        for i in 0..per_master {
                            let op = Op::Put {
                                key: Bytes::from(i.to_le_bytes().to_vec()),
                                value: Bytes::from_static(b"v"),
                            };
                            let req = RecordedRequest {
                                master_id: MasterId(m),
                                rpc_id: RpcId::new(ClientId(m), i + 1),
                                key_hashes: op.key_hashes(),
                                op,
                            };
                            let pair = (req.key_hashes[0], req.rpc_id);
                            service.record(req);
                            service.gc(MasterId(m), &[pair]);
                        }
                    });
                }
            });
            start.elapsed()
        })
    });
}

// ---- durable path: the backup's per-sync-round AOF write --------------------
//
// `aof_append_batch_fsync` prices exactly what a durable backup pays per
// sync round before it may acknowledge (DESIGN.md invariant 7): one
// `append_batch` of 50 entries + one fsync (§C.2's batching — compare
// ~50x this per-entry cost for `appendfsync always`). The `_nofsync` twin
// isolates the encode+write cost so the fsync share is visible in the
// trajectory. Real wall-clock disk numbers; the bench caps the physical
// rounds per sample and extrapolates, so the file stays small (~8 KiB per
// round) at any requested iteration count.

fn aof_round_time(iters: u64, policy: FsyncPolicy) -> Duration {
    const CAP: u64 = 64;
    let rounds = iters.clamp(1, CAP);
    let path =
        std::env::temp_dir().join(format!("curp-bench-aof-{}-{policy:?}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let batch: Vec<LogEntry> = (0..50u64)
        .map(|i| LogEntry {
            seq: i,
            rpc_id: Some(RpcId::new(ClientId(1), i + 1)),
            op: Op::Put {
                key: Bytes::from(i.to_le_bytes().to_vec()),
                value: Bytes::from(vec![b'x'; 100]),
            },
            result: OpResult::Written { version: i + 1 },
        })
        .collect();
    let mut aof = Aof::open(&path, policy).expect("open bench aof");
    let t0 = Instant::now();
    for _ in 0..rounds {
        aof.append_batch(&batch).expect("append");
        aof.sync().expect("fsync");
    }
    let elapsed = t0.elapsed();
    drop(aof);
    let _ = std::fs::remove_file(&path);
    if rounds == iters {
        elapsed
    } else {
        Duration::from_nanos(
            (elapsed.as_nanos() as f64 * iters as f64 / rounds as f64).round() as u64
        )
    }
}

fn bench_aof(c: &mut Criterion) {
    c.bench_function("aof_append_batch_fsync", |b| {
        b.iter_custom(|iters| aof_round_time(iters, FsyncPolicy::Manual))
    });
    c.bench_function("aof_append_batch_nofsync", |b| {
        b.iter_custom(|iters| aof_round_time(iters, FsyncPolicy::Never))
    });
}

// ---- tiered engine: memtable-miss writes, run merges, log rewrites ----------
//
// `tiered_put_miss_memtable` prices the steady-state write path of the
// larger-than-memory engine: every put lands on a key whose state was
// evicted to a sorted run, so the lock-time promotion (run lookup +
// reinsert) runs on each op, and the periodic sync+maintain that re-evicts
// the written keys is amortized into the loop — the honest per-op cost of
// a working set that does not fit the memtable (tier fsync off; the disk
// share is priced by the fsync-bound benches below). `run_merge` and
// `aof_rewrite_compact` price the two background compaction steps a
// durable backup pays to keep its disk footprint bounded; both are
// fsync/IO-bound and gate-exempt ([`curp_bench::gate`]) like
// `aof_append_batch_fsync`.

fn tiered_put_miss_time(iters: u64) -> Duration {
    const KEYS: u64 = 1024;
    let dir = std::env::temp_dir().join(format!("curp-bench-tier-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench tier root");
    let mut cfg = TierConfig::new(&dir);
    cfg.memtable_budget = 1; // every maintain evicts all synced state
    cfg.fsync = false;
    let store: TieredStore = TieredStore::over(ShardedStore::new(4), cfg).expect("tiered store");
    let value = Bytes::from(vec![b'x'; 100]);
    let put = |i: u64| {
        let op = Op::Put { key: Bytes::from(i.to_le_bytes().to_vec()), value: value.clone() };
        let set = op.key_hashes().shard_set(store.num_shards());
        store.lock_for(&set, Some(&op)).execute(&op);
    };
    // Preload and evict: every key starts cold in a run file.
    for i in 0..KEYS {
        put(i);
    }
    store.lock_all_for(None).mark_synced(store.log_head());
    store.maintain().expect("preload flush");
    let t0 = Instant::now();
    for i in 0..iters {
        put(i % KEYS);
        if i % 256 == 255 {
            // Re-evict the freshly written (now synced) keys so the next
            // lap's writes miss the memtable again.
            store.lock_all_for(None).mark_synced(store.log_head());
            store.maintain().expect("steady-state maintain");
        }
    }
    let elapsed = t0.elapsed();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    elapsed
}

/// One merge of 4 runs x 256 records into a single run, setup untimed.
/// Physical rounds are capped and extrapolated like [`aof_round_time`].
fn run_merge_time(iters: u64) -> Duration {
    const CAP: u64 = 32;
    let rounds = iters.clamp(1, CAP);
    let dir = std::env::temp_dir().join(format!("curp-bench-merge-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench merge root");
    let value = Bytes::from(vec![b'x'; 100]);
    let mut total = Duration::ZERO;
    for _ in 0..rounds {
        let mut cfg = TierConfig::new(&dir);
        cfg.memtable_budget = 1;
        cfg.merge_threshold = 3; // 4 runs trip the merge
        cfg.fsync = true;
        let store: TieredStore =
            TieredStore::over(ShardedStore::new(4), cfg).expect("tiered store");
        for run in 0..4u64 {
            for i in 0..256u64 {
                // Half the keyspace overlaps across runs, half is private.
                let key = run * 128 + i;
                let op =
                    Op::Put { key: Bytes::from(key.to_le_bytes().to_vec()), value: value.clone() };
                let set = op.key_hashes().shard_set(store.num_shards());
                store.lock_for(&set, Some(&op)).execute(&op);
            }
            store.lock_all_for(None).mark_synced(store.log_head());
            if run < 3 {
                store.maintain().expect("build run"); // flush only: below threshold
            }
        }
        let t0 = Instant::now();
        store.maintain().expect("merge"); // 4th flush + all-runs merge
        total += t0.elapsed();
        assert_eq!(store.run_count(), 1, "merge must have collapsed the runs");
    }
    let _ = std::fs::remove_dir_all(&dir);
    if rounds == iters {
        total
    } else {
        Duration::from_nanos((total.as_nanos() as f64 * iters as f64 / rounds as f64).round() as u64)
    }
}

/// One crash-safe `Aof::rewrite` compacting a 2000-entry log to its
/// 100-entry live suffix (tmp + fsync + rename + dir fsync) — the price
/// of bounding a backup's log once checkpoint coverage has advanced.
fn aof_rewrite_time(iters: u64) -> Duration {
    const CAP: u64 = 32;
    let rounds = iters.clamp(1, CAP);
    let dir = std::env::temp_dir().join(format!("curp-bench-rewrite-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench rewrite root");
    let path = dir.join("log.aof");
    let entry = |seq: u64| LogEntry {
        seq,
        rpc_id: Some(RpcId::new(ClientId(1), seq + 1)),
        op: Op::Put {
            key: Bytes::from(seq.to_le_bytes().to_vec()),
            value: Bytes::from(vec![b'x'; 100]),
        },
        result: OpResult::Written { version: seq + 1 },
    };
    let full: Vec<LogEntry> = (0..2000).map(entry).collect();
    let suffix: Vec<LogEntry> = (1900..2000).map(entry).collect();
    let mut total = Duration::ZERO;
    for _ in 0..rounds {
        let _ = std::fs::remove_file(&path);
        let mut aof = Aof::open(&path, FsyncPolicy::Manual).expect("open bench aof");
        aof.append_batch(&full).expect("append");
        aof.sync().expect("fsync");
        drop(aof);
        let t0 = Instant::now();
        drop(Aof::rewrite(&path, &suffix, FsyncPolicy::Manual).expect("rewrite"));
        total += t0.elapsed();
    }
    let _ = std::fs::remove_dir_all(&dir);
    if rounds == iters {
        total
    } else {
        Duration::from_nanos((total.as_nanos() as f64 * iters as f64 / rounds as f64).round() as u64)
    }
}

fn bench_tiered(c: &mut Criterion) {
    c.bench_function("tiered_put_miss_memtable", |b| b.iter_custom(tiered_put_miss_time));
    c.bench_function("run_merge", |b| b.iter_custom(run_merge_time));
    c.bench_function("aof_rewrite_compact", |b| b.iter_custom(aof_rewrite_time));
}

fn bench_codec(c: &mut Criterion) {
    let req = Request::ClientUpdate {
        rpc_id: RpcId::new(ClientId(7), 1234),
        first_incomplete: 1200,
        witness_list_version: WitnessListVersion(3),
        op: Op::Put {
            key: Bytes::from_static(b"user4821309184"),
            value: Bytes::from(vec![0u8; 100]),
        },
    };
    c.bench_function("codec_encode_update", |b| b.iter(|| req.to_bytes()));
    let bytes = req.to_bytes();
    // The transports decode with `from_bytes_shared`: keys and values
    // window into the frame buffer (the clone is an O(1) refcount bump).
    c.bench_function("codec_decode_update", |b| {
        b.iter(|| Request::from_bytes_shared(bytes.clone()).unwrap())
    });
    c.bench_function("codec_decode_update_copy", |b| {
        b.iter(|| Request::from_bytes(&bytes).unwrap())
    });
    c.bench_function("keyhash_30b", |b| {
        let key = b"012345678901234567890123456789";
        b.iter(|| KeyHash::of(key));
    });
    c.bench_function("load_stats_split_point", |b| {
        // The autoscaler's split-point pick: a hotkey-mass median over the
        // full 64-bucket histogram (worst case: the cumulative scan walks
        // every bucket). Pure arithmetic on the coordinator's poll path.
        let range = HashRange { start: 0, end: u64::MAX };
        let hot_hash_histogram: Vec<u64> =
            (0..LOAD_HISTOGRAM_BUCKETS as u64).map(|i| i * 7 + 1).collect();
        let stats = LoadStats { updates: 1 << 20, pending: 8, range, hot_hash_histogram };
        b.iter(|| stats.split_point());
    });
}

// ---- client throughput: serial vs pipelined/batched -------------------------
//
// The end-to-end client benches measure **virtual time** on the calibrated
// in-memory cluster (Mode::Curp, f = 3, InfiniBand profile): `iter_custom`
// reports the simulated nanoseconds per completed 100 B write, so the
// numbers are deterministic given the seeds and independent of the CI
// runner's load — which is what lets the bench-regression gate hold them to
// a tight threshold. `client_serial_update` is the one-op-in-flight
// baseline (§5.1's closed-loop single client, ~7.3 µs/op);
// `client_pipelined_w16` keeps a 16-op window per partition and flushes
// Batch frames, which overlaps round trips and amortizes the master's
// per-message dispatch cost. The acceptance bar for the pipelined path is
// >= 2x the serial ops/sec; in practice the gap is far larger. The
// `_4partitions` variant routes the same stream across four masters from
// one client handle.
//
// Runs are capped at 2 000 simulated ops per measured batch (deterministic,
// steady-state) and the reported duration extrapolates linearly, so full
// bench mode stays seconds-long.

fn sim_ops_capped(iters: u64, run: impl FnOnce(u64) -> Duration) -> Duration {
    const CAP: u64 = 2_000;
    let ops = iters.clamp(1, CAP);
    let elapsed = run(ops);
    if ops == iters {
        elapsed
    } else {
        Duration::from_nanos((elapsed.as_nanos() as f64 * iters as f64 / ops as f64).round() as u64)
    }
}

fn serial_vtime(iters: u64) -> Duration {
    sim_ops_capped(iters, |ops| {
        run_sim(async move {
            let cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
            let elapsed = cluster.time_serial_updates(ops, 100_000).await;
            Duration::from_nanos(to_virtual_ns(elapsed))
        })
    })
}

fn pipelined_vtime(iters: u64, partitions: usize) -> Duration {
    sim_ops_capped(iters, |ops| {
        run_sim(async move {
            let cluster =
                SimCluster::build_partitioned(Mode::Curp, RamcloudParams::new(3), partitions).await;
            let elapsed =
                cluster.time_pipelined_updates(ops, 100_000, PipelineConfig::default()).await;
            Duration::from_nanos(to_virtual_ns(elapsed))
        })
    })
}

/// Virtual time of one full online split (§3.6): drain the source master,
/// cut the range at the midpoint, install the upper half on the spare, and
/// publish the new map. The cluster holds 128 objects so the snapshot and
/// backup installs carry real payload. Deterministic (virtual time); the
/// gate holds it like the client benches.
fn split_migration_vtime(iters: u64) -> Duration {
    const CAP: u64 = 8;
    let rounds = iters.clamp(1, CAP);
    let mut total = Duration::ZERO;
    for _ in 0..rounds {
        total += run_sim(async {
            let cluster = SimCluster::build(Mode::Curp, RamcloudParams::new(3)).await;
            let client = cluster.client(0).await;
            for i in 0..128u64 {
                client
                    .update(Op::Put {
                        key: Bytes::from(i.to_le_bytes().to_vec()),
                        value: Bytes::from(vec![0u8; 100]),
                    })
                    .await
                    .expect("seed put");
            }
            let part = cluster.coord.config().partitions[0].clone();
            let spare = cluster.coord.spare_servers()[0];
            let t0 = tokio::time::Instant::now();
            cluster
                .coord
                .migrate(
                    part.master_id,
                    u64::MAX / 2,
                    spare,
                    part.backups.clone(),
                    part.witnesses.clone(),
                )
                .await
                .expect("split migration");
            Duration::from_nanos(to_virtual_ns(t0.elapsed()))
        });
    }
    if rounds == iters {
        total
    } else {
        Duration::from_nanos((total.as_nanos() as f64 * iters as f64 / rounds as f64).round() as u64)
    }
}

fn bench_client_throughput(c: &mut Criterion) {
    c.bench_function("client_serial_update", |b| b.iter_custom(serial_vtime));
    c.bench_function("client_pipelined_w16", |b| b.iter_custom(|i| pipelined_vtime(i, 1)));
    c.bench_function("client_pipelined_w16_4partitions", |b| {
        b.iter_custom(|i| pipelined_vtime(i, 4))
    });
    c.bench_function("scaleout_split_migration", |b| b.iter_custom(split_migration_vtime));
}

fn bench_commutativity(c: &mut Criterion) {
    c.bench_function("op_commutes_with", |b| {
        let a = Op::Put { key: Bytes::from_static(b"alpha"), value: Bytes::from_static(b"1") };
        let bop = Op::Put { key: Bytes::from_static(b"beta"), value: Bytes::from_static(b"2") };
        b.iter(|| a.commutes_with(&bop));
    });
    c.bench_function("multiput_3key_footprint", |b| {
        b.iter_batched(
            || Op::MultiPut {
                kvs: vec![
                    (Bytes::from_static(b"a"), Bytes::from_static(b"1")),
                    (Bytes::from_static(b"b"), Bytes::from_static(b"2")),
                    (Bytes::from_static(b"c"), Bytes::from_static(b"3")),
                ],
            },
            |op| op.key_hashes(),
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_witness, bench_store, bench_contention, bench_aof, bench_tiered, bench_codec, bench_commutativity
}
criterion_group! {
    name = client_benches;
    // Virtual-time cluster runs are deterministic, so a short budget loses
    // no precision; the cap in `sim_ops_capped` bounds wall time per sample.
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(200)).warm_up_time(std::time::Duration::from_millis(50));
    targets = bench_client_throughput
}
criterion_main!(benches, client_benches);
