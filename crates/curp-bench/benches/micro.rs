//! Criterion micro-benchmarks of the protocol's fast-path components:
//! witness record/gc, commutativity checks, store execution, and the wire
//! codec. These are real wall-clock numbers (no simulation).
//!
//! Several benches pin the allocation-free fast path (see EXPERIMENTS.md,
//! "Perf trajectory"): the `store_*_1k_*` collection benches assert-by-
//! trajectory that typed mutations stay O(1) amortized (the
//! `*_clone_baseline` twin measures the clone-per-mutation alternative),
//! `witness_record_reject_alloc_free` pins the no-allocation reject path,
//! and `codec_decode_update` measures the zero-copy (`from_bytes_shared`)
//! decode the transports use (`codec_decode_update_copy` keeps the copying
//! slice path for comparison).
//!
//! Run `--smoke` for a seconds-long CI pass, `--json=BENCH_micro.json` to
//! emit the machine-readable trajectory file.

use std::collections::HashMap;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use curp_proto::message::{RecordedRequest, Request};
use curp_proto::op::Op;
use curp_proto::types::{ClientId, KeyHash, MasterId, RpcId, WitnessListVersion};
use curp_proto::wire::{Decode, Encode};
use curp_storage::Store;
use curp_witness::{CacheConfig, WitnessCache};

fn request(seq: u64, key: u64) -> RecordedRequest {
    let op = Op::Put {
        key: Bytes::from(key.to_le_bytes().to_vec()),
        value: Bytes::from_static(b"0123456789012345678901234567890123456789"),
    };
    RecordedRequest {
        master_id: MasterId(1),
        rpc_id: RpcId::new(ClientId(1), seq),
        key_hashes: op.key_hashes(),
        op,
    }
}

fn bench_witness(c: &mut Criterion) {
    c.bench_function("witness_record_gc_cycle", |b| {
        let mut cache = WitnessCache::new(CacheConfig::default());
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let req = request(seq, seq);
            let pair = (req.key_hashes[0], req.rpc_id);
            cache.record(req);
            cache.gc(&[pair]);
        });
    });
    c.bench_function("witness_record_reject_conflict", |b| {
        let mut cache = WitnessCache::new(CacheConfig::default());
        cache.record(request(1, 42));
        let mut seq = 1u64;
        b.iter(|| {
            seq += 1;
            cache.record(request(seq, 42)) // same key: rejected
        });
    });
    c.bench_function("witness_commute_probe", |b| {
        let mut cache = WitnessCache::new(CacheConfig::default());
        for i in 0..1000 {
            cache.record(request(i + 1, i));
        }
        let probe = [KeyHash::of(b"some-other-key")];
        b.iter(|| cache.commutes_with_read(&probe));
    });
    c.bench_function("witness_record_reject_alloc_free", |b| {
        // Pins the validate-before-allocate reject path: a conflicting
        // record must be turned away without touching the heap. The
        // recorded request is cloned per iteration, which is allocation-free
        // itself (`Bytes` is refcounted, the footprint is inline).
        let mut cache = WitnessCache::new(CacheConfig::default());
        cache.record(request(1, 7));
        let conflicting = request(2, 7);
        b.iter(|| cache.record(conflicting.clone()));
    });
}

fn bench_store(c: &mut Criterion) {
    c.bench_function("store_put_100b", |b| {
        let mut store = Store::new();
        let value = Bytes::from(vec![0u8; 100]);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store.execute(&Op::Put {
                key: Bytes::from((i % 100_000).to_le_bytes().to_vec()),
                value: value.clone(),
            })
        });
    });
    // Typed-collection mutations on a 1 000-element object: the in-place
    // execute path must stay O(1) amortized regardless of collection size.
    // The `_clone_baseline` twin prices the clone-per-mutation alternative
    // (what `execute` used to do); the acceptance bar is a >= 10x gap.
    let fields: Vec<Bytes> = (0..1000u32).map(|i| Bytes::from(format!("field-{i}"))).collect();
    let value = Bytes::from(vec![0u8; 32]);
    c.bench_function("store_hset_1k_fields", |b| {
        let mut store = Store::new();
        let key = Bytes::from_static(b"hash-object");
        for f in &fields {
            store.execute(&Op::HSet { key: key.clone(), field: f.clone(), value: value.clone() });
        }
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            store.execute(&Op::HSet {
                key: key.clone(),
                field: fields[i % fields.len()].clone(),
                value: value.clone(),
            })
        });
    });
    c.bench_function("store_hset_1k_fields_clone_baseline", |b| {
        let mut baseline: HashMap<Bytes, Bytes> =
            fields.iter().map(|f| (f.clone(), value.clone())).collect();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            // Clone-modify-replace, as the pre-refactor execute did.
            let mut h = baseline.clone();
            h.insert(fields[i % fields.len()].clone(), value.clone());
            baseline = h;
            baseline.len()
        });
    });
    c.bench_function("store_list_push_1k", |b| {
        // The list is reset to 1 000 elements every 1 000 pushes so the
        // measured size stays bounded (1k–2k) no matter how many iterations
        // the harness runs; the amortized reset cost is a few ns/iter.
        let mut base = Store::new();
        let key = Bytes::from_static(b"list-object");
        for _ in 0..1000 {
            base.execute(&Op::ListPush { key: key.clone(), value: value.clone() });
        }
        let mut store = base.clone();
        let mut pushes = 0u32;
        b.iter(|| {
            if pushes == 1000 {
                store = base.clone();
                pushes = 0;
            }
            pushes += 1;
            store.execute(&Op::ListPush { key: key.clone(), value: value.clone() })
        });
    });
    c.bench_function("store_set_add_1k_members", |b| {
        let mut store = Store::new();
        let key = Bytes::from_static(b"set-object");
        for f in &fields {
            store.execute(&Op::SetAdd { key: key.clone(), member: f.clone() });
        }
        // Re-adding an existing member keeps the set at 1 000 members, so
        // every iteration measures the same-size O(1) path.
        let member = fields[500].clone();
        b.iter(|| store.execute(&Op::SetAdd { key: key.clone(), member: member.clone() }));
    });
    c.bench_function("store_unsynced_check", |b| {
        let mut store = Store::new();
        for i in 0..100_000u64 {
            store.execute(&Op::Put {
                key: Bytes::from(i.to_le_bytes().to_vec()),
                value: Bytes::from_static(b"v"),
            });
        }
        store.mark_synced(store.log_head());
        let op = Op::Put { key: Bytes::from(7u64.to_le_bytes().to_vec()), value: Bytes::new() };
        b.iter(|| store.touches_unsynced(&op));
    });
}

fn bench_codec(c: &mut Criterion) {
    let req = Request::ClientUpdate {
        rpc_id: RpcId::new(ClientId(7), 1234),
        first_incomplete: 1200,
        witness_list_version: WitnessListVersion(3),
        op: Op::Put {
            key: Bytes::from_static(b"user4821309184"),
            value: Bytes::from(vec![0u8; 100]),
        },
    };
    c.bench_function("codec_encode_update", |b| b.iter(|| req.to_bytes()));
    let bytes = req.to_bytes();
    // The transports decode with `from_bytes_shared`: keys and values
    // window into the frame buffer (the clone is an O(1) refcount bump).
    c.bench_function("codec_decode_update", |b| {
        b.iter(|| Request::from_bytes_shared(bytes.clone()).unwrap())
    });
    c.bench_function("codec_decode_update_copy", |b| {
        b.iter(|| Request::from_bytes(&bytes).unwrap())
    });
    c.bench_function("keyhash_30b", |b| {
        let key = b"012345678901234567890123456789";
        b.iter(|| KeyHash::of(key));
    });
}

fn bench_commutativity(c: &mut Criterion) {
    c.bench_function("op_commutes_with", |b| {
        let a = Op::Put { key: Bytes::from_static(b"alpha"), value: Bytes::from_static(b"1") };
        let bop = Op::Put { key: Bytes::from_static(b"beta"), value: Bytes::from_static(b"2") };
        b.iter(|| a.commutes_with(&bop));
    });
    c.bench_function("multiput_3key_footprint", |b| {
        b.iter_batched(
            || Op::MultiPut {
                kvs: vec![
                    (Bytes::from_static(b"a"), Bytes::from_static(b"1")),
                    (Bytes::from_static(b"b"), Bytes::from_static(b"2")),
                    (Bytes::from_static(b"c"), Bytes::from_static(b"3")),
                ],
            },
            |op| op.key_hashes(),
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_witness, bench_store, bench_codec, bench_commutativity
}
criterion_main!(benches);
