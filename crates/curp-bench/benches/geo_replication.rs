//! Geo-replication (§1, §3.1, §A.1): "When CURP is used for geo-replication,
//! it allows consistent update operations in 1 wide-area RTT ... [and]
//! strongly consistent reads from local backup replicas (0 wide-area RTTs)."
//!
//! Topology: the client shares a region with one backup+witness pair
//! (~0.25 ms one-way); the master and the remaining replicas are a wide-area
//! hop away (~30 ms one-way, a coast-to-coast link). We measure:
//!
//! * update latency — CURP completes in one wide-area RTT because the
//!   *local* witness record and the *remote* master execution overlap, while
//!   synchronous replication pays two;
//! * read latency — the witness-probe-then-backup-read path stays entirely
//!   in-region once the key is synced and gc'd.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use curp_bench::{figure_header, print_scalar};
use curp_proto::op::Op;
use curp_sim::{run_sim, to_virtual_us, vus, Mode, RamcloudParams, SimCluster};
use curp_transport::latency::TailMix;

const WAN_ONEWAY_US: u64 = 30_000; // 30 ms coast-to-coast
const LAN_ONEWAY_US: u64 = 250; // 0.25 ms in-region

fn lan_model() -> Arc<TailMix> {
    Arc::new(TailMix::jittered(vus(LAN_ONEWAY_US), vus(LAN_ONEWAY_US / 5)))
}

fn wan_model() -> Arc<TailMix> {
    Arc::new(TailMix::jittered(vus(WAN_ONEWAY_US), vus(WAN_ONEWAY_US / 10)))
}

async fn build(mode: Mode) -> SimCluster {
    let mut params = RamcloudParams::new(3);
    params.sync_interval_ns = 2_000_000; // flush every 2 virtual ms
    let cluster = SimCluster::build(mode, params).await;
    // Default: every link is wide-area...
    cluster.net.set_default_latency(wan_model());
    // ...except the client's links to its in-region replica pair (server 2)
    // and the in-region coordinator access (config fetches shouldn't skew
    // the measurement).
    let client = curp_proto::types::ServerId(100);
    for peer in [curp_proto::types::ServerId(2), curp_proto::types::ServerId(9_999)] {
        cluster.net.set_link_latency(client, peer, lan_model());
        cluster.net.set_link_latency(peer, client, lan_model());
    }
    cluster.net.set_rpc_timeout(vus(2_000_000));
    cluster
}

fn main() {
    curp_bench::ignore_bench_args();
    figure_header(
        "Geo-replication",
        "wide-area updates and in-region reads (WAN one-way = 30ms)",
        &[
            "updates: 1 wide-area RTT with CURP vs 2 with synchronous replication",
            "reads: 0 wide-area RTTs from a local backup after a witness probe (A.1)",
        ],
    );

    // --- update latency -----------------------------------------------------
    for (name, mode) in [("curp", Mode::Curp), ("synchronous", Mode::Original)] {
        let median_ms = run_sim(async move {
            let cluster = build(mode).await;
            let client = cluster.client(0).await;
            let mut samples = Vec::new();
            for i in 0..40 {
                let t0 = tokio::time::Instant::now();
                client
                    .update(Op::Put {
                        key: Bytes::from(format!("geo-{i}")),
                        value: Bytes::from_static(b"v"),
                    })
                    .await
                    .unwrap();
                samples.push(to_virtual_us(t0.elapsed()) / 1_000.0);
            }
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            samples[samples.len() / 2]
        });
        print_scalar(&format!("update_{name}_median"), median_ms, "ms");
    }

    // --- read latency (§A.1) --------------------------------------------------
    let (master_read_ms, nearby_read_ms) = run_sim(async {
        let cluster = build(Mode::Curp).await;
        let client = cluster.client(0).await;
        client
            .update(Op::Put {
                key: Bytes::from_static(b"geo-key"),
                value: Bytes::from_static(b"v"),
            })
            .await
            .unwrap();
        // Wait for the background sync + witness gc to complete.
        tokio::time::sleep(Duration::from_secs(5_000_000)).await; // 5 virtual ms
        let t0 = tokio::time::Instant::now();
        client.read(Op::Get { key: Bytes::from_static(b"geo-key") }).await.unwrap();
        let master_read = to_virtual_us(t0.elapsed()) / 1_000.0;
        let t0 = tokio::time::Instant::now();
        client.read_nearby(Op::Get { key: Bytes::from_static(b"geo-key") }, 0).await.unwrap();
        let nearby_read = to_virtual_us(t0.elapsed()) / 1_000.0;
        (master_read, nearby_read)
    });
    print_scalar("read_master_wan", master_read_ms, "ms (1 wide-area RTT)");
    print_scalar("read_nearby_backup", nearby_read_ms, "ms (0 wide-area RTTs)");
    let speedup = master_read_ms / nearby_read_ms.max(0.001);
    print_scalar("read_speedup", speedup, "x");
}
