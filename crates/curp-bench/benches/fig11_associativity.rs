//! Figure 11 (§B.1): expected records until a witness-cache collision, as a
//! function of slot count and associativity.
//!
//! The paper's simulation: insert random keys until the cache rejects for
//! lack of space, average over trials. With 4096 direct-mapped slots the
//! first false conflict lands after ~80 insertions; 4-way associativity
//! pushes it past 1000 — "introducing associativity reduces the chance of
//! collisions significantly" and is why witnesses use a 4-way cache.

use bytes::Bytes;
use curp_bench::{figure_header, print_series};
use curp_proto::message::RecordedRequest;
use curp_proto::op::Op;
use curp_proto::types::{ClientId, MasterId, RpcId};
use curp_witness::{CacheConfig, RecordOutcome, WitnessCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TRIALS: usize = 2_000; // paper: 10_000
const SLOT_COUNTS: &[usize] = &[512, 1024, 1536, 2048, 2560, 3072, 3584, 4096, 4608];

fn records_until_collision(total_slots: usize, associativity: usize, rng: &mut StdRng) -> usize {
    let mut cache =
        WitnessCache::new(CacheConfig { total_slots, associativity, gc_suspicion_rounds: 3 });
    let mut n = 0;
    loop {
        let key: u64 = rng.gen();
        let op = Op::Put {
            key: Bytes::from(key.to_le_bytes().to_vec()),
            value: Bytes::from_static(b"v"),
        };
        let req = RecordedRequest {
            master_id: MasterId(1),
            rpc_id: RpcId::new(ClientId(1), n as u64 + 1),
            key_hashes: op.key_hashes(),
            op,
        };
        match cache.record(req) {
            RecordOutcome::Accepted => n += 1,
            // Both count as the first collision: a random fresh key that the
            // cache could not take.
            RecordOutcome::SetFull | RecordOutcome::ConflictingKey => return n,
        }
    }
}

fn main() {
    curp_bench::ignore_bench_args();
    figure_header(
        "Figure 11",
        "expected records until collision vs total slots, by associativity",
        &[
            "direct-mapped @4096 slots: collision after ~80 records",
            "4-way associativity defers collisions by >10x; 8-way only marginally better",
        ],
    );
    for assoc in [1usize, 2, 4, 8] {
        let mut rng = StdRng::seed_from_u64(0x000F_1611 + assoc as u64);
        let points: Vec<(f64, f64)> = SLOT_COUNTS
            .iter()
            .map(|&slots| {
                let mean: f64 = (0..TRIALS)
                    .map(|_| records_until_collision(slots, assoc, &mut rng) as f64)
                    .sum::<f64>()
                    / TRIALS as f64;
                (slots as f64, mean)
            })
            .collect();
        let name = match assoc {
            1 => "direct_mapped".to_string(),
            a => format!("{a}way"),
        };
        print_series(&name, &points);
    }
}
