//! §5.2: resource consumption by witness servers.
//!
//! Paper numbers: a single-threaded witness server sustains ~1.27 M record
//! RPCs/s (with one gc per 50 writes); per master-witness pair memory is
//! ~9 MB (4096 slots × 2 KB + metadata); CURP's network amplification with
//! 3-way replication is +75 % (each request additionally travels to 3
//! witnesses, on top of master + 3 backups).
//!
//! Record throughput here is *real wall-clock* (no simulation): the witness
//! data-structure cost on this machine.

use bytes::Bytes;
use curp_bench::{figure_header, print_scalar};
use curp_proto::message::RecordedRequest;
use curp_proto::op::Op;
use curp_proto::types::{ClientId, MasterId, RpcId};
use curp_witness::{CacheConfig, WitnessService};

fn request(seq: u64, key: u64) -> RecordedRequest {
    let op = Op::Put {
        key: Bytes::from(key.to_le_bytes().to_vec()),
        value: Bytes::from_static(b"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
    };
    RecordedRequest {
        master_id: MasterId(1),
        rpc_id: RpcId::new(ClientId(1), seq),
        key_hashes: op.key_hashes(),
        op,
    }
}

fn main() {
    curp_bench::ignore_bench_args();
    figure_header(
        "Section 5.2",
        "witness server resource consumption",
        &[
            "record throughput ~1270k ops/s on one hyper-thread core",
            "memory ~9MB per master-witness pair (4096 x 2KB slots)",
            "network amplification +75% for 3-way replication",
        ],
    );

    // --- record/gc throughput (the witness data-structure fast path) -------
    let service = WitnessService::new(CacheConfig::default());
    service.start(MasterId(1));
    let rounds: u64 = 2_000_000;
    let t0 = std::time::Instant::now();
    let mut pending: Vec<(curp_proto::types::KeyHash, RpcId)> = Vec::with_capacity(50);
    for seq in 0..rounds {
        let req = request(seq + 1, seq);
        let pair = (req.key_hashes[0], req.rpc_id);
        let accepted = service.record(req);
        if accepted {
            pending.push(pair);
        }
        // One gc per 50 records, like a master batching 50 writes per sync.
        if pending.len() >= 50 {
            service.gc(MasterId(1), &pending);
            pending.clear();
        }
    }
    let elapsed = t0.elapsed();
    let kops = rounds as f64 / elapsed.as_secs_f64() / 1_000.0;
    print_scalar("record_throughput", kops, "k records/s (wall clock, 1 thread)");

    // --- memory -------------------------------------------------------------
    let cache = curp_witness::WitnessCache::new(CacheConfig::default());
    print_scalar(
        "memory_per_master",
        cache.memory_bytes() as f64 / (1024.0 * 1024.0),
        "MB (4096 slots, 2KB storage layout)",
    );

    // --- network amplification ----------------------------------------------
    // Per client request with f = 3: baseline = client->master + 3 backup
    // copies = 4 transfers; CURP adds 3 witness records = 7 transfers.
    let baseline = 1.0 + 3.0;
    let curp = baseline + 3.0;
    print_scalar(
        "network_amplification",
        (curp / baseline - 1.0) * 100.0,
        "% extra bytes on the wire (f=3)",
    );
}
