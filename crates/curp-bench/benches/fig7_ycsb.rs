//! Figure 7: write-latency CCDFs under YCSB-A and YCSB-B.
//!
//! Paper setup: a single client issues the YCSB mix (Zipfian θ=0.99 over
//! 1 M objects) against one server batching 50 writes per sync. Reported
//! shape: CURP stays at 1-RTT latency for the overwhelming majority of
//! writes; the ~1 % conflicting writes kink the curve at the 2-RTT line
//! (~14 µs) — "in most conflict cases, operations complete in 2 RTTs".

use curp_bench::{figure_header, print_scalar, print_series};
use curp_sim::{run_sim, vus, Mode, RamcloudParams, SimCluster};
use curp_workload::Workload;

const KEYS: u64 = 1_000_000;
const DURATION_US: u64 = 120_000; // single client, ~15k ops

fn run(mode: Mode, f: usize, workload: fn(u64) -> Workload) -> curp_sim::RunResult {
    run_sim(async move {
        let cluster = SimCluster::build(mode, RamcloudParams::new(f)).await;
        cluster.run_closed_loop(1, vus(DURATION_US), |_| workload(KEYS)).await
    })
}

fn main() {
    curp_bench::ignore_bench_args();
    for (fig, label, workload) in [
        ("Figure 7a", "YCSB-A (50/50 read/update)", Workload::ycsb_a as fn(u64) -> Workload),
        ("Figure 7b", "YCSB-B (95/5 read/update)", Workload::ycsb_b as fn(u64) -> Workload),
    ] {
        figure_header(
            fig,
            &format!("write latency CCDF, {label}, Zipfian(0.99), 1M keys"),
            &[
                "CURP keeps ~1-RTT medians even under heavy skew",
                "~1% conflicting writes kink the CCDF at the 2-RTT line (~14us)",
            ],
        );
        let configs: Vec<(&str, Mode, usize)> = vec![
            ("original_f3", Mode::Original, 3),
            ("curp_f3", Mode::Curp, 3),
            ("curp_f2", Mode::Curp, 2),
            ("curp_f1", Mode::Curp, 1),
            ("async_f3", Mode::Async, 3),
            ("unreplicated", Mode::Unreplicated, 0),
        ];
        for (name, mode, f) in configs {
            let mut result = run(mode, f, workload);
            if result.writes.is_empty() {
                continue;
            }
            print_scalar(&format!("{name}_write_median_us"), result.writes.median_us(), "us");
            print_series(name, &result.writes.ccdf_us());
        }
    }
}
