//! Ablation: the §4.4 hot-key preemptive sync heuristic.
//!
//! "Masters sync preemptively after executing an update on an object that
//! had been updated recently ... this heuristic prevents future requests on
//! the hot object from getting blocked by syncs." We run YCSB-A (heavily
//! skewed, so hot keys repeat quickly) with the heuristic on and off and
//! report the conflict rate and write-latency percentiles.

use curp_bench::{figure_header, print_scalar};
use curp_sim::{run_sim, vus, Mode, RamcloudParams, SimCluster};
use curp_workload::Workload;

const KEYS: u64 = 1_000_000;
const DURATION_US: u64 = 80_000;

fn run(hotkey: bool) -> (f64, f64, f64) {
    run_sim(async move {
        let mut params = RamcloudParams::new(3);
        params.hotkey_sync = hotkey;
        let cluster = SimCluster::build(Mode::Curp, params).await;
        let result = cluster.run_closed_loop(1, vus(DURATION_US), |_| Workload::ycsb_a(KEYS)).await;
        let master = cluster.servers[0].master().unwrap();
        let conflicts = master.stats.conflicts.load(std::sync::atomic::Ordering::Relaxed);
        let updates = master.stats.updates.load(std::sync::atomic::Ordering::Relaxed);
        let mut writes = result.writes;
        (
            conflicts as f64 / updates.max(1) as f64 * 100.0,
            writes.median_us(),
            writes.quantile_ns(0.99) as f64 / 1_000.0,
        )
    })
}

fn main() {
    curp_bench::ignore_bench_args();
    figure_header(
        "Ablation",
        "hot-key preemptive sync heuristic (YCSB-A, Zipfian 0.99)",
        &["the heuristic trades a few extra syncs for fewer blocked writes on hot keys"],
    );
    for (label, on) in [("hotkey_on", true), ("hotkey_off", false)] {
        let (conflict_pct, median, p99) = run(on);
        print_scalar(&format!("{label}_conflict_rate"), conflict_pct, "% of writes");
        print_scalar(&format!("{label}_write_median"), median, "us");
        print_scalar(&format!("{label}_write_p99"), p99, "us");
    }
}
