//! Figure 5: complementary CDF of latency for 100 B random writes.
//!
//! Paper setup: writes issued sequentially by a single client to a single
//! server batching 50 writes between syncs; 1 M samples. We run 10 k samples
//! per configuration in scaled virtual time (the distribution shape
//! converges long before that).
//!
//! Paper numbers: median 13.8 µs (original, f=3), 7.3 µs (CURP f=3),
//! 6.9 µs (unreplicated); CURP f=1/2 indistinguishable from unreplicated.

use curp_bench::{figure_header, print_scalar, print_series};
use curp_sim::{run_sim, Mode, RamcloudParams, SimCluster};

const SAMPLES: usize = 10_000;
const KEYS: u64 = 1_000_000;

fn measure(mode: Mode, f: usize) -> curp_workload::LatencyRecorder {
    run_sim(async move {
        let cluster = SimCluster::build(mode, RamcloudParams::new(f)).await;
        cluster.measure_write_latency(SAMPLES, KEYS).await
    })
}

fn main() {
    curp_bench::ignore_bench_args();
    figure_header(
        "Figure 5",
        "CCDF of 100B write latency (single client, batch=50)",
        &[
            "median: original(f=3)=13.8us, CURP(f=3)=7.3us, unreplicated=6.9us",
            "CURP f=1/2 add no noticeable overhead vs unreplicated",
        ],
    );
    let configs: Vec<(&str, Mode, usize)> = vec![
        ("original_f3", Mode::Original, 3),
        ("curp_f3", Mode::Curp, 3),
        ("curp_f2", Mode::Curp, 2),
        ("curp_f1", Mode::Curp, 1),
        ("unreplicated", Mode::Unreplicated, 0),
    ];
    for (name, mode, f) in configs {
        let mut rec = measure(mode, f);
        print_scalar(&format!("{name}_median_us"), rec.median_us(), "us");
        print_series(name, &rec.ccdf_us());
    }
}
