//! Figure 13 (§C.2): observed Redis SET latency at each achieved throughput
//! level (client-count sweep).
//!
//! Paper shape: CURP and non-durable Redis hold their latency until ~80 % of
//! max throughput; durable Redis' latency climbs ~linearly with load because
//! the event loop batches fsyncs — amortization buys throughput by spending
//! client latency.

use curp_bench::{figure_header, print_series};
use curp_sim::{run_sim, vus, RedisMode, RedisParams, RedisSim};

const CLIENT_COUNTS: &[usize] = &[1, 2, 4, 8, 16, 24, 32, 48, 64];
const DURATION_US: u64 = 30_000;

fn point(mode: RedisMode, clients: usize) -> (f64, f64) {
    run_sim(async move {
        let sim = RedisSim::build(mode, RedisParams::default()).await;
        let r = sim.run_closed_loop(clients, vus(DURATION_US)).await;
        (r.throughput_ops_per_sec / 1_000.0, r.writes.mean_us())
    })
}

fn main() {
    curp_bench::ignore_bench_args();
    figure_header(
        "Figure 13",
        "average SET latency (us) vs achieved throughput (k ops/s)",
        &[
            "CURP & non-durable: flat latency until ~80% of max throughput",
            "durable Redis: latency grows ~linearly with load (fsync batching)",
        ],
    );
    let configs: Vec<(&str, RedisMode)> = vec![
        ("nondurable", RedisMode::NonDurable),
        ("curp_1w", RedisMode::Curp { witnesses: 1 }),
        ("curp_2w", RedisMode::Curp { witnesses: 2 }),
        ("durable", RedisMode::Durable),
    ];
    for (name, mode) in configs {
        let points: Vec<(f64, f64)> = CLIENT_COUNTS.iter().map(|&c| point(mode, c)).collect();
        print_series(name, &points);
    }
}
