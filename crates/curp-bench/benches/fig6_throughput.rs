//! Figure 6: single-server write throughput vs client count.
//!
//! Paper setup: each client issues 100 B random writes back-to-back; the
//! server batches 50 writes per sync. Reported shape: CURP ≈ 4× original
//! RAMCloud; ~6 % per-replica cost vs unreplicated; async replication
//! slightly above CURP (the ~10 % witness-gc overhead).

use curp_bench::{figure_header, print_series};
use curp_sim::{run_sim, vus, Mode, RamcloudParams, SimCluster};
use curp_workload::Workload;

const CLIENT_COUNTS: &[usize] = &[1, 2, 5, 10, 15, 20, 30];
const DURATION_US: u64 = 20_000; // 20 virtual ms per point
const KEYS: u64 = 1_000_000;

fn throughput(mode: Mode, f: usize, clients: usize) -> f64 {
    run_sim(async move {
        let cluster = SimCluster::build(mode, RamcloudParams::new(f)).await;
        let result = cluster
            .run_closed_loop(clients, vus(DURATION_US), |_| Workload::uniform_writes(KEYS))
            .await;
        result.throughput_ops_per_sec / 1_000.0 // k writes/sec, the paper's axis
    })
}

fn main() {
    curp_bench::ignore_bench_args();
    figure_header(
        "Figure 6",
        "write throughput (k ops/s) vs client count (100B writes, batch=50)",
        &[
            "CURP improves throughput ~4x over original RAMCloud",
            "one added CURP replica costs ~6% vs unreplicated",
            "async (no witnesses) is ~10% above CURP f=3",
        ],
    );
    let configs: Vec<(&str, Mode, usize)> = vec![
        ("unreplicated", Mode::Unreplicated, 0),
        ("async_f3", Mode::Async, 3),
        ("curp_f1", Mode::Curp, 1),
        ("curp_f2", Mode::Curp, 2),
        ("curp_f3", Mode::Curp, 3),
        ("original_f3", Mode::Original, 3),
    ];
    for (name, mode, f) in configs {
        let points: Vec<(f64, f64)> =
            CLIENT_COUNTS.iter().map(|&c| (c as f64, throughput(mode, f, c))).collect();
        print_series(name, &points);
    }
}
