//! Figure 12 (§C.1): single-server write throughput vs minimum sync batch
//! size.
//!
//! Paper shape: delaying and batching syncs is where CURP's ~4× throughput
//! comes from; throughput rises steeply with batch size and flattens by ~50
//! ("larger batches marginally help throughput"). Even at batch size 1,
//! CURP's one-outstanding-sync rule coalesces ~15 writes per sync.

use curp_bench::{figure_header, print_series};
use curp_sim::{run_sim, vus, Mode, RamcloudParams, SimCluster};
use curp_workload::Workload;

const BATCHES: &[usize] = &[1, 2, 5, 10, 20, 30, 40, 50];
const CLIENTS: usize = 15;
const DURATION_US: u64 = 20_000;
const KEYS: u64 = 1_000_000;

fn throughput(mode: Mode, f: usize, batch: usize) -> f64 {
    run_sim(async move {
        let mut params = RamcloudParams::new(f);
        params.batch_size = batch;
        let cluster = SimCluster::build(mode, params).await;
        let r = cluster
            .run_closed_loop(CLIENTS, vus(DURATION_US), |_| Workload::uniform_writes(KEYS))
            .await;
        r.throughput_ops_per_sec / 1_000.0
    })
}

fn main() {
    curp_bench::ignore_bench_args();
    figure_header(
        "Figure 12",
        "write throughput (k ops/s) vs minimum batch size (15 clients)",
        &[
            "throughput grows with batch size, flattening by ~50",
            "baselines (unreplicated/original) are batch-size-independent",
        ],
    );
    for (name, f) in [("curp_f1", 1usize), ("curp_f2", 2), ("curp_f3", 3)] {
        let points: Vec<(f64, f64)> =
            BATCHES.iter().map(|&b| (b as f64, throughput(Mode::Curp, f, b))).collect();
        print_series(name, &points);
    }
    // Flat reference lines, measured once each.
    let unrep = throughput(Mode::Unreplicated, 0, 50);
    let asy = throughput(Mode::Async, 3, 50);
    let orig = throughput(Mode::Original, 3, 50);
    print_series("unreplicated", &[(1.0, unrep), (50.0, unrep)]);
    print_series("async_f3", &[(1.0, asy), (50.0, asy)]);
    print_series("original_f3", &[(1.0, orig), (50.0, orig)]);
}
