//! Figure 9: Redis SET throughput vs client count.
//!
//! Paper shape: CURP costs ~18 % of non-durable throughput; durable Redis
//! starts far behind (per-op fsync) but approaches non-durable as its event
//! loop amortizes one fsync across all ready clients.

use curp_bench::{figure_header, print_series};
use curp_sim::{run_sim, vus, RedisMode, RedisParams, RedisSim};

const CLIENT_COUNTS: &[usize] = &[1, 2, 5, 10, 20, 40, 60];
const DURATION_US: u64 = 30_000;

fn throughput(mode: RedisMode, clients: usize) -> f64 {
    run_sim(async move {
        let sim = RedisSim::build(mode, RedisParams::default()).await;
        let r = sim.run_closed_loop(clients, vus(DURATION_US)).await;
        r.throughput_ops_per_sec / 1_000.0
    })
}

fn main() {
    curp_bench::ignore_bench_args();
    figure_header(
        "Figure 9",
        "Redis SET throughput (k ops/s) vs client count",
        &[
            "CURP ~18% below non-durable Redis",
            "durable Redis approaches non-durable at high client counts (fsync batching)",
        ],
    );
    let configs: Vec<(&str, RedisMode)> = vec![
        ("nondurable", RedisMode::NonDurable),
        ("curp_1w", RedisMode::Curp { witnesses: 1 }),
        ("curp_2w", RedisMode::Curp { witnesses: 2 }),
        ("durable", RedisMode::Durable),
    ];
    for (name, mode) in configs {
        let points: Vec<(f64, f64)> =
            CLIENT_COUNTS.iter().map(|&c| (c as f64, throughput(mode, c))).collect();
        print_series(name, &points);
    }
}
