//! CI bench-regression gate (see [`curp_bench::gate`]).
//!
//! ```sh
//! cargo run -p curp-bench --bin bench_gate -- \
//!     --baseline=BENCH_micro.json --current=BENCH_micro.current.json
//! ```
//!
//! Exits non-zero when any gated bench slowed down more than the threshold
//! (default 2.5x) against the committed baseline, or when a baseline bench
//! is missing from the current run. Paths are resolved relative to the
//! invocation directory (CI runs from the workspace root).

use std::process::ExitCode;

use curp_bench::gate::{evaluate, parse_report, GateConfig};

struct Args {
    baseline: String,
    current: String,
    threshold: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: "BENCH_micro.json".to_string(),
        current: "BENCH_micro.current.json".to_string(),
        threshold: 2.5,
    };
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--baseline=") {
            args.baseline = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--current=") {
            args.current = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--threshold=") {
            args.threshold = v.parse().map_err(|e| format!("bad --threshold value {v:?}: {e}"))?;
            if args.threshold.partial_cmp(&1.0) != Some(std::cmp::Ordering::Greater) {
                return Err("--threshold must be > 1.0".to_string());
            }
        } else if arg == "--help" || arg == "-h" {
            return Err("usage: bench_gate [--baseline=PATH] [--current=PATH] [--threshold=RATIO]"
                .to_string());
        } else {
            return Err(format!("unknown argument {arg:?} (try --help)"));
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let baseline =
        parse_report(&read(&args.baseline)?).map_err(|e| format!("{}: {e}", args.baseline))?;
    let current =
        parse_report(&read(&args.current)?).map_err(|e| format!("{}: {e}", args.current))?;
    let config = GateConfig { threshold: args.threshold, ..GateConfig::default() };
    let report = evaluate(&baseline, &current, &config);
    print!("{report}");
    if report.passed() {
        println!(
            "bench gate PASSED ({} benches within {:.1}x of {})",
            report.checked, config.threshold, args.baseline
        );
    } else {
        println!(
            "bench gate FAILED against {} (threshold {:.1}x); if the slowdown is \
             intentional, refresh the committed baseline with a full run:\n  cargo bench \
             -p curp-bench --bench micro -- --json=$PWD/{}",
            args.baseline, config.threshold, args.baseline
        );
    }
    Ok(report.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
