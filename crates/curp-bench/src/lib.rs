//! Shared output helpers for the figure-reproduction benches, plus the
//! [`gate`] module backing the `bench_gate` CI regression check.
//!
//! Every paper figure has a `harness = false` bench target that prints the
//! same series the paper plots, in a grep-friendly tab-separated format:
//!
//! ```text
//! # Figure N: <title>
//! # paper: <the numbers/shape the paper reports>
//! series <name>
//! <x>\t<y>
//! ...
//! ```

pub mod gate;

/// Prints a figure header with the paper's reference numbers.
pub fn figure_header(figure: &str, title: &str, paper_notes: &[&str]) {
    println!("\n# {figure}: {title}");
    for note in paper_notes {
        println!("# paper: {note}");
    }
}

/// Prints one named series of (x, y) points.
pub fn print_series(name: &str, points: &[(f64, f64)]) {
    println!("series\t{name}");
    for (x, y) in points {
        println!("{x:.3}\t{y:.6}");
    }
}

/// Prints one named scalar (medians, throughputs, ...).
pub fn print_scalar(name: &str, value: f64, unit: &str) {
    println!("scalar\t{name}\t{value:.3}\t{unit}");
}

/// Skips the arguments Cargo's bench runner passes to custom harnesses.
pub fn ignore_bench_args() {
    // `cargo bench` invokes custom harnesses with `--bench`; nothing to do.
    let _ = std::env::args();
}
