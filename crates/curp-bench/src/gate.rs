//! The bench-regression gate: diffs a fresh `BENCH_micro.json` smoke run
//! against the committed baseline and fails on large slowdowns.
//!
//! CI runs the micro benches in `--smoke` mode on every push and then
//! executes `cargo run -p curp-bench --bin bench_gate` to compare the run
//! against the repository's checked-in full-mode baseline. A fast-path bench
//! that got more than [`GateConfig::threshold`]× slower fails the job, as
//! does a baseline bench that disappeared from the run (silently dropping
//! coverage must be an explicit baseline update, not an accident).
//!
//! The threshold is deliberately loose (default 2.5×): smoke mode's min-of-5
//! sampling absorbs most shared-runner noise, but wall-clock numbers still
//! wobble between runner generations. Benches that run real OS threads
//! wobble far more than that on a one-core container, so they are skipped by
//! default ([`GateConfig::default_skips`]). The virtual-time client benches
//! are fully deterministic and could hold a much tighter bound; they share
//! the loose one for simplicity.

use std::fmt;

/// One measurement from a `BENCH_micro.json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark id (`bench_function` name).
    pub id: String,
    /// Reported nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// Parses the criterion-shim JSON report format.
///
/// The shim emits one `{"id": ..., "ns_per_iter": ..., "iters": ...}` object
/// per result; this scanner extracts exactly those pairs, so it tolerates
/// header fields and whitespace changes without needing a JSON dependency.
pub fn parse_report(json: &str) -> Result<Vec<BenchResult>, String> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(idx) = rest.find("\"id\"") {
        rest = &rest[idx + 4..];
        let open = rest.find('"').ok_or("unterminated id field")?;
        let tail = &rest[open + 1..];
        let close = tail.find('"').ok_or("unterminated id string")?;
        let id = tail[..close].to_string();
        rest = &tail[close + 1..];
        let nidx = rest.find("\"ns_per_iter\"").ok_or_else(|| format!("{id}: no ns_per_iter"))?;
        let after =
            rest[nidx + "\"ns_per_iter\"".len()..].trim_start_matches([':', ' ', '\t']).to_string();
        let end = after
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(after.len());
        let ns: f64 = after[..end].parse().map_err(|e| format!("{id}: bad ns_per_iter: {e}"))?;
        if !ns.is_finite() || ns < 0.0 {
            return Err(format!("{id}: non-finite ns_per_iter"));
        }
        out.push(BenchResult { id, ns_per_iter: ns });
        rest = &rest[nidx..];
    }
    if out.is_empty() {
        return Err("no bench results found".into());
    }
    Ok(out)
}

/// Gate policy.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Fail when `current / baseline` exceeds this ratio.
    pub threshold: f64,
    /// Bench ids exempt from the ratio check (still reported).
    pub skip: Vec<String>,
}

impl GateConfig {
    /// Benches exempt by default. The first two run real OS threads, whose
    /// wall-clock interleaving on a one-core shared runner swings far
    /// beyond any threshold that would still catch real regressions
    /// elsewhere. `aof_append_batch_fsync` is dominated by a physical
    /// fsync, whose latency is a property of the runner's storage device
    /// (tmpfs vs local SSD vs network block storage spans 100×), not of
    /// the code; its `_nofsync` twin isolates the software share of the
    /// durable write path and *is* gated. `aof_rewrite_compact` and
    /// `run_merge` are the same story — each is a handful of fsyncs plus
    /// a rename around a modest sequential write; the gated
    /// `tiered_put_miss_memtable` (tier fsync off) covers the software
    /// share of the tiered engine's hot path.
    pub fn default_skips() -> Vec<String> {
        vec![
            "store_sharded_put_4threads_wallclock".to_string(),
            "witness_record_2masters_concurrent".to_string(),
            "aof_append_batch_fsync".to_string(),
            "aof_rewrite_compact".to_string(),
            "run_merge".to_string(),
        ]
    }
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { threshold: 2.5, skip: Self::default_skips() }
    }
}

/// One bench that tripped the gate.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Benchmark id.
    pub id: String,
    /// Baseline ns/iter.
    pub baseline_ns: f64,
    /// Current ns/iter.
    pub current_ns: f64,
}

impl Regression {
    /// Slowdown factor.
    pub fn ratio(&self) -> f64 {
        self.current_ns / self.baseline_ns.max(f64::MIN_POSITIVE)
    }
}

/// Outcome of one gate evaluation.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Benches compared against the baseline.
    pub checked: usize,
    /// Benches skipped by policy.
    pub skipped: usize,
    /// Benches only in the current run (enter the baseline when it is next
    /// refreshed; never a failure).
    pub new_benches: Vec<String>,
    /// Baseline benches absent from the current run (a failure).
    pub missing: Vec<String>,
    /// Benches beyond the slowdown threshold (a failure).
    pub regressions: Vec<Regression>,
}

impl GateReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bench gate: {} checked, {} skipped, {} new, {} missing, {} regressed",
            self.checked,
            self.skipped,
            self.new_benches.len(),
            self.missing.len(),
            self.regressions.len()
        )?;
        for id in &self.new_benches {
            writeln!(f, "  new      {id} (not in baseline; refresh BENCH_micro.json)")?;
        }
        for id in &self.missing {
            writeln!(f, "  MISSING  {id} (in baseline, absent from this run)")?;
        }
        for r in &self.regressions {
            writeln!(
                f,
                "  REGRESSED {}: {:.1} -> {:.1} ns/iter ({:.2}x)",
                r.id,
                r.baseline_ns,
                r.current_ns,
                r.ratio()
            )?;
        }
        Ok(())
    }
}

/// Evaluates `current` against `baseline` under `config`.
pub fn evaluate(
    baseline: &[BenchResult],
    current: &[BenchResult],
    config: &GateConfig,
) -> GateReport {
    let mut report = GateReport::default();
    for b in baseline {
        let skipped = config.skip.iter().any(|s| s == &b.id);
        match current.iter().find(|c| c.id == b.id) {
            None => report.missing.push(b.id.clone()),
            Some(_) if skipped => report.skipped += 1,
            Some(c) => {
                report.checked += 1;
                if c.ns_per_iter > b.ns_per_iter * config.threshold {
                    report.regressions.push(Regression {
                        id: b.id.clone(),
                        baseline_ns: b.ns_per_iter,
                        current_ns: c.ns_per_iter,
                    });
                }
            }
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.id == c.id) {
            report.new_benches.push(c.id.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(id: &str, ns: f64) -> BenchResult {
        BenchResult { id: id.into(), ns_per_iter: ns }
    }

    const SAMPLE: &str = r#"{
  "harness": "criterion-shim",
  "mode": "smoke",
  "results": [
    {"id": "store_put_100b", "ns_per_iter": 236.7, "iters": 1136363},
    {"id": "keyhash_30b", "ns_per_iter": 16.4, "iters": 2000000}
  ]
}"#;

    #[test]
    fn parses_the_shim_report() {
        let parsed = parse_report(SAMPLE).unwrap();
        assert_eq!(parsed, vec![r("store_put_100b", 236.7), r("keyhash_30b", 16.4)]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report(r#"{"id": "x", "iters": 3}"#).is_err());
        assert!(parse_report(r#"{"id": "x", "ns_per_iter": "fast"}"#).is_err());
    }

    #[test]
    fn within_threshold_passes() {
        let base = vec![r("a", 100.0), r("b", 50.0)];
        let cur = vec![r("a", 240.0), r("b", 20.0)]; // 2.4x and a speedup
        let report = evaluate(&base, &cur, &GateConfig::default());
        assert!(report.passed(), "{report}");
        assert_eq!(report.checked, 2);
    }

    #[test]
    fn slowdown_beyond_threshold_fails() {
        let base = vec![r("a", 100.0)];
        let cur = vec![r("a", 251.0)];
        let report = evaluate(&base, &cur, &GateConfig::default());
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert!((report.regressions[0].ratio() - 2.51).abs() < 1e-9);
    }

    #[test]
    fn missing_baseline_bench_fails() {
        let base = vec![r("a", 100.0), r("gone", 10.0)];
        let cur = vec![r("a", 100.0)];
        let report = evaluate(&base, &cur, &GateConfig::default());
        assert!(!report.passed());
        assert_eq!(report.missing, vec!["gone".to_string()]);
    }

    #[test]
    fn new_benches_are_reported_but_pass() {
        let base = vec![r("a", 100.0)];
        let cur = vec![r("a", 100.0), r("fresh", 5.0)];
        let report = evaluate(&base, &cur, &GateConfig::default());
        assert!(report.passed());
        assert_eq!(report.new_benches, vec!["fresh".to_string()]);
    }

    #[test]
    fn skipped_benches_never_regress() {
        let base = vec![r("store_sharded_put_4threads_wallclock", 100.0)];
        let cur = vec![r("store_sharded_put_4threads_wallclock", 10_000.0)];
        let report = evaluate(&base, &cur, &GateConfig::default());
        assert!(report.passed());
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn gate_passes_on_the_committed_baseline_against_itself() {
        // The real committed baseline must parse and self-compare clean.
        let committed = include_str!("../../../BENCH_micro.json");
        let base = parse_report(committed).unwrap();
        let report = evaluate(&base, &base, &GateConfig::default());
        assert!(report.passed(), "{report}");
        assert!(report.checked >= 15, "baseline unexpectedly small");
    }
}
