//! The CURP client (§3.2.1).
//!
//! The 1-RTT fast path: for each update, the client sends the update RPC to
//! the master *and* record RPCs to all `f` witnesses in parallel. It
//! completes the operation when
//!
//! * the master responded `synced` (the master already replicated — 2 RTT
//!   total, no client sync needed, §3.2.3), or
//! * the master responded speculatively *and* every witness accepted (1 RTT).
//!
//! Otherwise it falls back to an explicit `sync` RPC (2–3 RTT), and if that
//! fails it restarts the whole operation — re-fetching the configuration in
//! case the master crashed and was recovered elsewhere. Retries reuse the
//! same RIFL id so re-executions are filtered.
//!
//! [`PipelinedClient`] layers a windowed, batching mode on top: up to a
//! configured number of operations stay in flight per partition, flushed as
//! `Batch` frames and resolved through [`Completion`] futures keyed by RIFL
//! id, with routing by [`ClusterConfig::partition_for`] so one handle drives
//! every master of a partitioned cluster concurrently.

use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll};
use std::time::Duration;

use curp_proto::cluster::{ClusterConfig, PartitionConfig};
use curp_proto::footprint::Footprint;
use curp_proto::lockrank;
use curp_proto::message::{RecordedRequest, Request, Response};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{MasterId, RpcId, ServerId};
use curp_rifl::RiflSequencer;
use curp_transport::rpc::RpcClient;
use parking_lot::Mutex;
use tokio::sync::{mpsc, oneshot, OwnedSemaphorePermit, Semaphore};

use crate::master::futures_join_all;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Retries exhausted; carries the last failure description.
    Exhausted(String),
    /// A multi-key operation spanned more than one partition (not routable).
    MultiPartition,
    /// No partition owns the key (mis-configured cluster).
    NoPartition,
    /// The coordinator could not be reached.
    Coordinator(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted(s) => write!(f, "retries exhausted: {s}"),
            ClientError::MultiPartition => write!(f, "operation spans partitions"),
            ClientError::NoPartition => write!(f, "no partition owns the key"),
            ClientError::Coordinator(s) => write!(f, "coordinator error: {s}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Client tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Whether to record updates on witnesses (`false` reproduces the
    /// paper's *Async* baseline: masters respond before replication and the
    /// client completes without any durability — Figure 6's "Async (f=3)").
    pub record_witnesses: bool,
    /// Attempts before giving up on an operation.
    pub max_retries: u32,
    /// Base backoff between retries; attempt `n` waits roughly
    /// `retry_backoff * 2^(n-1)`, jittered, capped at `retry_backoff_max`.
    pub retry_backoff: Duration,
    /// Ceiling on the exponential backoff. A draining or recovering master
    /// can be unavailable for many base intervals; without the exponential
    /// ramp every parked client re-sends in lockstep and hammers it the
    /// moment it returns.
    pub retry_backoff_max: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            record_witnesses: true,
            max_retries: 25,
            retry_backoff: Duration::from_millis(10),
            retry_backoff_max: Duration::from_millis(160),
        }
    }
}

/// Bounded exponential backoff for retry `attempt` (1-based), with
/// deterministic jitter in `[b/2, b]` derived from `salt` — callers pass a
/// per-operation value (e.g. the RIFL id) so concurrent clients de-sync
/// without OS randomness, which would break simulator determinism.
fn retry_delay(base: Duration, max: Duration, attempt: u32, salt: u64) -> Duration {
    let b = base.saturating_mul(1u32 << (attempt - 1).min(16)).min(max).max(base);
    // splitmix64 finalizer over (salt, attempt): cheap, well-mixed bits.
    let mut z = salt ^ (u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let half = b / 2;
    half + Duration::from_nanos(z % (half.as_nanos().max(1) as u64))
}

/// Path counters (tests, figures).
#[derive(Debug, Default)]
pub struct ClientStats {
    /// Operations completed on the 1-RTT fast path.
    pub fast_path: AtomicU64,
    /// Operations completed because the master synced (2 RTT, no client sync).
    pub synced_by_master: AtomicU64,
    /// Operations that needed an explicit sync RPC (2–3 RTT).
    pub explicit_sync: AtomicU64,
    /// Full operation restarts.
    pub restarts: AtomicU64,
}

struct ClientState {
    config: ClusterConfig,
    rifl: RiflSequencer,
}

/// A CURP client handle. Cheap to share via `Arc`; all methods take `&self`.
pub struct CurpClient {
    rpc: Arc<dyn RpcClient>,
    coordinator: ServerId,
    cfg: ClientConfig,
    state: Mutex<ClientState>,
    /// Path statistics.
    pub stats: ClientStats,
}

impl CurpClient {
    /// Connects: acquires a RIFL lease and fetches the cluster configuration.
    pub async fn connect(
        rpc: Arc<dyn RpcClient>,
        coordinator: ServerId,
        cfg: ClientConfig,
    ) -> Result<CurpClient, ClientError> {
        let lease = match rpc.call(coordinator, Request::AcquireLease).await {
            Ok(Response::Lease { client, .. }) => client,
            other => return Err(ClientError::Coordinator(format!("{other:?}"))),
        };
        let config = match rpc.call(coordinator, Request::GetConfig).await {
            Ok(Response::Config { config }) => config,
            other => return Err(ClientError::Coordinator(format!("{other:?}"))),
        };
        Ok(CurpClient {
            rpc,
            coordinator,
            cfg,
            state: Mutex::ranked(
                lockrank::CLIENT_STATE,
                "core.client.state",
                ClientState { config, rifl: RiflSequencer::new(lease) },
            ),
            stats: ClientStats::default(),
        })
    }

    /// Re-fetches the cluster configuration from the coordinator.
    pub async fn refresh_config(&self) -> Result<(), ClientError> {
        match self.rpc.call(self.coordinator, Request::GetConfig).await {
            Ok(Response::Config { config }) => {
                let mut st = self.state.lock();
                if config.version >= st.config.version {
                    st.config = config;
                }
                Ok(())
            }
            other => Err(ClientError::Coordinator(format!("{other:?}"))),
        }
    }

    /// Renews the client's RIFL lease.
    pub async fn renew_lease(&self) -> Result<(), ClientError> {
        let client = self.state.lock().rifl.client_id();
        match self.rpc.call(self.coordinator, Request::RenewLease { client }).await {
            Ok(Response::Lease { .. }) => Ok(()),
            other => Err(ClientError::Coordinator(format!("{other:?}"))),
        }
    }

    /// Routes an operation by its (precomputed) footprint — the same
    /// hashes later recorded on witnesses, computed once per RPC.
    fn route(&self, footprint: &Footprint) -> Result<PartitionConfig, ClientError> {
        let st = self.state.lock();
        let first = *footprint.first().ok_or(ClientError::NoPartition)?;
        let part = st.config.partition_for(first).ok_or(ClientError::NoPartition)?.clone();
        if !footprint.iter().all(|&h| part.range.contains(h)) {
            return Err(ClientError::MultiPartition);
        }
        Ok(part)
    }

    /// Executes a mutation with CURP's fast path. Linearizable: the result
    /// is durable (f-fault-tolerant) when this returns.
    pub async fn update(&self, op: Op) -> Result<OpResult, ClientError> {
        let rpc_id = self.state.lock().rifl.next_rpc_id();
        self.update_with_id(rpc_id, op).await
    }

    /// The full retry loop for one mutation under an already-assigned RIFL
    /// id (re-used by [`PipelinedClient`] when a batched attempt needs a
    /// per-op restart; re-executions are filtered by the id).
    async fn update_with_id(&self, rpc_id: RpcId, op: Op) -> Result<OpResult, ClientError> {
        let footprint = op.key_hashes();
        let mut last_err = String::new();
        for attempt in 0..self.cfg.max_retries {
            if attempt > 0 {
                self.stats.restarts.fetch_add(1, Ordering::Relaxed);
                tokio::time::sleep(retry_delay(
                    self.cfg.retry_backoff,
                    self.cfg.retry_backoff_max,
                    attempt,
                    rpc_id.client.0.rotate_left(32) ^ rpc_id.seq,
                ))
                .await;
            }
            let part = match self.route(&footprint) {
                Ok(p) => p,
                Err(ClientError::NoPartition) => {
                    self.refresh_config().await.ok();
                    last_err = "no partition".into();
                    continue;
                }
                Err(e) => return Err(e),
            };
            match self.try_once(&part, rpc_id, &op, &footprint).await {
                TryOutcome::Done(result) => {
                    self.state.lock().rifl.complete(rpc_id);
                    return Ok(result);
                }
                TryOutcome::RefreshAndRetry(err) => {
                    last_err = err;
                    self.refresh_config().await.ok();
                }
            }
        }
        Err(ClientError::Exhausted(last_err))
    }

    async fn try_once(
        &self,
        part: &PartitionConfig,
        rpc_id: RpcId,
        op: &Op,
        footprint: &Footprint,
    ) -> TryOutcome {
        let first_incomplete = self.state.lock().rifl.first_incomplete();
        let update_fut = self.rpc.call(
            part.master,
            Request::ClientUpdate {
                rpc_id,
                first_incomplete,
                witness_list_version: part.witness_list_version,
                op: op.clone(),
            },
        );
        // Record RPCs go out in parallel with the update (§3.2.1). The
        // record carries the footprint computed once in `update`.
        let witnesses: Vec<ServerId> =
            if self.cfg.record_witnesses { part.witnesses.clone() } else { Vec::new() };
        let record = RecordedRequest {
            master_id: part.master_id,
            rpc_id,
            key_hashes: footprint.clone(),
            op: op.clone(),
        };
        let record_futs: Vec<_> = witnesses
            .iter()
            .map(|&w| self.rpc.call(w, Request::WitnessRecord { request: record.clone() }))
            .collect();

        let (master_rsp, witness_rsps) = tokio::join!(update_fut, futures_join_all(record_futs));

        let (result, synced) = match master_rsp {
            Ok(Response::Update { result, synced }) => (result, synced),
            Ok(Response::StaleWitnessList { .. }) => {
                return TryOutcome::RefreshAndRetry("stale witness list".into())
            }
            Ok(Response::NotOwner) => return TryOutcome::RefreshAndRetry("not owner".into()),
            Ok(Response::Retry { reason }) => return TryOutcome::RefreshAndRetry(reason),
            Ok(other) => return TryOutcome::RefreshAndRetry(format!("unexpected: {other:?}")),
            Err(e) => return TryOutcome::RefreshAndRetry(format!("master rpc: {e}")),
        };

        if synced {
            // Durable on backups; witness outcomes are irrelevant (§3.2.3).
            self.stats.synced_by_master.fetch_add(1, Ordering::Relaxed);
            return TryOutcome::Done(result);
        }
        if !self.cfg.record_witnesses {
            // Async-replication baseline: externalize without durability.
            self.stats.fast_path.fetch_add(1, Ordering::Relaxed);
            return TryOutcome::Done(result);
        }
        let all_accepted = !witnesses.is_empty()
            && witness_rsps.iter().all(|r| matches!(r, Ok(Response::RecordAccepted)));
        if all_accepted || part.fault_tolerance() == 0 {
            // 1-RTT fast path: recorded on all f witnesses (§3.2.1).
            self.stats.fast_path.fetch_add(1, Ordering::Relaxed);
            return TryOutcome::Done(result);
        }

        // Slow path: ask the master to make it durable on backups. The sync
        // names the incarnation that executed this op speculatively — a
        // recovered successor on the same server must refuse rather than
        // vouch for entries it never held.
        self.stats.explicit_sync.fetch_add(1, Ordering::Relaxed);
        match self.rpc.call(part.master, Request::Sync { master_id: part.master_id }).await {
            Ok(Response::SyncDone) => TryOutcome::Done(result),
            // "If there is no response to the sync RPC ... the client
            // restarts the entire process" (§3.2.1).
            Ok(other) => TryOutcome::RefreshAndRetry(format!("sync refused: {other:?}")),
            Err(e) => TryOutcome::RefreshAndRetry(format!("sync rpc: {e}")),
        }
    }

    /// Executes a read-only operation at the partition master (1 RTT).
    pub async fn read(&self, op: Op) -> Result<OpResult, ClientError> {
        assert!(op.is_read_only(), "use update() for mutations");
        let footprint = op.key_hashes();
        let mut last_err = String::new();
        let salt = self.state.lock().rifl.client_id().0.rotate_left(32)
            ^ footprint.first().map_or(0, |h| h.0);
        for attempt in 0..self.cfg.max_retries {
            if attempt > 0 {
                tokio::time::sleep(retry_delay(
                    self.cfg.retry_backoff,
                    self.cfg.retry_backoff_max,
                    attempt,
                    salt,
                ))
                .await;
            }
            let part = match self.route(&footprint) {
                Ok(p) => p,
                Err(e) => return Err(e),
            };
            match self.rpc.call(part.master, Request::ClientRead { op: op.clone() }).await {
                Ok(Response::Read { result }) => return Ok(result),
                Ok(Response::NotOwner) => {
                    last_err = "not owner".into();
                    self.refresh_config().await.ok();
                }
                Ok(other) => {
                    last_err = format!("unexpected: {other:?}");
                    self.refresh_config().await.ok();
                }
                Err(e) => {
                    last_err = format!("rpc: {e}");
                    self.refresh_config().await.ok();
                }
            }
        }
        Err(ClientError::Exhausted(last_err))
    }

    /// Consistent read from a backup (§A.1, 0 wide-area RTTs in
    /// geo-replication): probe a witness for commutativity; if the key has
    /// no pending update, read the backup; otherwise fall back to the master.
    ///
    /// `replica` selects which of the partition's backups/witnesses to use
    /// (e.g. the one in the local region).
    pub async fn read_nearby(&self, op: Op, replica: usize) -> Result<OpResult, ClientError> {
        assert!(op.is_read_only(), "use update() for mutations");
        let footprint = op.key_hashes();
        let part = self.route(&footprint)?;
        if part.witnesses.is_empty() || part.backups.is_empty() {
            return self.read(op).await;
        }
        let witness = part.witnesses[replica % part.witnesses.len()];
        let backup = part.backups[replica % part.backups.len()];
        let probe = self
            .rpc
            .call(
                witness,
                Request::WitnessCommuteCheck { master_id: part.master_id, key_hashes: footprint },
            )
            .await;
        match probe {
            Ok(Response::CommuteOk { commutative: true }) => {
                match self
                    .rpc
                    .call(backup, Request::BackupRead { master_id: part.master_id, op: op.clone() })
                    .await
                {
                    Ok(Response::BackupValue { result }) => Ok(result),
                    // Backup unavailable: the master always works.
                    _ => self.read(op).await,
                }
            }
            // A pending update on this key (or a frozen witness): the backup
            // may be stale, read at the master (§A.1).
            _ => self.read(op).await,
        }
    }
}

enum TryOutcome {
    Done(OpResult),
    RefreshAndRetry(String),
}

// ---- pipelined mode ---------------------------------------------------------

/// Tuning for [`PipelinedClient`].
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Maximum operations in flight per partition. [`PipelinedClient::submit`]
    /// suspends (backpressure) while a partition's window is full.
    pub window: usize,
    /// Maximum operations flushed in one [`Request::Batch`] frame.
    pub max_batch: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { window: 16, max_batch: 16 }
    }
}

/// A windowed, batching front end over [`CurpClient`].
///
/// The plain client issues one operation per in-flight RPC, so end-to-end
/// throughput is bounded by round trips. `PipelinedClient` keeps up to
/// [`PipelineConfig::window`] operations outstanding *per partition*:
/// [`submit`](Self::submit) routes the operation by its footprint
/// ([`ClusterConfig::partition_for`], so one client instance drives many
/// masters concurrently), waits for a window slot, and returns a
/// [`Completion`] future keyed by the operation's RIFL id. Queued operations
/// bound for the same partition are flushed together as one `Batch` frame —
/// the master update batch and one record batch per witness go out in
/// parallel, each record keeping its own per-op footprint so witness
/// commutativity stays per-op (§3.2.2).
///
/// Per-op outcomes follow the same state machine as [`CurpClient::update`]:
/// master-synced and fast-path completions resolve immediately; ops whose
/// records were rejected share a single explicit sync RPC per flush.
/// Refused ops (`NotOwner` after a partition split, stale witness list,
/// sealed master) refresh the map once and re-enter the pipeline on their
/// new owner's pipe — up to `MAX_REDIRECTS` times, after which (or on
/// transport errors) they fall back to the one-op retry loop under their
/// original RIFL id. The redirect keeps a live split invisible to the
/// caller: throughput for the moved range recovers to pipelined rates as
/// soon as the refreshed map lands, instead of degrading to serial retries
/// for the rest of the client's lifetime.
///
/// Operations inside the window are **concurrent**: CURP's guarantees apply
/// per operation, and two pipelined ops may execute in either order. A
/// caller that needs happens-before between two updates must await the first
/// [`Completion`] before submitting the second.
pub struct PipelinedClient {
    inner: Arc<CurpClient>,
    cfg: PipelineConfig,
    pipes: Mutex<HashMap<MasterId, Pipe>>,
    /// Handed to flushers so refused ops can re-enter the pipeline on
    /// another master's pipe; weak, so dropping the client still shuts the
    /// flushers down.
    self_weak: Weak<PipelinedClient>,
}

/// Times a refused op may hop between pipes before degrading to the serial
/// retry loop (guards against a stale map ping-ponging an op forever).
const MAX_REDIRECTS: u32 = 3;

struct Pipe {
    queue: mpsc::UnboundedSender<PendingOp>,
    window: Arc<Semaphore>,
}

/// One submitted-but-unresolved operation, owned by its partition's flusher.
struct PendingOp {
    rpc_id: RpcId,
    op: Op,
    footprint: Footprint,
    /// Window slot; dropping it (on completion) re-opens the window.
    /// A redirected op keeps the permit of the pipe it was submitted on, so
    /// total in-flight operations stay bounded across a migration.
    permit: OwnedSemaphorePermit,
    done: oneshot::Sender<Result<OpResult, ClientError>>,
    /// How many times this op has been re-routed to a different pipe.
    redirects: u32,
}

/// Completion future for a pipelined operation, keyed by its RIFL id.
pub struct Completion {
    rpc_id: RpcId,
    rx: oneshot::Receiver<Result<OpResult, ClientError>>,
}

impl Completion {
    /// The RIFL id assigned to this operation at submission.
    pub fn rpc_id(&self) -> RpcId {
        self.rpc_id
    }
}

impl Future for Completion {
    type Output = Result<OpResult, ClientError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut self.rx).poll(cx).map(|r| match r {
            Ok(result) => result,
            Err(_) => Err(ClientError::Exhausted("pipeline dropped before completion".into())),
        })
    }
}

impl PipelinedClient {
    /// Wraps a connected client in a pipelined front end.
    pub fn new(inner: Arc<CurpClient>, cfg: PipelineConfig) -> Arc<PipelinedClient> {
        assert!(cfg.window > 0 && cfg.max_batch > 0);
        Arc::new_cyclic(|self_weak| PipelinedClient {
            inner,
            cfg,
            pipes: Mutex::ranked(lockrank::CLIENT_PIPES, "core.client.pipes", HashMap::new()),
            self_weak: self_weak.clone(),
        })
    }

    /// The wrapped client (shared configuration, stats and RIFL lease).
    pub fn inner(&self) -> &Arc<CurpClient> {
        &self.inner
    }

    /// Enqueues an operation (mutation or read) on its partition's pipeline.
    ///
    /// Suspends while the partition's window is full — this is the
    /// backpressure that keeps an open-loop generator from queueing without
    /// bound — and resolves to a [`Completion`] future once a slot is held.
    pub async fn submit(&self, op: Op) -> Result<Completion, ClientError> {
        let footprint = op.key_hashes();
        let part = match self.inner.route(&footprint) {
            Ok(p) => p,
            Err(ClientError::NoPartition) => {
                self.inner.refresh_config().await?;
                self.inner.route(&footprint)?
            }
            Err(e) => return Err(e),
        };
        let (window, queue) = self.pipe_for(&part);
        let permit = window
            .acquire_owned()
            .await
            .map_err(|_| ClientError::Exhausted("pipeline window closed".into()))?;
        let rpc_id = self.inner.state.lock().rifl.next_rpc_id();
        let (done, rx) = oneshot::channel();
        if queue.send(PendingOp { rpc_id, op, footprint, permit, done, redirects: 0 }).is_err() {
            return Err(ClientError::Exhausted("pipeline flusher gone".into()));
        }
        Ok(Completion { rpc_id, rx })
    }

    /// Submits and awaits one operation (convenience; no pipelining benefit
    /// unless other submissions are in flight).
    pub async fn update(&self, op: Op) -> Result<OpResult, ClientError> {
        self.submit(op).await?.await
    }

    /// Returns (creating on first use) the pipe for `part`'s master.
    ///
    /// A partition that moves to a new master incarnation simply gets a new
    /// pipe; the old flusher drains its queue and then idles harmlessly
    /// until the client is dropped.
    fn pipe_for(
        &self,
        part: &PartitionConfig,
    ) -> (Arc<Semaphore>, mpsc::UnboundedSender<PendingOp>) {
        let mut pipes = self.pipes.lock();
        let pipe = pipes.entry(part.master_id).or_insert_with(|| {
            let window = Arc::new(Semaphore::new(self.cfg.window));
            let (tx, rx) = mpsc::unbounded_channel();
            tokio::spawn(run_pipe(
                Arc::clone(&self.inner),
                self.self_weak.clone(),
                part.master_id,
                self.cfg.max_batch,
                rx,
            ));
            Pipe { queue: tx, window }
        });
        (Arc::clone(&pipe.window), pipe.queue.clone())
    }
}

/// Per-partition flusher: drains the queue into batches of at most
/// `max_batch` ops and spawns one flush per batch. Flushes overlap — the
/// pipe keeps draining while earlier batches' RPCs are in flight; the
/// window semaphore is what bounds total outstanding operations. Exits when
/// the owning [`PipelinedClient`] is dropped.
async fn run_pipe(
    inner: Arc<CurpClient>,
    pipeline: Weak<PipelinedClient>,
    master_id: MasterId,
    max_batch: usize,
    mut rx: mpsc::UnboundedReceiver<PendingOp>,
) {
    while let Some(first) = rx.recv().await {
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(p) => batch.push(p),
                Err(_) => break,
            }
        }
        tokio::spawn(flush_batch(Arc::clone(&inner), pipeline.clone(), master_id, batch));
    }
}

/// Sends one flushed batch: the master update/read batch in parallel with
/// one record batch per witness, then resolves every op per the fast-path
/// rules (or coalesces one sync RPC / falls back per op).
async fn flush_batch(
    inner: Arc<CurpClient>,
    pipeline: Weak<PipelinedClient>,
    master_id: MasterId,
    batch: Vec<PendingOp>,
) {
    let (part, first_incomplete) = {
        let st = inner.state.lock();
        (st.config.partition_by_master(master_id).cloned(), st.rifl.first_incomplete())
    };
    let Some(part) = part else {
        // The partition vanished from the map while queued (split, churn):
        // refresh once and re-route the whole batch to the new owners.
        redirect_moved(&inner, &pipeline, batch);
        return;
    };
    let record_witnesses = inner.cfg.record_witnesses;

    let mut master_reqs = Vec::with_capacity(batch.len());
    let mut record_reqs = Vec::new();
    // batch index of the op behind each record request (reads record nothing).
    let mut record_slots = Vec::new();
    for (i, p) in batch.iter().enumerate() {
        if p.op.is_read_only() {
            master_reqs.push(Request::ClientRead { op: p.op.clone() });
            continue;
        }
        master_reqs.push(Request::ClientUpdate {
            rpc_id: p.rpc_id,
            first_incomplete,
            witness_list_version: part.witness_list_version,
            op: p.op.clone(),
        });
        if record_witnesses && !part.witnesses.is_empty() {
            // Each record keeps its own footprint: the witness checks
            // commutativity per op, exactly as in the unbatched path.
            record_reqs.push(Request::WitnessRecord {
                request: RecordedRequest {
                    master_id: part.master_id,
                    rpc_id: p.rpc_id,
                    key_hashes: p.footprint.clone(),
                    op: p.op.clone(),
                },
            });
            record_slots.push(i);
        }
    }

    let record_futs: Vec<_> = if record_reqs.is_empty() {
        Vec::new()
    } else {
        part.witnesses.iter().map(|&w| inner.rpc.call_batch(w, record_reqs.clone())).collect()
    };
    let master_fut = inner.rpc.call_batch(part.master, master_reqs);
    let (master_rsp, witness_rsps) = tokio::join!(master_fut, futures_join_all(record_futs));

    let master_rsps = match master_rsp {
        Ok(r) if r.len() == batch.len() => r,
        _ => {
            for p in batch {
                fallback(&inner, p);
            }
            return;
        }
    };

    // accepted[j]: every witness accepted record_reqs[j]. An unreachable or
    // short-replying witness fails the whole flush's records (the op is not
    // durable on all f witnesses), same as the unbatched all-accepted rule.
    let mut accepted = vec![!witness_rsps.is_empty(); record_slots.len()];
    for w in &witness_rsps {
        match w {
            Ok(rsps) if rsps.len() == accepted.len() => {
                for (j, r) in rsps.iter().enumerate() {
                    if !matches!(r, Response::RecordAccepted) {
                        accepted[j] = false;
                    }
                }
            }
            _ => accepted.iter_mut().for_each(|a| *a = false),
        }
    }
    let mut accepted_at: HashMap<usize, bool> = record_slots.into_iter().zip(accepted).collect();

    let mut need_sync: Vec<(PendingOp, OpResult)> = Vec::new();
    let mut moved: Vec<PendingOp> = Vec::new();
    for (i, (p, rsp)) in batch.into_iter().zip(master_rsps).enumerate() {
        match rsp {
            // Reads hold no completion record at the master, but their RIFL
            // id must still be acknowledged or the piggybacked watermark
            // (and with it completion-record GC) would stall behind them.
            Response::Read { result } => complete(&inner, p, result),
            Response::Update { result, synced } => {
                if synced {
                    inner.stats.synced_by_master.fetch_add(1, Ordering::Relaxed);
                    complete(&inner, p, result);
                } else if !record_witnesses
                    // Async baseline completes unrecorded; otherwise the
                    // 1-RTT rule: all f witnesses accepted (or f == 0).
                    || accepted_at.remove(&i).unwrap_or(false)
                    || part.fault_tolerance() == 0
                {
                    inner.stats.fast_path.fetch_add(1, Ordering::Relaxed);
                    complete(&inner, p, result);
                } else {
                    need_sync.push((p, result));
                }
            }
            // NotOwner (the range split away) / StaleWitnessList / Retry
            // (sealed mid-migration): refresh the map once for the whole
            // flush and put the op back on its (possibly new) owner's pipe.
            _ => moved.push(p),
        }
    }
    redirect_moved(&inner, &pipeline, moved);

    if !need_sync.is_empty() {
        // One explicit sync covers every op in the flush: a successful sync
        // makes the master's whole unsynced prefix durable (§3.2.3). Like
        // the unbatched path, it is bound to the incarnation that executed
        // the flush — a recovered successor must refuse.
        match inner.rpc.call(part.master, Request::Sync { master_id: part.master_id }).await {
            Ok(Response::SyncDone) => {
                for (p, result) in need_sync {
                    inner.stats.explicit_sync.fetch_add(1, Ordering::Relaxed);
                    complete(&inner, p, result);
                }
            }
            _ => {
                for (p, _) in need_sync {
                    fallback(&inner, p);
                }
            }
        }
    }
}

/// Resolves a pipelined mutation: records RIFL completion, delivers the
/// result, and (by dropping the op) releases its window slot.
fn complete(inner: &Arc<CurpClient>, p: PendingOp, result: OpResult) {
    inner.state.lock().rifl.complete(p.rpc_id);
    let _ = p.done.send(Ok(result));
}

/// Restarts one op through the one-op retry path (same RIFL id, so a
/// re-execution is filtered) without stalling the flusher.
fn fallback(inner: &Arc<CurpClient>, p: PendingOp) {
    let inner = Arc::clone(inner);
    tokio::spawn(async move {
        let PendingOp { rpc_id, op, permit, done, .. } = p;
        let res = if op.is_read_only() {
            let res = inner.read(op).await;
            // No completion record exists for a read; acknowledge its id
            // unconditionally so the RIFL watermark keeps advancing.
            inner.state.lock().rifl.complete(rpc_id);
            res
        } else {
            // update_with_id records the RIFL completion itself on success.
            inner.update_with_id(rpc_id, op).await
        };
        let _ = done.send(res);
        drop(permit);
    });
}

/// Re-routes ops refused by a master whose range moved: refreshes the map
/// once, then re-enqueues each op on the pipe of whichever partition owns
/// it under the refreshed map. This is what keeps a partition split
/// invisible to throughput — the moved range's traffic hops to the new
/// master's pipe and stays batched, rather than degrading permanently to
/// the serial retry loop. Ops that exhaust [`MAX_REDIRECTS`], ops the
/// refreshed map cannot route, and everything after the owning
/// [`PipelinedClient`] is dropped fall back to [`fallback`].
fn redirect_moved(
    inner: &Arc<CurpClient>,
    pipeline: &Weak<PipelinedClient>,
    moved: Vec<PendingOp>,
) {
    if moved.is_empty() {
        return;
    }
    let inner = Arc::clone(inner);
    let pipeline = pipeline.clone();
    tokio::spawn(async move {
        inner.refresh_config().await.ok();
        for mut p in moved {
            let routed = pipeline.upgrade().and_then(|pl| {
                let part = inner.route(&p.footprint).ok()?;
                Some((pl, part))
            });
            match routed {
                Some((pl, part)) if p.redirects < MAX_REDIRECTS => {
                    p.redirects += 1;
                    let (_, queue) = pl.pipe_for(&part);
                    if let Err(back) = queue.send(p) {
                        fallback(&inner, back.0);
                    }
                }
                _ => fallback(&inner, p),
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delay_ramps_and_caps() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(160);
        let mut prev_ceiling = Duration::ZERO;
        for attempt in 1..=10u32 {
            let d = retry_delay(base, max, attempt, 0xBEEF);
            let ceiling = base.saturating_mul(1 << (attempt - 1)).min(max);
            assert!(d >= ceiling / 2, "attempt {attempt}: {d:?} below half-ceiling");
            assert!(d <= ceiling, "attempt {attempt}: {d:?} above ceiling {ceiling:?}");
            assert!(ceiling >= prev_ceiling, "backoff envelope must be monotone");
            prev_ceiling = ceiling;
        }
        // Past the cap every attempt draws from the same [max/2, max] band.
        let d = retry_delay(base, max, 40, 7);
        assert!(d >= max / 2 && d <= max);
    }

    #[test]
    fn retry_delay_is_deterministic_and_salted() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(160);
        assert_eq!(retry_delay(base, max, 3, 42), retry_delay(base, max, 3, 42));
        // Different salts must de-sync (not a hard guarantee per pair, but
        // these particular values differ — determinism makes this stable).
        assert_ne!(retry_delay(base, max, 3, 1), retry_delay(base, max, 3, 2));
    }
}
