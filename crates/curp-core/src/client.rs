//! The CURP client (§3.2.1).
//!
//! The 1-RTT fast path: for each update, the client sends the update RPC to
//! the master *and* record RPCs to all `f` witnesses in parallel. It
//! completes the operation when
//!
//! * the master responded `synced` (the master already replicated — 2 RTT
//!   total, no client sync needed, §3.2.3), or
//! * the master responded speculatively *and* every witness accepted (1 RTT).
//!
//! Otherwise it falls back to an explicit `sync` RPC (2–3 RTT), and if that
//! fails it restarts the whole operation — re-fetching the configuration in
//! case the master crashed and was recovered elsewhere. Retries reuse the
//! same RIFL id so re-executions are filtered.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use curp_proto::cluster::{ClusterConfig, PartitionConfig};
use curp_proto::footprint::Footprint;
use curp_proto::message::{RecordedRequest, Request, Response};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{RpcId, ServerId};
use curp_rifl::RiflSequencer;
use curp_transport::rpc::RpcClient;
use parking_lot::Mutex;

use crate::master::futures_join_all;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Retries exhausted; carries the last failure description.
    Exhausted(String),
    /// A multi-key operation spanned more than one partition (not routable).
    MultiPartition,
    /// No partition owns the key (mis-configured cluster).
    NoPartition,
    /// The coordinator could not be reached.
    Coordinator(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted(s) => write!(f, "retries exhausted: {s}"),
            ClientError::MultiPartition => write!(f, "operation spans partitions"),
            ClientError::NoPartition => write!(f, "no partition owns the key"),
            ClientError::Coordinator(s) => write!(f, "coordinator error: {s}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Client tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Whether to record updates on witnesses (`false` reproduces the
    /// paper's *Async* baseline: masters respond before replication and the
    /// client completes without any durability — Figure 6's "Async (f=3)").
    pub record_witnesses: bool,
    /// Attempts before giving up on an operation.
    pub max_retries: u32,
    /// Backoff between retries.
    pub retry_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            record_witnesses: true,
            max_retries: 25,
            retry_backoff: Duration::from_millis(10),
        }
    }
}

/// Path counters (tests, figures).
#[derive(Debug, Default)]
pub struct ClientStats {
    /// Operations completed on the 1-RTT fast path.
    pub fast_path: AtomicU64,
    /// Operations completed because the master synced (2 RTT, no client sync).
    pub synced_by_master: AtomicU64,
    /// Operations that needed an explicit sync RPC (2–3 RTT).
    pub explicit_sync: AtomicU64,
    /// Full operation restarts.
    pub restarts: AtomicU64,
}

struct ClientState {
    config: ClusterConfig,
    rifl: RiflSequencer,
}

/// A CURP client handle. Cheap to share via `Arc`; all methods take `&self`.
pub struct CurpClient {
    rpc: Arc<dyn RpcClient>,
    coordinator: ServerId,
    cfg: ClientConfig,
    state: Mutex<ClientState>,
    /// Path statistics.
    pub stats: ClientStats,
}

impl CurpClient {
    /// Connects: acquires a RIFL lease and fetches the cluster configuration.
    pub async fn connect(
        rpc: Arc<dyn RpcClient>,
        coordinator: ServerId,
        cfg: ClientConfig,
    ) -> Result<CurpClient, ClientError> {
        let lease = match rpc.call(coordinator, Request::AcquireLease).await {
            Ok(Response::Lease { client, .. }) => client,
            other => return Err(ClientError::Coordinator(format!("{other:?}"))),
        };
        let config = match rpc.call(coordinator, Request::GetConfig).await {
            Ok(Response::Config { config }) => config,
            other => return Err(ClientError::Coordinator(format!("{other:?}"))),
        };
        Ok(CurpClient {
            rpc,
            coordinator,
            cfg,
            state: Mutex::new(ClientState { config, rifl: RiflSequencer::new(lease) }),
            stats: ClientStats::default(),
        })
    }

    /// Re-fetches the cluster configuration from the coordinator.
    pub async fn refresh_config(&self) -> Result<(), ClientError> {
        match self.rpc.call(self.coordinator, Request::GetConfig).await {
            Ok(Response::Config { config }) => {
                let mut st = self.state.lock();
                if config.version >= st.config.version {
                    st.config = config;
                }
                Ok(())
            }
            other => Err(ClientError::Coordinator(format!("{other:?}"))),
        }
    }

    /// Renews the client's RIFL lease.
    pub async fn renew_lease(&self) -> Result<(), ClientError> {
        let client = self.state.lock().rifl.client_id();
        match self.rpc.call(self.coordinator, Request::RenewLease { client }).await {
            Ok(Response::Lease { .. }) => Ok(()),
            other => Err(ClientError::Coordinator(format!("{other:?}"))),
        }
    }

    /// Routes an operation by its (precomputed) footprint — the same
    /// hashes later recorded on witnesses, computed once per RPC.
    fn route(&self, footprint: &Footprint) -> Result<PartitionConfig, ClientError> {
        let st = self.state.lock();
        let first = *footprint.first().ok_or(ClientError::NoPartition)?;
        let part = st.config.partition_for(first).ok_or(ClientError::NoPartition)?.clone();
        if !footprint.iter().all(|&h| part.range.contains(h)) {
            return Err(ClientError::MultiPartition);
        }
        Ok(part)
    }

    /// Executes a mutation with CURP's fast path. Linearizable: the result
    /// is durable (f-fault-tolerant) when this returns.
    pub async fn update(&self, op: Op) -> Result<OpResult, ClientError> {
        let rpc_id = self.state.lock().rifl.next_rpc_id();
        let footprint = op.key_hashes();
        let mut last_err = String::new();
        for attempt in 0..self.cfg.max_retries {
            if attempt > 0 {
                self.stats.restarts.fetch_add(1, Ordering::Relaxed);
                tokio::time::sleep(self.cfg.retry_backoff).await;
            }
            let part = match self.route(&footprint) {
                Ok(p) => p,
                Err(ClientError::NoPartition) => {
                    self.refresh_config().await.ok();
                    last_err = "no partition".into();
                    continue;
                }
                Err(e) => return Err(e),
            };
            match self.try_once(&part, rpc_id, &op, &footprint).await {
                TryOutcome::Done(result) => {
                    self.state.lock().rifl.complete(rpc_id);
                    return Ok(result);
                }
                TryOutcome::RefreshAndRetry(err) => {
                    last_err = err;
                    self.refresh_config().await.ok();
                }
            }
        }
        Err(ClientError::Exhausted(last_err))
    }

    async fn try_once(
        &self,
        part: &PartitionConfig,
        rpc_id: RpcId,
        op: &Op,
        footprint: &Footprint,
    ) -> TryOutcome {
        let first_incomplete = self.state.lock().rifl.first_incomplete();
        let update_fut = self.rpc.call(
            part.master,
            Request::ClientUpdate {
                rpc_id,
                first_incomplete,
                witness_list_version: part.witness_list_version,
                op: op.clone(),
            },
        );
        // Record RPCs go out in parallel with the update (§3.2.1). The
        // record carries the footprint computed once in `update`.
        let witnesses: Vec<ServerId> =
            if self.cfg.record_witnesses { part.witnesses.clone() } else { Vec::new() };
        let record = RecordedRequest {
            master_id: part.master_id,
            rpc_id,
            key_hashes: footprint.clone(),
            op: op.clone(),
        };
        let record_futs: Vec<_> = witnesses
            .iter()
            .map(|&w| self.rpc.call(w, Request::WitnessRecord { request: record.clone() }))
            .collect();

        let (master_rsp, witness_rsps) = tokio::join!(update_fut, futures_join_all(record_futs));

        let (result, synced) = match master_rsp {
            Ok(Response::Update { result, synced }) => (result, synced),
            Ok(Response::StaleWitnessList { .. }) => {
                return TryOutcome::RefreshAndRetry("stale witness list".into())
            }
            Ok(Response::NotOwner) => return TryOutcome::RefreshAndRetry("not owner".into()),
            Ok(Response::Retry { reason }) => return TryOutcome::RefreshAndRetry(reason),
            Ok(other) => return TryOutcome::RefreshAndRetry(format!("unexpected: {other:?}")),
            Err(e) => return TryOutcome::RefreshAndRetry(format!("master rpc: {e}")),
        };

        if synced {
            // Durable on backups; witness outcomes are irrelevant (§3.2.3).
            self.stats.synced_by_master.fetch_add(1, Ordering::Relaxed);
            return TryOutcome::Done(result);
        }
        if !self.cfg.record_witnesses {
            // Async-replication baseline: externalize without durability.
            self.stats.fast_path.fetch_add(1, Ordering::Relaxed);
            return TryOutcome::Done(result);
        }
        let all_accepted = !witnesses.is_empty()
            && witness_rsps.iter().all(|r| matches!(r, Ok(Response::RecordAccepted)));
        if all_accepted || part.fault_tolerance() == 0 {
            // 1-RTT fast path: recorded on all f witnesses (§3.2.1).
            self.stats.fast_path.fetch_add(1, Ordering::Relaxed);
            return TryOutcome::Done(result);
        }

        // Slow path: ask the master to make it durable on backups.
        self.stats.explicit_sync.fetch_add(1, Ordering::Relaxed);
        match self.rpc.call(part.master, Request::Sync).await {
            Ok(Response::SyncDone) => TryOutcome::Done(result),
            // "If there is no response to the sync RPC ... the client
            // restarts the entire process" (§3.2.1).
            Ok(other) => TryOutcome::RefreshAndRetry(format!("sync refused: {other:?}")),
            Err(e) => TryOutcome::RefreshAndRetry(format!("sync rpc: {e}")),
        }
    }

    /// Executes a read-only operation at the partition master (1 RTT).
    pub async fn read(&self, op: Op) -> Result<OpResult, ClientError> {
        assert!(op.is_read_only(), "use update() for mutations");
        let footprint = op.key_hashes();
        let mut last_err = String::new();
        for attempt in 0..self.cfg.max_retries {
            if attempt > 0 {
                tokio::time::sleep(self.cfg.retry_backoff).await;
            }
            let part = match self.route(&footprint) {
                Ok(p) => p,
                Err(e) => return Err(e),
            };
            match self.rpc.call(part.master, Request::ClientRead { op: op.clone() }).await {
                Ok(Response::Read { result }) => return Ok(result),
                Ok(Response::NotOwner) => {
                    last_err = "not owner".into();
                    self.refresh_config().await.ok();
                }
                Ok(other) => {
                    last_err = format!("unexpected: {other:?}");
                    self.refresh_config().await.ok();
                }
                Err(e) => {
                    last_err = format!("rpc: {e}");
                    self.refresh_config().await.ok();
                }
            }
        }
        Err(ClientError::Exhausted(last_err))
    }

    /// Consistent read from a backup (§A.1, 0 wide-area RTTs in
    /// geo-replication): probe a witness for commutativity; if the key has
    /// no pending update, read the backup; otherwise fall back to the master.
    ///
    /// `replica` selects which of the partition's backups/witnesses to use
    /// (e.g. the one in the local region).
    pub async fn read_nearby(&self, op: Op, replica: usize) -> Result<OpResult, ClientError> {
        assert!(op.is_read_only(), "use update() for mutations");
        let footprint = op.key_hashes();
        let part = self.route(&footprint)?;
        if part.witnesses.is_empty() || part.backups.is_empty() {
            return self.read(op).await;
        }
        let witness = part.witnesses[replica % part.witnesses.len()];
        let backup = part.backups[replica % part.backups.len()];
        let probe = self
            .rpc
            .call(
                witness,
                Request::WitnessCommuteCheck { master_id: part.master_id, key_hashes: footprint },
            )
            .await;
        match probe {
            Ok(Response::CommuteOk { commutative: true }) => {
                match self
                    .rpc
                    .call(backup, Request::BackupRead { master_id: part.master_id, op: op.clone() })
                    .await
                {
                    Ok(Response::BackupValue { result }) => Ok(result),
                    // Backup unavailable: the master always works.
                    _ => self.read(op).await,
                }
            }
            // A pending update on this key (or a frozen witness): the backup
            // may be stale, read at the master (§A.1).
            _ => self.read(op).await,
        }
    }
}

enum TryOutcome {
    Done(OpResult),
    RefreshAndRetry(String),
}
