//! The CURP master (§3.2.3, §4.3–4.6).
//!
//! A master receives, serializes and executes all update RPCs for its
//! partition. Unlike a traditional primary, it *responds before replicating*
//! (speculative execution) and keeps the invariant that all unsynced
//! operations are mutually commutative: an incoming operation that touches
//! any unsynced object forces a blocking backup sync before its response is
//! released, tagged `synced` so the client can skip its own sync RPC.
//!
//! ## Sharded execution engine
//!
//! Commutativity is CURP's whole premise, so the master must not serialize
//! commuting operations on a lock either. Execution state lives behind the
//! [`StateStore`] boundary — a key-hash-sharded engine whose shard mutexes
//! protect their key space **plus** the master's per-shard state (the
//! pending log tail and the hot-key history), so the fast path costs
//! exactly one lock acquisition. Which engine backs the boundary is a
//! [`StoreConfig`] decision: purely in-memory, or tiered with an LSM-lite
//! run tier for larger-than-memory partitions. Log order stays global via
//! atomic counters (`next_seq`, the store's log head).
//!
//! Locking discipline (see DESIGN.md, invariant 6):
//!
//! * shard locks are acquired in **ascending index order** (multi-key ops
//!   lock their whole shard set up front);
//! * `ctrl` (epoch/range/witness-list/sealed), `rifl`, and `pending_gc`
//!   are **leaf locks** — taken while holding shard guards but never held
//!   across another lock acquisition;
//! * whole-engine operations (the sync cut, migration, recovery install)
//!   lock *all* shards, which quiesces execution and makes the merged
//!   per-shard pending tails a contiguous log prefix.
//!
//! Backup syncs are batched (§4.4): the background syncer drains every
//! shard's pending tail, merges the entries by sequence number, and
//! replicates them either when `batch_size` operations accumulate, when the
//! hot-key heuristic predicts a conflict, or on an interval tick. After
//! each sync the master garbage-collects the synced requests from its
//! witnesses (§4.5) and handles any suspected-stale requests the witnesses
//! report back.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use curp_proto::cluster::{HashRange, LoadStats};
use curp_proto::footprint::{Footprint, ShardSet};
use curp_proto::lockrank;
use curp_proto::message::{LogEntry, RecordedRequest, Request, Response};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{Epoch, KeyHash, MasterId, RpcId, ServerId, WitnessListVersion};
use curp_rifl::{CheckResult, RiflTable};
use curp_storage::{StateStore, Store, StoreConfig};
use curp_transport::rpc::RpcClient;
use parking_lot::Mutex;
use tokio::sync::{watch, Notify};

use crate::snapshot::Snapshot;

/// Tuning knobs for a master.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// Sync to backups once this many operations are pending (§4.4: "masters
    /// batch at most 50 operations before syncs").
    pub batch_size: usize,
    /// Background flush interval: an idle master syncs its pending tail at
    /// this cadence even if the batch never fills.
    pub sync_interval: Duration,
    /// Simulated execution cost per operation (zero outside simulations).
    pub exec_cost: Duration,
    /// Enables the §4.4 heuristic: sync immediately after updating an object
    /// that was updated recently, predicting another update soon.
    pub hotkey_sync: bool,
    /// "Recently" for the hot-key heuristic, in log entries.
    pub hotkey_window: u64,
    /// Attempts before a sync round gives up (entries stay pending).
    pub sync_retry_limit: u32,
    /// Delay between sync retry attempts.
    pub sync_retry_backoff: Duration,
    /// Synchronous mode: replicate to backups before *every* response — the
    /// paper's "Original RAMCloud" baseline (no speculation at all).
    pub sync_every_op: bool,
    /// Group-commit window: a sync round waits this long before snapshotting
    /// so that concurrently arriving operations share the round. Models the
    /// Redis event loop, which serves every ready socket and then fsyncs
    /// once (§C.2). Zero disables coalescing.
    pub sync_coalesce: Duration,
    /// In `sync_every_op` mode, how many worker threads may replicate their
    /// requests concurrently (RAMCloud workers poll on their own syncs; the
    /// dispatch thread is the shared bottleneck — §4.4).
    pub sync_workers: usize,
    /// In `sync_every_op` mode, whether concurrent requests share replication
    /// rounds (group commit). `false` reproduces original RAMCloud (each
    /// write replicates itself: 4 RPCs per request); `true` reproduces
    /// durable Redis, whose event loop batches one fsync across all ready
    /// clients (§C.2).
    pub sync_group_commit: bool,
    /// Execution-engine construction: shard count plus an optional
    /// larger-than-memory run tier. Single-key operations lock exactly one
    /// shard; commuting operations on different shards execute without
    /// contending.
    pub store: StoreConfig,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            batch_size: 50,
            sync_interval: Duration::from_millis(1),
            exec_cost: Duration::ZERO,
            hotkey_sync: true,
            hotkey_window: 50,
            sync_retry_limit: 10,
            sync_retry_backoff: Duration::from_millis(5),
            sync_every_op: false,
            sync_coalesce: Duration::ZERO,
            sync_workers: 4,
            sync_group_commit: false,
            store: StoreConfig::default(),
        }
    }
}

/// Observable counters (benchmarks and tests).
#[derive(Debug, Default)]
pub struct MasterStats {
    /// Update RPCs executed (excluding duplicates).
    pub updates: AtomicU64,
    /// Updates that required a blocking sync (non-commutative, 2-RTT path).
    pub conflicts: AtomicU64,
    /// Sync rounds completed.
    pub syncs: AtomicU64,
    /// Log entries replicated.
    pub entries_synced: AtomicU64,
    /// Witness gc RPCs sent.
    pub gcs_sent: AtomicU64,
    /// Duplicate RPCs filtered by RIFL.
    pub duplicates: AtomicU64,
}

/// The master's per-shard state, co-located with the store shard inside the
/// same mutex (the `Ext` parameter of [`StateStore`]): one lock per
/// operation covers the key space, the pending tail, and the hot-key scan.
#[derive(Default)]
struct ShardMeta {
    /// Executed but not yet replicated entries whose *home shard* (lowest
    /// shard index of the op's footprint) is this shard, in seq order.
    pending: Vec<LogEntry>,
    /// Last update entry-seq per key hash routed here (hot-key heuristic).
    recent_updates: HashMap<KeyHash, u64>,
}

/// Rarely-mutated control state. Leaf lock: never acquire anything while
/// holding it.
struct Ctrl {
    epoch: Epoch,
    backups: Vec<ServerId>,
    witnesses: Vec<ServerId>,
    wl_version: WitnessListVersion,
    range: HashRange,
    /// Set when fenced (zombie) or migrated away: reject everything.
    sealed: bool,
    /// Set for the duration of a [`Master::migrate_out`] cut: new updates
    /// are refused with `Retry` so the pre-migration sync can actually
    /// drain the pending tail under live load. Cleared when the cut
    /// completes, fails, *or is cancelled* (RAII guard — a coordinator that
    /// dies mid-drain must not leave the master refusing writes forever);
    /// reads are unaffected.
    draining: bool,
    /// The last completed cut's `(split_at, snapshot blob)`, kept until the
    /// coordinator confirms the migration plan closed. A re-issued
    /// `migrate_out` for the same split point returns this instead of
    /// cutting again — the cut itself is not repeatable (the objects are
    /// gone from the store), so this stash is what makes the drain step
    /// idempotent for a resumed migration plan.
    migration_stash: Option<(u64, bytes::Bytes)>,
}

/// The master role for one partition.
pub struct Master {
    id: MasterId,
    cfg: MasterConfig,
    rpc: Arc<dyn RpcClient>,
    /// The execution engine, behind the [`StateStore`] boundary; per-shard
    /// [`ShardMeta`] rides inside each shard's lock.
    store: Box<dyn StateStore<ShardMeta>>,
    /// Duplicate detection (RIFL). Its own leaf lock: checks and completion
    /// records never contend with execution on other shards. Atomicity of
    /// check-then-execute for one rpc id comes from the shard guards — a
    /// duplicate has the same footprint, so it serializes on the same
    /// shards.
    rifl: Mutex<RiflTable>,
    /// Control-plane state (leaf lock). Ownership/seal checks happen while
    /// the operation's shard guards are held, and reconfiguration
    /// (migration) mutates `range` while holding *all* shards — so a check
    /// can never interleave with a reconfiguration.
    ctrl: Mutex<Ctrl>,
    /// Extra gc pairs to piggyback on the next sync's gc round (suspected
    /// uncollected garbage already durable, §4.5). Leaf lock.
    pending_gc: Mutex<Vec<(KeyHash, RpcId)>>,
    /// Next log-entry sequence number (global log order across shards).
    next_seq: AtomicU64,
    /// Total pending entries across shards — drives the batch-size sync
    /// trigger without visiting every shard.
    pending_count: AtomicUsize,
    /// Serializes sync rounds ("RAMCloud allows only one outstanding sync",
    /// §C.1).
    sync_lock: tokio::sync::Mutex<()>,
    sync_notify: Notify,
    /// Watermark: every log entry with `seq < *synced_rx.borrow()` is durable
    /// on all backups. Waiters blocked on a conflicting operation observe
    /// this to return as soon as *their* entry is durable (group commit),
    /// instead of taking a turn flushing other clients' entries.
    synced_tx: watch::Sender<u64>,
    /// Limits concurrent per-request replications in `sync_every_op` mode.
    repl_slots: Arc<tokio::sync::Semaphore>,
    /// Statistics.
    pub stats: MasterStats,
}

/// Everything needed to start a fresh master.
pub struct MasterSeed {
    /// Role incarnation id.
    pub id: MasterId,
    /// Fencing epoch.
    pub epoch: Epoch,
    /// Backup servers (`f` of them).
    pub backups: Vec<ServerId>,
    /// Witness servers (`f` of them).
    pub witnesses: Vec<ServerId>,
    /// Current witness-list version.
    pub wl_version: WitnessListVersion,
    /// Owned slice of the hash space.
    pub range: HashRange,
}

impl Master {
    /// Creates a fresh, empty master.
    pub fn new(seed: MasterSeed, cfg: MasterConfig, rpc: Arc<dyn RpcClient>) -> Arc<Master> {
        Self::with_state(seed, cfg, rpc, Store::new(), RiflTable::new(), 0)
    }

    /// Creates a master over restored state (recovery, migration). The
    /// single-space `store` is re-sharded across `cfg.store_shards`.
    pub fn with_state(
        seed: MasterSeed,
        cfg: MasterConfig,
        rpc: Arc<dyn RpcClient>,
        store: Store,
        rifl: RiflTable,
        next_seq: u64,
    ) -> Arc<Master> {
        let sync_workers = cfg.sync_workers.max(1);
        let store = cfg.store.build_from_store(store);
        Arc::new(Master {
            id: seed.id,
            cfg,
            rpc,
            store,
            rifl: Mutex::ranked(lockrank::MASTER_RIFL, "core.master.rifl", rifl),
            ctrl: Mutex::ranked(
                lockrank::MASTER_CTRL,
                "core.master.ctrl",
                Ctrl {
                    epoch: seed.epoch,
                    backups: seed.backups,
                    witnesses: seed.witnesses,
                    wl_version: seed.wl_version,
                    range: seed.range,
                    sealed: false,
                    draining: false,
                    migration_stash: None,
                },
            ),
            pending_gc: Mutex::ranked(
                lockrank::MASTER_PENDING_GC,
                "core.master.pending_gc",
                Vec::new(),
            ),
            next_seq: AtomicU64::new(next_seq),
            pending_count: AtomicUsize::new(0),
            sync_lock: tokio::sync::Mutex::new(()),
            sync_notify: Notify::new(),
            synced_tx: watch::channel(0u64).0,
            repl_slots: Arc::new(tokio::sync::Semaphore::new(sync_workers)),
            stats: MasterStats::default(),
        })
    }

    /// This master's role id.
    pub fn id(&self) -> MasterId {
        self.id
    }

    /// Spawns the background syncer. Call once after construction.
    pub fn spawn_syncer(self: &Arc<Self>) -> tokio::task::JoinHandle<()> {
        let master = Arc::clone(self);
        tokio::spawn(async move {
            loop {
                tokio::select! {
                    _ = master.sync_notify.notified() => {}
                    _ = tokio::time::sleep(master.cfg.sync_interval) => {}
                }
                if master.is_sealed() {
                    return;
                }
                if master.cfg.sync_every_op && !master.cfg.sync_group_commit {
                    // Per-request replication mode: every write replicates
                    // itself; an interval round would race the per-op path.
                    continue;
                }
                let _ = master.sync().await;
            }
        })
    }

    /// Whether this master has been fenced or migrated away.
    pub fn is_sealed(&self) -> bool {
        self.ctrl.lock().sealed
    }

    /// Seals the master: every subsequent request is refused. Used when a
    /// backup fences us (zombie, §4.7) and by crash simulation.
    pub fn seal(&self) {
        self.ctrl.lock().sealed = true;
    }

    /// Number of pending (speculative) entries — diagnostics.
    pub fn pending_len(&self) -> usize {
        let mut total = 0;
        self.store.lock_all_for(None).for_each_ext_mut(|_, meta| total += meta.pending.len());
        total
    }

    /// Snapshots this master's load signals for the coordinator's
    /// autoscaler: the monotone update counter, the speculative queue depth,
    /// and a fixed-width histogram of recently updated key hashes over the
    /// owned range — the split-point oracle.
    ///
    /// Taken under the existing shard guards (the same `lock_all` the
    /// diagnostics use); the histogram is allocation-bounded by construction
    /// ([`curp_proto::cluster::LOAD_HISTOGRAM_BUCKETS`] buckets regardless
    /// of how many keys each shard's `recent_updates` holds — itself already
    /// bounded by the hot-key retain rule).
    ///
    /// Hashes outside the owned range are skipped, not clamped: after a
    /// `migrate_out` shrinks the range, `recent_updates` still remembers
    /// keys from the departed half until the hot-key window rolls over, and
    /// `bucket_for`'s edge clamp would pile all of them into one boundary
    /// bucket — dragging the hotkey-mass median toward the cut edge and
    /// making the *next* split pathologically lopsided.
    pub fn load_stats(&self) -> LoadStats {
        let range = self.ctrl.lock().range;
        let mut histogram = vec![0u64; curp_proto::cluster::LOAD_HISTOGRAM_BUCKETS];
        let mut pending = 0u64;
        self.store.lock_all_for(None).for_each_ext_mut(|_, meta| {
            pending += meta.pending.len() as u64;
            for &h in meta.recent_updates.keys() {
                if range.contains(h) {
                    histogram[LoadStats::bucket_for(&range, h)] += 1;
                }
            }
        });
        LoadStats {
            updates: self.stats.updates.load(Ordering::Relaxed),
            pending,
            range,
            hot_hash_histogram: histogram,
        }
    }

    /// Current witness list and version (diagnostics).
    pub fn witness_list(&self) -> (WitnessListVersion, Vec<ServerId>) {
        let ctrl = self.ctrl.lock();
        (ctrl.wl_version, ctrl.witnesses.clone())
    }

    /// Ownership check over a precomputed footprint (computed once per RPC;
    /// recomputing per check would re-hash every key).
    fn owns(range: &HashRange, footprint: &Footprint) -> bool {
        footprint.iter().all(|&h| range.contains(h))
    }

    /// The shard set for `footprint`, with the no-key edge case (an empty
    /// `MultiPut` still consumes a log entry) pinned to shard 0.
    fn shard_set_for(&self, footprint: &Footprint) -> ShardSet {
        let mut set = footprint.shard_set(self.store.num_shards());
        if set.is_empty() {
            set.push(0);
        }
        set
    }

    /// Handles a client update RPC. See module docs for the decision tree.
    pub async fn handle_update(
        self: &Arc<Self>,
        rpc_id: RpcId,
        first_incomplete: u64,
        wl_version: WitnessListVersion,
        op: Op,
    ) -> Response {
        if op.is_read_only() {
            return Response::Retry { reason: "read-only op sent as update".into() };
        }
        if !self.cfg.exec_cost.is_zero() {
            tokio::time::sleep(self.cfg.exec_cost).await;
        }
        // One footprint per RPC: shard routing, the ownership check and the
        // hot-key scan all share it instead of re-hashing the keys (and it
        // is computed outside every lock).
        let footprint = op.key_hashes();
        let shard_set = self.shard_set_for(&footprint);
        let self_repl = self.cfg.sync_every_op && !self.cfg.sync_group_commit;
        let (result, must_sync, repl_entry) = {
            // Lock-time readiness: a tiered engine promotes the op's cold
            // keys here, so the commute check and execute below see exactly
            // the in-memory engine's state.
            let mut guards = self.store.lock_for(&shard_set, Some(&op));
            {
                let ctrl = self.ctrl.lock();
                if ctrl.sealed {
                    return Response::Retry { reason: "master sealed".into() };
                }
                if ctrl.draining {
                    return Response::Retry { reason: "master draining for migration".into() };
                }
                if wl_version != ctrl.wl_version {
                    return Response::StaleWitnessList { current: ctrl.wl_version };
                }
                if !Self::owns(&ctrl.range, &footprint) {
                    return Response::NotOwner;
                }
            }
            {
                let mut rifl = self.rifl.lock();
                rifl.ack(rpc_id.client, first_incomplete);
                match rifl.check(rpc_id) {
                    CheckResult::Duplicate(result) => {
                        drop(rifl);
                        self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
                        // A duplicate carries the same footprint, so its
                        // entry — if still pending — lives under the shard
                        // guards we already hold.
                        let mut still_pending = false;
                        guards.for_each_ext_mut(|_, meta| {
                            still_pending |= meta.pending.iter().any(|e| e.rpc_id == Some(rpc_id));
                        });
                        return Response::Update { result, synced: !still_pending };
                    }
                    CheckResult::Stale => {
                        return Response::Retry { reason: "rpc already acknowledged".into() }
                    }
                    CheckResult::New => {}
                }
            }
            // §3.2.3: an operation touching any unsynced object must not be
            // externalized before a sync. Routing reuses the footprint —
            // nothing re-hashes a key under the shard lock.
            let conflict =
                guards.touches_unsynced_routed(&op, &footprint) || self.cfg.sync_every_op;
            let result = guards.execute_routed(&op, &footprint);
            let mutated = !matches!(result, OpResult::ConditionFailed { .. } | OpResult::WrongType);
            // Every update gets a log entry — including failed conditionals:
            // their completion records must become durable too, or a retry
            // after recovery could re-execute with a different outcome.
            // Replay on backups is still deterministic (the op fails there
            // identically, mutating nothing).
            let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
            let entry =
                LogEntry { seq, rpc_id: Some(rpc_id), op: op.clone(), result: result.clone() };
            let repl_entry = self_repl.then(|| entry.clone());
            guards.ext_mut(shard_set[0]).pending.push(entry);
            self.pending_count.fetch_add(1, Ordering::SeqCst);
            self.rifl.lock().record(rpc_id, result.clone());
            self.stats.updates.fetch_add(1, Ordering::Relaxed);

            // Hot-key heuristic (§4.4): if this key was updated within the
            // last `hotkey_window` entries, predict another update soon and
            // sync eagerly (without blocking this response). The history is
            // per shard — each hash is scanned under the lock it lives in.
            let mut hot = false;
            if mutated {
                let num_shards = self.store.num_shards();
                for &h in &footprint {
                    let meta = guards.ext_mut(h.shard(num_shards));
                    if let Some(&prev) = meta.recent_updates.get(&h) {
                        if self.cfg.hotkey_sync
                            && seq.saturating_sub(prev) <= self.cfg.hotkey_window
                        {
                            hot = true;
                        }
                    }
                    meta.recent_updates.insert(h, seq);
                    if meta.recent_updates.len() > 8 * self.cfg.hotkey_window as usize + 64 {
                        let cutoff = seq.saturating_sub(self.cfg.hotkey_window);
                        meta.recent_updates.retain(|_, &mut s| s >= cutoff);
                    }
                }
            }
            let batch_full = self.pending_count.load(Ordering::SeqCst) >= self.cfg.batch_size;
            if (hot || batch_full) && !conflict {
                self.sync_notify.notify_one();
            }
            (result, conflict.then_some(seq), repl_entry)
        };
        if let Some(entry) = repl_entry {
            // "Original" synchronous mode: this request replicates itself —
            // one replication RPC per backup per request, exactly the 4-RPCs-
            // per-write pattern §4.4 describes. No cross-client batching.
            let synced = self.replicate_one(entry, shard_set[0]).await;
            self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
            return Response::Update { result, synced };
        }
        if let Some(my_seq) = must_sync {
            // Blocking sync: returns once this operation's entry is durable
            // (an in-flight round started by another client may cover it).
            self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
            let synced = self.sync_up_to(my_seq).await;
            return Response::Update { result, synced };
        }
        Response::Update { result, synced: false }
    }

    /// Handles a read-only client RPC (§3.2.3, §A.3): a read touching an
    /// unsynced object blocks on a sync so its result cannot be lost.
    pub async fn handle_read(self: &Arc<Self>, op: Op) -> Response {
        if !op.is_read_only() {
            return Response::Retry { reason: "mutation sent as read".into() };
        }
        if !self.cfg.exec_cost.is_zero() {
            tokio::time::sleep(self.cfg.exec_cost).await;
        }
        let footprint = op.key_hashes();
        let shard_set = self.shard_set_for(&footprint);
        for _ in 0..100 {
            {
                let mut guards = self.store.lock_for(&shard_set, Some(&op));
                {
                    let ctrl = self.ctrl.lock();
                    if ctrl.sealed {
                        return Response::Retry { reason: "master sealed".into() };
                    }
                    if !Self::owns(&ctrl.range, &footprint) {
                        return Response::NotOwner;
                    }
                }
                if !guards.touches_unsynced_routed(&op, &footprint) {
                    let result = guards.execute_routed(&op, &footprint);
                    return Response::Read { result };
                }
            }
            if !self.sync().await {
                return Response::Retry { reason: "sync failed".into() };
            }
        }
        Response::Retry { reason: "read starved by hot writes".into() }
    }

    /// Handles an explicit client sync RPC (slow path, §3.2.1).
    ///
    /// The request names the master incarnation whose speculative results
    /// the client is holding. A mismatch means the partition was recovered
    /// since the client's update executed — this master's log never held
    /// those entries, so its `SyncDone` would prove nothing about them. The
    /// refusal sends the client through the full retry path, where RIFL
    /// filters anything recovery already replayed (§4.7, client side).
    pub async fn handle_sync(self: &Arc<Self>, master_id: MasterId) -> Response {
        if master_id != self.id {
            return Response::Retry { reason: "master incarnation changed".into() };
        }
        if self.is_sealed() {
            return Response::Retry { reason: "master sealed".into() };
        }
        if self.sync().await {
            Response::SyncDone
        } else {
            Response::Retry { reason: "sync failed".into() }
        }
    }

    /// Installs a new witness list (§3.6). The master syncs first so clients
    /// can never complete an update against only the old witnesses.
    pub async fn handle_witness_list(
        self: &Arc<Self>,
        version: WitnessListVersion,
        witnesses: Vec<ServerId>,
    ) -> Response {
        if !self.sync().await {
            return Response::Retry { reason: "sync failed".into() };
        }
        let mut ctrl = self.ctrl.lock();
        if version > ctrl.wl_version {
            ctrl.wl_version = version;
            ctrl.witnesses = witnesses;
        }
        Response::WitnessListInstalled
    }

    /// Handles a client lease expiry (§4.8): sync, then drop records.
    pub async fn handle_client_expired(
        self: &Arc<Self>,
        client: curp_proto::types::ClientId,
    ) -> Response {
        if !self.sync().await {
            return Response::Retry { reason: "sync failed".into() };
        }
        self.rifl.lock().expire_client(client);
        Response::ClientExpiredAck
    }

    /// Replicates the pending tail to all backups, then garbage-collects the
    /// replicated requests from all witnesses. Returns `true` on success
    /// (including the nothing-to-do case).
    pub async fn sync(self: &Arc<Self>) -> bool {
        let guard = self.sync_lock.lock().await;
        self.sync_round(guard).await
    }

    /// Group commit: waits until the entry with sequence `seq` is durable on
    /// all backups, flushing if no round is in flight. Returns `false` if
    /// the master is sealed or replication fails.
    pub async fn sync_up_to(self: &Arc<Self>, seq: u64) -> bool {
        let mut rx = self.synced_tx.subscribe();
        loop {
            if *rx.borrow_and_update() > seq {
                return true;
            }
            if self.is_sealed() {
                return false;
            }
            tokio::select! {
                guard = self.sync_lock.lock() => {
                    if !self.sync_round(guard).await {
                        return false;
                    }
                }
                changed = rx.changed() => {
                    if changed.is_err() {
                        return false;
                    }
                }
            }
        }
    }

    /// Synchronous per-request replication (`sync_every_op` mode): sends
    /// this entry alone to every backup, bounded by the worker semaphore.
    /// Backups buffer out-of-order arrivals, so concurrent workers are safe.
    /// `home_shard` is the entry's pending-tail shard (lowest shard of its
    /// footprint), passed in by the caller so this path never re-hashes the
    /// op's keys.
    async fn replicate_one(self: &Arc<Self>, entry: LogEntry, home_shard: usize) -> bool {
        // lint: audited-unwrap — the semaphore lives in self and is never closed
        let permit = Arc::clone(&self.repl_slots).acquire_owned().await.expect("semaphore closed");
        let (epoch, backups) = {
            let ctrl = self.ctrl.lock();
            if ctrl.sealed {
                return false;
            }
            (ctrl.epoch, ctrl.backups.clone())
        };
        let seq = entry.seq;
        let home_set = [home_shard];
        let calls = backups.iter().map(|&b| {
            self.rpc.call(
                b,
                Request::BackupSync { master_id: self.id, epoch, entries: vec![entry.clone()] },
            )
        });
        let results = futures_join_all(calls).await;
        drop(permit);
        for r in results {
            match r {
                Ok(Response::BackupSynced { accepted: true, .. }) => {}
                Ok(Response::BackupSynced { accepted: false, .. }) => {
                    self.seal();
                    return false;
                }
                _ => return false,
            }
        }
        // Commit: drop the entry from its home shard's pending tail and
        // advance the watermark.
        {
            let mut guards = self.store.lock_for(&home_set, None);
            let meta = guards.ext_mut(home_set[0]);
            let before = meta.pending.len();
            meta.pending.retain(|e| e.seq != seq);
            let removed = before - meta.pending.len();
            self.pending_count.fetch_sub(removed, Ordering::SeqCst);
        }
        if self.pending_count.load(Ordering::SeqCst) == 0 {
            // Nothing pending anywhere: the whole log is durable, so the
            // synced frontier may advance to the head. Re-verify under all
            // shard locks (a new op may have landed meanwhile).
            let mut guards = self.store.lock_all_for(None);
            let mut pending = 0;
            guards.for_each_ext_mut(|_, meta| pending += meta.pending.len());
            if pending == 0 {
                let head = self.store.log_head();
                if head > self.store.synced_pos() {
                    guards.mark_synced(head);
                }
            }
        }
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        self.stats.entries_synced.fetch_add(1, Ordering::Relaxed);
        self.synced_tx.send_modify(|f| *f = (*f).max(seq + 1));
        true
    }

    /// One replication round; `_guard` serializes rounds.
    ///
    /// The round's snapshot is taken under *all* shard locks: with every
    /// shard held no execution is in flight, so draining the per-shard
    /// pending tails and merging them by seq yields a contiguous tail of
    /// the global log. The expensive part — replication RPCs — runs with
    /// all locks released.
    async fn sync_round(self: &Arc<Self>, _guard: tokio::sync::MutexGuard<'_, ()>) -> bool {
        if !self.cfg.sync_coalesce.is_zero() {
            tokio::time::sleep(self.cfg.sync_coalesce).await;
        }
        let (entries, pos_target, epoch, backups) = {
            let mut guards = self.store.lock_all_for(None);
            let ctrl = self.ctrl.lock();
            if ctrl.sealed {
                return false;
            }
            let (epoch, backups) = (ctrl.epoch, ctrl.backups.clone());
            drop(ctrl);
            let mut entries: Vec<LogEntry> = Vec::new();
            guards.for_each_ext_mut(|_, meta| entries.extend(meta.pending.iter().cloned()));
            if entries.is_empty() && self.pending_gc.lock().is_empty() {
                return true;
            }
            // Merge the per-shard tails into global log order.
            entries.sort_unstable_by_key(|e| e.seq);
            (entries, self.store.log_head(), epoch, backups)
        };

        if !entries.is_empty() {
            let mut attempt = 0;
            loop {
                let calls = backups.iter().map(|&b| {
                    self.rpc.call(
                        b,
                        Request::BackupSync { master_id: self.id, epoch, entries: entries.clone() },
                    )
                });
                let results = futures_join_all(calls).await;
                let mut all_ok = true;
                for r in results {
                    match r {
                        Ok(Response::BackupSynced { accepted: true, .. }) => {}
                        Ok(Response::BackupSynced { accepted: false, .. }) => {
                            // We are fenced: a newer master exists (§4.7).
                            self.seal();
                            return false;
                        }
                        _ => all_ok = false,
                    }
                }
                if all_ok {
                    break;
                }
                attempt += 1;
                if attempt >= self.cfg.sync_retry_limit {
                    return false;
                }
                tokio::time::sleep(self.cfg.sync_retry_backoff).await;
            }
        }

        // Commit the sync locally and compute the witness gc set. The
        // frontier is clamped: a concurrent per-request replication
        // (`sync_every_op` mode) may already have advanced it further.
        let (gc_pairs, witnesses) = {
            let mut guards = self.store.lock_all_for(None);
            let target = pos_target.max(self.store.synced_pos());
            guards.mark_synced(target);
            if let Some(last) = entries.last().map(|e| e.seq) {
                let mut removed = 0;
                guards.for_each_ext_mut(|_, meta| {
                    let before = meta.pending.len();
                    meta.pending.retain(|e| e.seq > last);
                    removed += before - meta.pending.len();
                });
                self.pending_count.fetch_sub(removed, Ordering::SeqCst);
            }
            let mut pairs: Vec<(KeyHash, RpcId)> = Vec::new();
            for e in &entries {
                if let Some(id) = e.rpc_id {
                    for h in e.op.key_hashes_iter() {
                        pairs.push((h, id));
                    }
                }
            }
            pairs.append(&mut self.pending_gc.lock());
            (pairs, self.ctrl.lock().witnesses.clone())
        };
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        self.stats.entries_synced.fetch_add(entries.len() as u64, Ordering::Relaxed);
        if let Some(last) = entries.last() {
            let frontier = last.seq + 1;
            self.synced_tx.send_modify(|f| *f = (*f).max(frontier));
        }
        // Background store maintenance rides the sync cadence: with the
        // frontier just advanced, a tiered engine may flush newly-synced
        // state and merge runs. Failure is not a sync failure — nothing is
        // evicted unless its spill landed durably, so the store is simply
        // unchanged and the next round retries.
        let _ = self.store.maintain();

        if !gc_pairs.is_empty() && !witnesses.is_empty() {
            // Gc RPCs are batched, one per witness per sync round (§3.5).
            let calls = witnesses.iter().map(|&w| {
                self.rpc
                    .call(w, Request::WitnessGc { master_id: self.id, entries: gc_pairs.clone() })
            });
            self.stats.gcs_sent.fetch_add(witnesses.len() as u64, Ordering::Relaxed);
            let results = futures_join_all(calls).await;
            for r in results.into_iter().flatten() {
                if let Response::GcDone { stale } = r {
                    self.handle_suspected_garbage(stale);
                }
            }
        }
        true
    }

    /// Replays a witness-recorded request that was never executed here:
    /// validates the cached footprint, checks ownership, filters duplicates
    /// under the op's shard guards, then executes and logs it. Returns
    /// `true` if the request was executed. Shared by crash recovery (§4.6)
    /// and suspected-garbage handling (§4.5).
    fn replay_recorded(&self, req: &RecordedRequest) -> bool {
        // Ownership is decided on the footprint the witness stored — after
        // checking it matches the op (invariant 1). Requests on partitions
        // we do not own are dropped (§3.6).
        if !req.footprint_matches_op() {
            return false;
        }
        let shard_set = self.shard_set_for(&req.key_hashes);
        let mut guards = self.store.lock_for(&shard_set, Some(&req.op));
        // Ownership is checked *under the shard guards* (invariant 6):
        // migration flips the range while holding all shards, so the check
        // cannot interleave with a concurrent migrate_out.
        {
            let ctrl = self.ctrl.lock();
            if !Self::owns(&ctrl.range, &req.key_hashes) {
                return false;
            }
        }
        match self.rifl.lock().check(req.rpc_id) {
            CheckResult::Duplicate(_) | CheckResult::Stale => return false,
            CheckResult::New => {}
        }
        let result = guards.execute_routed(&req.op, &req.key_hashes);
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        guards.ext_mut(shard_set[0]).pending.push(LogEntry {
            seq,
            rpc_id: Some(req.rpc_id),
            op: req.op.clone(),
            result: result.clone(),
        });
        self.pending_count.fetch_add(1, Ordering::SeqCst);
        self.rifl.lock().record(req.rpc_id, result);
        true
    }

    /// §4.5: witnesses report requests that survived several gc rounds. The
    /// master retries them (RIFL filters re-executions), ensures they are
    /// synced, and re-gc's them on the next round.
    fn handle_suspected_garbage(self: &Arc<Self>, stale: Vec<RecordedRequest>) {
        let mut need_sync = false;
        for req in stale {
            // A doctored cached footprint must not be trusted on *any*
            // branch (invariant 1): the still-pending scan below routes by
            // it, and scanning the wrong shards could prematurely gc a
            // witness record whose entry is still unreplicated.
            if !req.footprint_matches_op() {
                continue;
            }
            let check = self.rifl.lock().check(req.rpc_id);
            match check {
                CheckResult::Duplicate(_) | CheckResult::Stale => {
                    // Already executed. If still pending it will be gc'd with
                    // its own sync; otherwise schedule an explicit re-gc.
                    let shard_set = self.shard_set_for(&req.key_hashes);
                    let mut guards = self.store.lock_for(&shard_set, None);
                    let mut still_pending = false;
                    guards.for_each_ext_mut(|_, meta| {
                        still_pending |= meta.pending.iter().any(|e| e.rpc_id == Some(req.rpc_id));
                    });
                    drop(guards);
                    if !still_pending {
                        let mut gc = self.pending_gc.lock();
                        for h in &req.key_hashes {
                            gc.push((*h, req.rpc_id));
                        }
                        need_sync = true;
                    }
                }
                CheckResult::New => {
                    // The client recorded the request but the master never
                    // executed it (client crashed mid-operation).
                    if self.replay_recorded(&req) {
                        need_sync = true;
                    }
                }
            }
        }
        if need_sync {
            self.sync_notify.notify_one();
        }
    }

    // ---- recovery (§3.3, §4.6) --------------------------------------------

    /// Runs full crash recovery, producing the *new* master for the crashed
    /// partition: restore from one backup, replay from one witness, then
    /// install the recovered state on all backups.
    ///
    /// The coordinator must already have fenced the old master's epoch on the
    /// backups and started witness instances for `seed.id` on `seed.witnesses`.
    #[allow(clippy::too_many_arguments)]
    pub async fn recover(
        seed: MasterSeed,
        cfg: MasterConfig,
        rpc: Arc<dyn RpcClient>,
        old_master: MasterId,
        backup_source: ServerId,
        witness_source: ServerId,
    ) -> Result<Arc<Master>, String> {
        // Step 1: restore from a backup.
        let rsp = rpc
            .call(backup_source, Request::BackupFetch { master_id: old_master })
            .await
            .map_err(|e| format!("backup fetch failed: {e}"))?;
        let (next_seq, snapshot) = match rsp {
            Response::BackupData { next_seq, snapshot } => (next_seq, snapshot),
            other => return Err(format!("unexpected fetch response: {other:?}")),
        };
        let snap = Snapshot::from_blob(&snapshot).map_err(|e| e.to_string())?;
        let (store, mut rifl) = snap.restore();

        // Step 2: freeze one witness and take its requests.
        let rsp = rpc
            .call(witness_source, Request::WitnessGetRecoveryData { master_id: old_master })
            .await
            .map_err(|e| format!("witness fetch failed: {e}"))?;
        let requests = match rsp {
            Response::RecoveryData { requests } => requests,
            other => return Err(format!("unexpected recovery response: {other:?}")),
        };

        // Step 3: replay. Requests in one witness are mutually commutative,
        // so any order is fine; RIFL filters those already restored from the
        // backup; ownership filters migrated-away partitions (§3.6).
        rifl.set_recovery_mode(true);
        let master = Master::with_state(seed, cfg, rpc, store, rifl, next_seq);
        for req in requests {
            let _ = master.replay_recorded(&req);
        }
        master.rifl.lock().set_recovery_mode(false);

        // Step 4: make the recovered state durable on all backups under the
        // new master id, folding in the replayed entries.
        let (blob, next_seq, epoch, backups) = {
            let mut guards = master.store.lock_all_for(None);
            let head = master.store.log_head();
            if head > master.store.synced_pos() {
                guards.mark_synced(head);
            }
            let mut cleared = 0;
            guards.for_each_ext_mut(|_, meta| {
                cleared += meta.pending.len();
                meta.pending.clear();
            });
            master.pending_count.fetch_sub(cleared, Ordering::SeqCst);
            let next_seq = master.next_seq.load(Ordering::SeqCst);
            // Fold any run-tier state back into the memtable so the
            // guard-level export below is the *whole* store.
            master.store.absorb_runs(&mut guards);
            let snap = Snapshot::from_parts(guards.export(), master.rifl.lock().export(), next_seq);
            let ctrl = master.ctrl.lock();
            (snap.to_blob(), next_seq, ctrl.epoch, ctrl.backups.clone())
        };
        let calls = backups.iter().map(|&b| {
            master.rpc.call(
                b,
                Request::BackupInstall {
                    master_id: master.id,
                    epoch,
                    next_seq,
                    snapshot: blob.clone(),
                },
            )
        });
        for r in futures_join_all(calls).await {
            match r {
                Ok(Response::BackupInstalled) => {}
                other => return Err(format!("backup install failed: {other:?}")),
            }
        }
        Ok(master)
    }

    // ---- migration (§3.6) ----------------------------------------------------

    /// Extracts the `[split_at, end)` half of this master's range after a
    /// full sync. The master keeps `[start, split_at)` and afterwards
    /// rejects requests for the migrated half with `NotOwner`.
    ///
    /// The split happens under all shard locks, and the ownership check of
    /// every update runs under *its* shard guards — so no update can
    /// execute against the migrated half between the range change and the
    /// data extraction.
    ///
    /// Safe to call under live traffic: the master *drains* for the
    /// duration of the cut — new updates are refused with `Retry` (clients
    /// back off and return once the new map is published) so the
    /// pre-migration sync converges on an empty pending tail instead of
    /// chasing a write stream that never quiesces.
    ///
    /// Re-entrant for a resumed migration plan: the completed cut's snapshot
    /// is stashed (as a blob) until [`Master::clear_migration_stash`], and a
    /// re-issued `migrate_out` with the same `split_at` returns the stash
    /// instead of failing — the objects left the store with the first cut,
    /// so only the stash can answer the retry.
    pub async fn migrate_out(self: &Arc<Self>, split_at: u64) -> Result<Snapshot, String> {
        {
            let mut ctrl = self.ctrl.lock();
            if let Some((at, blob)) = &ctrl.migration_stash {
                if *at == split_at && ctrl.range.end == split_at {
                    let blob = blob.clone();
                    drop(ctrl);
                    return Snapshot::from_blob(&blob).map_err(|e| e.to_string());
                }
            }
            if ctrl.draining {
                return Err("migration already in progress".into());
            }
            ctrl.draining = true;
        }
        // RAII: clear the drain flag on every exit, *including cancellation*
        // (the coordinator's orchestration future being dropped mid-drain) —
        // a stale drain flag would refuse writes forever and block every
        // later migration attempt with "already in progress".
        struct DrainGuard<'a>(&'a Master);
        impl Drop for DrainGuard<'_> {
            fn drop(&mut self) {
                self.0.ctrl.lock().draining = false;
            }
        }
        let _guard = DrainGuard(self);
        self.migrate_out_draining(split_at).await
    }

    /// Drops the stashed migration snapshot once the coordinator's plan has
    /// closed (published or aborted); until then a resumed plan may still
    /// re-request it.
    pub fn clear_migration_stash(&self) {
        self.ctrl.lock().migration_stash = None;
    }

    async fn migrate_out_draining(self: &Arc<Self>, split_at: u64) -> Result<Snapshot, String> {
        // With the drain flag up no new entries are admitted, but updates
        // already past the ownership check may still land one each — a
        // couple of sync rounds flushes the stragglers.
        for _ in 0..5 {
            if !self.sync().await {
                return Err("pre-migration sync failed".into());
            }
            if self.pending_len() == 0 {
                break;
            }
        }
        let mut guards = self.store.lock_all_for(None);
        let mut pending = 0;
        guards.for_each_ext_mut(|_, meta| pending += meta.pending.len());
        if pending > 0 {
            return Err("writes raced the migration sync".into());
        }
        // No pending entries under all shard locks means every executed
        // mutation is replicated — but a concurrent `replicate_one` may have
        // removed its entry without having advanced the frontier yet (those
        // are two critical sections). Advance it here so `split_off`'s
        // fully-synced precondition holds rather than panicking.
        let head = self.store.log_head();
        if head > self.store.synced_pos() {
            guards.mark_synced(head);
        }
        let hi = {
            let mut ctrl = self.ctrl.lock();
            let (lo, hi) = ctrl.range.split_at(split_at);
            ctrl.range = lo;
            hi
        };
        // Migrated keys may live in a run tier; fold everything back so the
        // split sees the whole store.
        self.store.absorb_runs(&mut guards);
        let (objects, dead) = guards.split_off(&|h| hi.contains(h));
        // The migrated partition inherits the full RIFL table: duplicate
        // detection must keep working for requests that moved with the data.
        let snap =
            Snapshot { objects, dead_versions: dead, rifl: self.rifl.lock().export(), next_seq: 0 };
        // Stash the cut atomically with taking it: everything from the range
        // flip to here runs without an await, so a cancelled caller either
        // left the store untouched or left the stash holding the only copy.
        self.ctrl.lock().migration_stash = Some((split_at, snap.to_blob()));
        Ok(snap)
    }

    /// Dispatches master-directed requests.
    pub async fn handle_request(self: &Arc<Self>, req: Request) -> Response {
        match req {
            Request::ClientUpdate { rpc_id, first_incomplete, witness_list_version, op } => {
                self.handle_update(rpc_id, first_incomplete, witness_list_version, op).await
            }
            Request::ClientRead { op } => self.handle_read(op).await,
            Request::Sync { master_id } => self.handle_sync(master_id).await,
            Request::MasterWitnessList { version, witnesses } => {
                self.handle_witness_list(version, witnesses).await
            }
            Request::MasterClientExpired { client } => self.handle_client_expired(client).await,
            Request::MasterLoadStats { master_id } => {
                if master_id != self.id {
                    return Response::Retry { reason: "stale master id".into() };
                }
                Response::LoadStats { stats: self.load_stats() }
            }
            _ => Response::Retry { reason: "not a master request".into() },
        }
    }
}

// The transport layer owns the one minimal join_all (it needs it for batch
// fan-out); re-exported under the historical name for this crate's callers.
pub(crate) use curp_transport::rpc::join_all as futures_join_all;
