//! A CURP server process: any mix of master, backup and witness roles behind
//! one transport handler.
//!
//! The paper co-hosts witnesses with backups (§3.1, Figure 2); this type
//! makes role placement a deployment decision. The coordinator also holds
//! direct (in-process) handles to `CurpServer`s for control-plane actions —
//! installing and recovering masters — while all data-plane traffic flows
//! through the transport.
//!
//! A server built with [`CurpServer::new_durable`] survives power loss: its
//! backup role write-ahead-logs every sync round to per-master AOFs and its
//! witness role journals every mutation before acknowledging (§3.2.2's
//! non-volatile witness memory, §5.4's fsync-before-respond). Re-creating
//! the server over the same data directory replays both, which is the
//! per-process half of `Coordinator::restart_cluster`.

use std::path::Path;
use std::sync::Arc;

use curp_proto::lockrank;
use curp_proto::message::{Request, Response};
use curp_proto::types::ServerId;
use curp_storage::StoreConfig;
use curp_transport::rpc::{BoxFuture, RpcHandler};
use curp_witness::cache::CacheConfig;
use curp_witness::{JournaledWitness, WitnessService};
use parking_lot::Mutex;

use crate::backup::BackupService;
use crate::master::Master;

/// The witness role in either volatility class: plain (in-memory, the
/// paper's flash-backed-DRAM assumption) or journaled (write-ahead to disk
/// before every ack).
enum WitnessRole {
    Plain(WitnessService),
    Journaled(JournaledWitness),
}

impl WitnessRole {
    fn service(&self) -> &WitnessService {
        match self {
            WitnessRole::Plain(s) => s,
            WitnessRole::Journaled(j) => j.service(),
        }
    }

    fn handle_request(&self, req: &Request) -> Response {
        match self {
            WitnessRole::Plain(s) => s.handle_request(req),
            WitnessRole::Journaled(j) => j.handle_request(req),
        }
    }
}

/// One server process.
pub struct CurpServer {
    id: ServerId,
    master: Mutex<Option<Arc<Master>>>,
    backup: BackupService,
    witness: WitnessRole,
}

impl CurpServer {
    /// Creates a memory-only server with empty roles.
    pub fn new(id: ServerId, witness_config: CacheConfig) -> Arc<CurpServer> {
        Self::new_with(id, witness_config, StoreConfig::memory(1))
    }

    /// [`new`](Self::new) with an explicit engine choice for the backup
    /// role's replicas — e.g. [`StoreConfig::tiered`] for replicas larger
    /// than memory.
    pub fn new_with(
        id: ServerId,
        witness_config: CacheConfig,
        backup_store: StoreConfig,
    ) -> Arc<CurpServer> {
        Arc::new(CurpServer {
            id,
            master: Mutex::ranked(lockrank::SERVER_MASTER, "core.server.master", None),
            backup: BackupService::with_store(backup_store),
            witness: WitnessRole::Plain(WitnessService::new(witness_config)),
        })
    }

    /// Creates a durable server rooted at `data_dir`: the backup role keeps
    /// per-master write-ahead AOFs under `data_dir/backup/` and the witness
    /// role journals to `data_dir/witness.journal`. Opening over an existing
    /// directory **is** the cold-restart path — both roles replay whatever
    /// survives on disk before the server accepts its first request.
    pub fn new_durable(
        id: ServerId,
        witness_config: CacheConfig,
        data_dir: &Path,
    ) -> std::io::Result<Arc<CurpServer>> {
        Self::new_durable_with(id, witness_config, data_dir, StoreConfig::memory(1))
    }

    /// [`new_durable`](Self::new_durable) with an explicit engine choice
    /// for the backup role's replicas. The choice must stay stable across
    /// restarts of the same data directory (see `BackupService`'s module
    /// docs on checkpoint shard layout).
    pub fn new_durable_with(
        id: ServerId,
        witness_config: CacheConfig,
        data_dir: &Path,
        backup_store: StoreConfig,
    ) -> std::io::Result<Arc<CurpServer>> {
        std::fs::create_dir_all(data_dir)?;
        Ok(Arc::new(CurpServer {
            id,
            master: Mutex::ranked(lockrank::SERVER_MASTER, "core.server.master", None),
            backup: BackupService::durable_with(data_dir.join("backup"), backup_store)?,
            witness: WitnessRole::Journaled(JournaledWitness::open(
                witness_config,
                &data_dir.join("witness.journal"),
            )?),
        }))
    }

    /// Transport identity of this server.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Installs (or replaces) the master role.
    ///
    /// A *replaced* master is sealed: an abandoned recovery or migration
    /// attempt may have installed a half-initialized instance whose
    /// background syncer is still running, and sealing is what makes that
    /// syncer exit (and every late request bounce) instead of racing the
    /// replacement for the same backups.
    pub fn set_master(&self, master: Arc<Master>) {
        let old = self.master.lock().replace(master);
        if let Some(old) = old {
            let current = self.master.lock().clone();
            if !current.is_some_and(|c| Arc::ptr_eq(&c, &old)) {
                old.seal();
            }
        }
    }

    /// The hosted master, if any.
    pub fn master(&self) -> Option<Arc<Master>> {
        self.master.lock().clone()
    }

    /// The backup role (always present; empty until first sync).
    pub fn backup(&self) -> &BackupService {
        &self.backup
    }

    /// The witness role (always present; empty until `start`).
    pub fn witness(&self) -> &WitnessService {
        self.witness.service()
    }

    /// Seals the hosted master (crash simulation / decommission).
    pub fn seal_master(&self) {
        if let Some(m) = self.master.lock().as_ref() {
            m.seal();
        }
    }

    async fn dispatch(self: Arc<Self>, req: Request) -> Response {
        match &req {
            Request::ClientUpdate { .. }
            | Request::ClientRead { .. }
            | Request::Sync { .. }
            | Request::MasterWitnessList { .. }
            | Request::MasterClientExpired { .. }
            | Request::MasterLoadStats { .. } => {
                let master = self.master.lock().clone();
                match master {
                    Some(m) => m.handle_request(req).await,
                    None => Response::Retry { reason: "no master on this server".into() },
                }
            }
            Request::BackupSync { .. }
            | Request::BackupFetch { .. }
            | Request::BackupRead { .. }
            | Request::BackupInstall { .. }
            | Request::BackupSetEpoch { .. } => self.backup.handle_request(&req),
            Request::WitnessRecord { .. }
            | Request::WitnessCommuteCheck { .. }
            | Request::WitnessGc { .. }
            | Request::WitnessGetRecoveryData { .. }
            | Request::WitnessStart { .. }
            | Request::WitnessEnd { .. } => self.witness.handle_request(&req),
            Request::GetConfig | Request::AcquireLease | Request::RenewLease { .. } => {
                Response::Retry { reason: "not the coordinator".into() }
            }
            Request::Consensus { .. } => {
                Response::Retry { reason: "not a consensus replica".into() }
            }
            // Both transports unwrap batch frames before the handler (one
            // inner dispatch per request); a raw Batch reaching a server
            // means a transport that does not understand them.
            Request::Batch { .. } => {
                Response::Retry { reason: "batch frames are unwrapped by the transport".into() }
            }
        }
    }
}

/// Transport adapter for a server.
pub struct ServerHandler(pub Arc<CurpServer>);

impl RpcHandler for ServerHandler {
    fn handle(&self, _from: ServerId, req: Request) -> BoxFuture<'static, Response> {
        let server = Arc::clone(&self.0);
        Box::pin(server.dispatch(req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curp_proto::types::MasterId;

    #[tokio::test]
    async fn serverless_roles_answer_sanely() {
        let s = ServerHandler(CurpServer::new(ServerId(1), CacheConfig::default()));
        let rsp = s.handle(ServerId(9), Request::Sync { master_id: MasterId(1) }).await;
        assert!(matches!(rsp, Response::Retry { .. }), "no master installed");
        let rsp = s.handle(ServerId(9), Request::WitnessStart { master_id: MasterId(1) }).await;
        assert_eq!(rsp, Response::WitnessStarted { ok: true });
        let rsp = s.handle(ServerId(9), Request::GetConfig).await;
        assert!(matches!(rsp, Response::Retry { .. }), "not a coordinator");
    }
}
