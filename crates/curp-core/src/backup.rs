//! The backup role: ordered, durable replicas of a master's log.
//!
//! Backups hold "data that includes ordering information" (Figure 1). A
//! backup applies each master sync — a batch of contiguous, ordered
//! [`LogEntry`]s — to a materialized [`Store`] plus [`RiflTable`], verifying
//! determinism as it goes, and fences stale master epochs to neutralize
//! zombies (§4.7). During recovery it serves its materialized state as a
//! [`Snapshot`] (the "restoration from backups" step, §3.3).

use std::collections::HashMap;

use curp_proto::message::{LogEntry, Request, Response};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{Epoch, MasterId};
use curp_rifl::RiflTable;
use curp_storage::Store;
use parking_lot::Mutex;

use crate::snapshot::Snapshot;

struct Replica {
    store: Store,
    rifl: RiflTable,
    next_seq: u64,
    epoch: Epoch,
    /// Out-of-order arrivals waiting for their predecessors (masters may
    /// replicate entries from several worker threads concurrently, so a
    /// later entry can arrive first; it is buffered, not rejected).
    reorder: std::collections::BTreeMap<u64, LogEntry>,
}

impl Replica {
    fn new(epoch: Epoch) -> Self {
        Replica {
            store: Store::new(),
            rifl: RiflTable::new(),
            next_seq: 0,
            epoch,
            reorder: std::collections::BTreeMap::new(),
        }
    }

    fn apply(&mut self, e: &LogEntry) {
        let result = self.store.execute(&e.op);
        debug_assert_eq!(result, e.result, "nondeterministic replay of entry {}", e.seq);
        if let Some(id) = e.rpc_id {
            self.rifl.record(id, e.result.clone());
        }
        self.next_seq += 1;
    }

    fn drain_reorder(&mut self) {
        while let Some(e) = self.reorder.remove(&self.next_seq) {
            self.apply(&e);
        }
    }
}

/// A backup server hosting one replica per master.
#[derive(Default)]
pub struct BackupService {
    replicas: Mutex<HashMap<MasterId, Replica>>,
}

impl BackupService {
    /// Creates an empty backup service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a sync batch. Returns `(accepted, next_seq)`.
    ///
    /// * A stale epoch is rejected (`accepted == false`): the sender is a
    ///   fenced zombie (§4.7).
    /// * Entries below `next_seq` are duplicates from a retried sync and are
    ///   skipped idempotently.
    /// * Entries above `next_seq` are buffered and applied once their
    ///   predecessors arrive (concurrent replication from multiple master
    ///   workers may reorder batches in flight).
    pub fn sync(&self, master: MasterId, epoch: Epoch, entries: &[LogEntry]) -> (bool, u64) {
        let mut replicas = self.replicas.lock();
        let replica = replicas.entry(master).or_insert_with(|| Replica::new(epoch));
        if epoch < replica.epoch {
            return (false, replica.next_seq);
        }
        replica.epoch = epoch;
        for e in entries {
            if e.seq < replica.next_seq {
                continue; // idempotent re-send
            }
            if e.seq > replica.next_seq {
                replica.reorder.insert(e.seq, e.clone());
                continue;
            }
            replica.apply(e);
            replica.drain_reorder();
        }
        (true, replica.next_seq)
    }

    /// Raises the fencing epoch for `master` (coordinator, pre-recovery §4.7).
    pub fn set_epoch(&self, master: MasterId, epoch: Epoch) {
        let mut replicas = self.replicas.lock();
        let replica = replicas.entry(master).or_insert_with(|| Replica::new(epoch));
        if epoch > replica.epoch {
            replica.epoch = epoch;
        }
    }

    /// Serves the materialized replica as a snapshot (recovery restore).
    ///
    /// A master that crashed before its first sync has no replica yet; the
    /// restore then starts from an empty state (everything it executed lives
    /// only on witnesses), so an absent replica yields an empty snapshot.
    pub fn fetch(&self, master: MasterId) -> (u64, Snapshot) {
        let mut replicas = self.replicas.lock();
        let replica = replicas.entry(master).or_insert_with(|| Replica::new(Epoch(0)));
        (replica.next_seq, Snapshot::capture(&replica.store, &replica.rifl, replica.next_seq))
    }

    /// Replaces (or creates) the replica for `master` from a snapshot.
    /// Rejects stale epochs, like [`sync`](Self::sync).
    pub fn install(&self, master: MasterId, epoch: Epoch, next_seq: u64, snap: &Snapshot) -> bool {
        let mut replicas = self.replicas.lock();
        if let Some(existing) = replicas.get(&master) {
            if epoch < existing.epoch {
                return false;
            }
        }
        let (store, rifl) = snap.restore();
        replicas.insert(
            master,
            Replica { store, rifl, next_seq, epoch, reorder: std::collections::BTreeMap::new() },
        );
        true
    }

    /// Executes a read-only op against the replica (possibly stale — callers
    /// must have passed the §A.1 witness probe first).
    pub fn read(&self, master: MasterId, op: &Op) -> Option<OpResult> {
        if !op.is_read_only() {
            return None;
        }
        let mut replicas = self.replicas.lock();
        let replica = replicas.get_mut(&master)?;
        Some(replica.store.execute(op))
    }

    /// Drops the replica for `master` (post-recovery cleanup).
    pub fn drop_replica(&self, master: MasterId) {
        self.replicas.lock().remove(&master);
    }

    /// Next expected sequence number, if the replica exists (diagnostics).
    pub fn next_seq(&self, master: MasterId) -> Option<u64> {
        self.replicas.lock().get(&master).map(|r| r.next_seq)
    }

    /// Dispatches a backup-directed [`Request`].
    pub fn handle_request(&self, req: &Request) -> Response {
        match req {
            Request::BackupSync { master_id, epoch, entries } => {
                let (accepted, next_seq) = self.sync(*master_id, *epoch, entries);
                Response::BackupSynced { accepted, next_seq }
            }
            Request::BackupFetch { master_id } => {
                let (next_seq, snap) = self.fetch(*master_id);
                Response::BackupData { next_seq, snapshot: snap.to_blob() }
            }
            Request::BackupInstall { master_id, epoch, next_seq, snapshot } => {
                match Snapshot::from_blob(snapshot) {
                    Ok(snap) if self.install(*master_id, *epoch, *next_seq, &snap) => {
                        Response::BackupInstalled
                    }
                    Ok(_) => Response::Retry { reason: "stale install epoch".into() },
                    Err(e) => Response::Retry { reason: format!("bad snapshot: {e}") },
                }
            }
            Request::BackupRead { master_id, op } => match self.read(*master_id, op) {
                Some(result) => Response::BackupValue { result },
                None => Response::Retry { reason: "no replica or not a read".into() },
            },
            Request::BackupSetEpoch { master_id, epoch } => {
                self.set_epoch(*master_id, *epoch);
                Response::EpochSet
            }
            _ => Response::Retry { reason: "not a backup request".into() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use curp_proto::types::{ClientId, RpcId};

    const M: MasterId = MasterId(1);

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn entry(seq: u64, key: &str, val: &str, version: u64) -> LogEntry {
        LogEntry {
            seq,
            rpc_id: Some(RpcId::new(ClientId(1), seq + 1)),
            op: Op::Put { key: b(key), value: b(val) },
            result: OpResult::Written { version },
        }
    }

    #[test]
    fn applies_ordered_entries() {
        let bs = BackupService::new();
        let (ok, next) = bs.sync(M, Epoch(0), &[entry(0, "a", "1", 1), entry(1, "b", "2", 1)]);
        assert!(ok);
        assert_eq!(next, 2);
        assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(Some(b("1")))));
    }

    #[test]
    fn duplicate_entries_are_idempotent() {
        let bs = BackupService::new();
        bs.sync(M, Epoch(0), &[entry(0, "a", "1", 1)]);
        // Re-send of the same batch plus one new entry.
        let (ok, next) = bs.sync(M, Epoch(0), &[entry(0, "a", "1", 1), entry(1, "a", "2", 2)]);
        assert!(ok);
        assert_eq!(next, 2);
        assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(Some(b("2")))));
    }

    #[test]
    fn out_of_order_entries_are_buffered_until_contiguous() {
        let bs = BackupService::new();
        let (ok, next) = bs.sync(M, Epoch(0), &[entry(1, "a", "2", 2)]);
        assert!(ok, "future entry is buffered, not refused");
        assert_eq!(next, 0, "nothing applied yet");
        // Reads do not see buffered entries.
        assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(None)));
        let (ok, next) = bs.sync(M, Epoch(0), &[entry(0, "a", "1", 1)]);
        assert!(ok);
        assert_eq!(next, 2, "gap filled; both applied in order");
        assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(Some(b("2")))));
    }

    #[test]
    fn zombie_epoch_fenced() {
        let bs = BackupService::new();
        bs.sync(M, Epoch(1), &[entry(0, "a", "1", 1)]);
        bs.set_epoch(M, Epoch(2));
        let (ok, _) = bs.sync(M, Epoch(1), &[entry(1, "a", "2", 2)]);
        assert!(!ok, "stale-epoch sync must be rejected");
        // The new epoch's syncs are fine.
        let (ok, _) = bs.sync(M, Epoch(2), &[entry(1, "a", "2", 2)]);
        assert!(ok);
    }

    #[test]
    fn epoch_never_lowers() {
        let bs = BackupService::new();
        bs.set_epoch(M, Epoch(5));
        bs.set_epoch(M, Epoch(3));
        let (ok, _) = bs.sync(M, Epoch(4), &[]);
        assert!(!ok);
    }

    #[test]
    fn fetch_of_unknown_master_is_empty() {
        let bs = BackupService::new();
        let (next, snap) = bs.fetch(MasterId(42));
        assert_eq!(next, 0);
        assert!(snap.objects.is_empty());
    }

    #[test]
    fn fetch_install_roundtrip() {
        let bs = BackupService::new();
        bs.sync(M, Epoch(0), &[entry(0, "a", "1", 1), entry(1, "b", "2", 1)]);
        let (next, snap) = bs.fetch(M);
        assert_eq!(next, 2);

        let target = BackupService::new();
        assert!(target.install(MasterId(2), Epoch(1), next, &snap));
        assert_eq!(
            target.read(MasterId(2), &Op::Get { key: b("b") }),
            Some(OpResult::Value(Some(b("2"))))
        );
        // RIFL records travel with the snapshot.
        let replicas = target.replicas.lock();
        assert_eq!(replicas.get(&MasterId(2)).unwrap().rifl.record_count(), 2);
    }

    #[test]
    fn install_rejects_stale_epoch() {
        let bs = BackupService::new();
        bs.set_epoch(M, Epoch(5));
        let snap = Snapshot::capture(&Store::new(), &RiflTable::new(), 0);
        assert!(!bs.install(M, Epoch(4), 0, &snap));
        assert!(bs.install(M, Epoch(5), 0, &snap));
    }

    #[test]
    fn read_rejects_mutations() {
        let bs = BackupService::new();
        bs.sync(M, Epoch(0), &[entry(0, "a", "1", 1)]);
        assert_eq!(bs.read(M, &Op::Put { key: b("a"), value: b("2") }), None);
    }

    #[test]
    fn rifl_records_accumulate() {
        let bs = BackupService::new();
        bs.sync(M, Epoch(0), &[entry(0, "a", "1", 1), entry(1, "b", "1", 1)]);
        let replicas = bs.replicas.lock();
        assert_eq!(replicas.get(&M).unwrap().rifl.record_count(), 2);
    }

    #[test]
    fn rpc_dispatch() {
        let bs = BackupService::new();
        let rsp = bs.handle_request(&Request::BackupSync {
            master_id: M,
            epoch: Epoch(0),
            entries: vec![entry(0, "a", "1", 1)],
        });
        assert_eq!(rsp, Response::BackupSynced { accepted: true, next_seq: 1 });
        match bs.handle_request(&Request::BackupFetch { master_id: M }) {
            Response::BackupData { next_seq, snapshot } => {
                assert_eq!(next_seq, 1);
                assert!(Snapshot::from_blob(&snapshot).is_ok());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            bs.handle_request(&Request::BackupRead { master_id: M, op: Op::Get { key: b("a") } }),
            Response::BackupValue { result: OpResult::Value(Some(b("1"))) }
        );
        assert_eq!(
            bs.handle_request(&Request::BackupSetEpoch { master_id: M, epoch: Epoch(9) }),
            Response::EpochSet
        );
        assert!(matches!(bs.handle_request(&Request::GetConfig), Response::Retry { .. }));
    }
}
