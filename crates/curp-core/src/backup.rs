//! The backup role: ordered, durable replicas of a master's log.
//!
//! Backups hold "data that includes ordering information" (Figure 1). A
//! backup applies each master sync — a batch of contiguous, ordered
//! [`LogEntry`]s — to a materialized [`StateStore`] plus [`RiflTable`],
//! verifying determinism as it goes, and fences stale master epochs to
//! neutralize zombies (§4.7). During recovery it serves its materialized
//! state as a [`Snapshot`] (the "restoration from backups" step, §3.3).
//! Which engine backs a replica — purely in-memory or the tiered
//! larger-than-memory engine — is a [`StoreConfig`] choice; the backup
//! logic never names one.
//!
//! ## Durability (§5.4)
//!
//! A backup built with [`BackupService::durable`] keeps one append-only
//! file per master under its data directory and follows the write-ahead
//! discipline: every sync round's applicable entries are appended and
//! fsynced **before** they are applied or acknowledged — "log client
//! requests to an append-only file and invoke fsync before responding"
//! (§5.4), with one `write + fsync` per round, the §C.2 batching. A master
//! recovery install persists the snapshot (plus its fencing epoch) next to
//! the AOF. After a whole-cluster power loss,
//! [`BackupService::restore_from_aof`] rebuilds each replica from
//! the snapshot + AOF suffix, so everything a backup ever acknowledged
//! survives the restart — the invariant `Coordinator::restart_cluster`
//! builds on.
//!
//! ## Bounded log: incremental checkpoints + AOF rewrite
//!
//! Left alone, the AOF grows with the op count, not the live-data size.
//! Every `MAINT_EVERY` applied entries the replica takes a maintenance
//! tick: it checkpoints **one** shard of its store (round-robin) to a
//! sidecar file `master-N.ckptS`, then — once every shard's checkpoint
//! has advanced past the log's oldest entry — rewrites the AOF keeping
//! only the uncovered suffix ([`Aof::rewrite`], crash-safe tmp + rename).
//! A checkpoint's coverage only advances after its file is durable, and
//! the rewrite never drops an entry some shard still needs (DESIGN.md
//! invariant 12), so at every instant
//! `base snapshot + valid checkpoints + AOF suffix` reconstructs all
//! acknowledged state. [`BackupService::compact`] is the explicit form —
//! a full checkpoint round plus a rewrite — and
//! [`BackupService::footprint`] reports the resulting file sizes.
//!
//! Restore overlays each surviving checkpoint over the base snapshot (a
//! checkpoint from a different install, shard layout, or an unreadable
//! file is ignored) and replays the AOF suffix, skipping the slice of
//! each entry already folded into a shard's checkpoint. One operational
//! constraint follows: the shard count of a durable backup must not
//! change across restarts once the AOF has been rewritten, because the
//! checkpoints are keyed to the layout that produced them.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use bytes::{Buf, Bytes};
use curp_proto::lockrank;
use curp_proto::message::{LogEntry, Request, Response};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{Epoch, KeyHash, MasterId};
use curp_rifl::RiflTable;
use curp_storage::{Aof, FsyncPolicy, StateStore, StoreConfig};
use parking_lot::Mutex;

use crate::snapshot::Snapshot;

/// Applied entries between background maintenance ticks (one shard
/// checkpoint + store maintenance + rewrite check per tick).
const MAINT_EVERY: u64 = 512;

fn aof_path(dir: &Path, master: MasterId) -> PathBuf {
    dir.join(format!("master-{}.aof", master.0))
}

fn snap_path(dir: &Path, master: MasterId) -> PathBuf {
    dir.join(format!("master-{}.snap", master.0))
}

fn fence_path(dir: &Path, master: MasterId) -> PathBuf {
    dir.join(format!("master-{}.fence", master.0))
}

fn ckpt_path(dir: &Path, master: MasterId, shard: usize) -> PathBuf {
    dir.join(format!("master-{}.ckpt{}", master.0, shard))
}

/// Persists the fencing epoch for `master` as a sidecar file (8-byte LE
/// epoch, tmp + fsync + rename + dir fsync). The fence must survive this
/// backup's own crash: the coordinator fences *before* recovery reads any
/// backup (§4.7), and a zombie master can outlive a backup reboot — a fence
/// that only lives in memory would re-admit its stale syncs after a cold
/// restart.
fn persist_fence(dir: &Path, master: MasterId, epoch: Epoch) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = dir.join(format!("master-{}.fence.tmp", master.0));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&epoch.0.to_le_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, fence_path(dir, master))?;
    curp_storage::fsync_dir(dir)
}

/// Reads the persisted fence, if any ([`Epoch(0)`](Epoch) when absent).
fn load_fence(dir: &Path, master: MasterId) -> std::io::Result<Epoch> {
    match std::fs::read(fence_path(dir, master)) {
        Ok(raw) => {
            let bytes: [u8; 8] =
                raw.try_into().map_err(|_| corrupt(format!("bad fence file for {master:?}")))?;
            Ok(Epoch(u64::from_le_bytes(bytes)))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Epoch(0)),
        Err(e) => Err(e),
    }
}

fn corrupt(what: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what)
}

/// The shared empty snapshot handed out for masters with no replica —
/// recovery retries hit [`BackupService::fetch`] repeatedly, and building
/// a fresh store + RIFL table per miss is pure waste.
fn empty_snapshot() -> &'static Snapshot {
    static EMPTY: std::sync::OnceLock<Snapshot> = std::sync::OnceLock::new();
    EMPTY.get_or_init(|| {
        Snapshot::from_parts((Vec::new(), Vec::new()), RiflTable::new().export(), 0)
    })
}

/// Executes `op` against a replica store and marks it synced at once:
/// everything a backup holds is by definition durable *on this backup*,
/// so the synced frontier tracks the log head — which also keeps the
/// tiered engine free to spill any of it.
fn exec_synced(store: &dyn StateStore, op: &Op) -> OpResult {
    let mut guards = store.lock_all_for(Some(op));
    let result = guards.execute(op);
    guards.mark_synced(store.log_head());
    result
}

struct Replica {
    store: Box<dyn StateStore>,
    rifl: RiflTable,
    next_seq: u64,
    epoch: Epoch,
    /// Out-of-order arrivals waiting for their predecessors (masters may
    /// replicate entries from several worker threads concurrently, so a
    /// later entry can arrive first; it is buffered, not rejected).
    reorder: std::collections::BTreeMap<u64, LogEntry>,
    /// Write-ahead log handle (`None` on a memory-only service).
    aof: Option<Aof>,
    /// Set after a persistence failure: the on-disk suffix is unknown, so
    /// the replica refuses every further sync (fail-stop) rather than ack
    /// entries whose durability it cannot vouch for. Cleared only by a cold
    /// restart, which re-reads the disk.
    wedged: bool,
    /// Identity of the base `.snap` file the shard checkpoints overlay:
    /// the `(epoch, next_seq)` persisted in its header, `(Epoch(0), 0)`
    /// when none exists. A checkpoint recorded over a different base
    /// describes another install's timeline and is ignored on restore.
    base: (Epoch, u64),
    /// Per-shard checkpoint coverage: checkpoint file `i` durably holds
    /// shard `i`'s state with every entry below `coverage[i]` folded in.
    /// Starts at the base snapshot's `next_seq`; advances only after the
    /// checkpoint file is fsynced and renamed into place.
    coverage: Vec<u64>,
    /// Next shard to checkpoint (round-robin, one per maintenance tick).
    next_ckpt: usize,
    /// Entries applied since the last maintenance tick.
    since_maint: u64,
    /// `min(coverage)` at the last AOF rewrite — the oldest entry the log
    /// still carries.
    rewritten: u64,
}

impl Replica {
    fn new(cfg: &StoreConfig, epoch: Epoch, aof: Option<Aof>) -> Self {
        Self::from_parts(cfg.build(), RiflTable::new(), 0, epoch, aof, (Epoch(0), 0))
    }

    fn from_parts(
        store: Box<dyn StateStore>,
        rifl: RiflTable,
        next_seq: u64,
        epoch: Epoch,
        aof: Option<Aof>,
        base: (Epoch, u64),
    ) -> Self {
        let coverage = vec![base.1; store.num_shards()];
        Replica {
            store,
            rifl,
            next_seq,
            epoch,
            reorder: std::collections::BTreeMap::new(),
            aof,
            wedged: false,
            base,
            coverage,
            next_ckpt: 0,
            since_maint: 0,
            rewritten: base.1,
        }
    }

    fn apply(&mut self, e: &LogEntry) {
        let result = exec_synced(self.store.as_ref(), &e.op);
        debug_assert_eq!(result, e.result, "nondeterministic replay of entry {}", e.seq);
        if let Some(id) = e.rpc_id {
            self.rifl.record(id, e.result.clone());
        }
        self.next_seq += 1;
        self.since_maint += 1;
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot::from_parts(self.store.export(), self.rifl.export(), self.next_seq)
    }
}

/// A parsed `master-N.ckptS` sidecar file.
struct CkptFile {
    base: (Epoch, u64),
    shard_count: usize,
    shard: usize,
    /// Shard payload; `snap.next_seq` is the coverage, `snap.rifl` the
    /// full completion-record table as of that entry.
    snap: Snapshot,
}

/// How much of a logged op still needs re-execution on restore, given
/// per-shard checkpoint coverage.
enum Replay {
    /// Every key is below its shard's coverage — already folded in.
    Covered,
    /// No key is covered: re-execute verbatim (and verify determinism).
    Full,
    /// Some keys are covered (a `MultiPut` spanning shards whose
    /// checkpoints diverged): re-execute only the uncovered pairs. The
    /// logged result stands in — a slice of an op cannot reproduce it.
    Partial(Op),
}

fn replay_plan(op: &Op, covered: impl Fn(&Bytes) -> bool) -> Replay {
    if let Op::MultiPut { kvs } = op {
        let kept: Vec<(Bytes, Bytes)> = kvs.iter().filter(|(k, _)| !covered(k)).cloned().collect();
        if kept.is_empty() {
            Replay::Covered
        } else if kept.len() == kvs.len() {
            Replay::Full
        } else {
            Replay::Partial(Op::MultiPut { kvs: kept })
        }
    } else if op.keys().any(covered) {
        Replay::Covered
    } else {
        Replay::Full
    }
}

/// Outcome of one [`BackupService::sync`] round.
#[must_use = "a sync round's outcome decides whether witnesses may be reset"]
#[derive(Debug, PartialEq, Eq)]
pub enum SyncOutcome {
    /// Entries staged/applied; everything at `seq < next_seq` is durable
    /// (fsynced, on a durable service) on this backup.
    Applied {
        /// Next expected sequence number.
        next_seq: u64,
    },
    /// The sender's epoch is stale — it is a fenced zombie (§4.7).
    Fenced {
        /// Next expected sequence number (for the sender's diagnostics).
        next_seq: u64,
    },
    /// The write-ahead append or fsync failed; nothing was acknowledged and
    /// the replica is wedged until a cold restart.
    PersistFailed {
        /// The underlying I/O error.
        error: String,
    },
}

/// On-disk and in-memory size accounting for one replica — diagnostics,
/// and the acceptance check that compaction keeps the log bounded by the
/// live state rather than the op count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackupFootprint {
    /// Bytes in the write-ahead log file (0 on a memory-only service).
    pub aof_bytes: u64,
    /// Bytes across the base snapshot and per-shard checkpoint files.
    pub checkpoint_bytes: u64,
    /// Payload bytes of the live replica state: keys + encoded objects +
    /// dead-version memory, wherever the engine keeps them.
    pub state_bytes: u64,
}

/// A backup server hosting one replica per master.
pub struct BackupService {
    replicas: Mutex<HashMap<MasterId, Replica>>,
    /// Data directory for the per-master AOFs + snapshots (`None` =
    /// memory-only, the pre-§5.4 configuration).
    dir: Option<PathBuf>,
    /// Engine choice for every replica this service hosts. Backups apply
    /// serially under the service lock, so the default is a single shard.
    store_cfg: StoreConfig,
}

impl Default for BackupService {
    fn default() -> Self {
        BackupService {
            replicas: Mutex::ranked(
                lockrank::BACKUP_REPLICAS,
                "core.backup.replicas",
                HashMap::new(),
            ),
            dir: None,
            store_cfg: StoreConfig::memory(1),
        }
    }
}

impl BackupService {
    /// Creates an empty, memory-only backup service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a memory-only service with a custom store engine — e.g. a
    /// tiered memtable for replicas larger than memory.
    pub fn with_store(store_cfg: StoreConfig) -> Self {
        BackupService { store_cfg, ..Self::default() }
    }

    /// Creates (or reopens) a durable backup service rooted at `dir`,
    /// restoring every replica that survives on disk — the cold-restart
    /// entry point. See the module docs for the write-ahead discipline.
    pub fn durable(dir: impl Into<PathBuf>) -> std::io::Result<BackupService> {
        Self::durable_with(dir, StoreConfig::memory(1))
    }

    /// [`durable`](Self::durable) with an explicit engine choice. The
    /// shard count also sets the checkpoint granularity; it must stay
    /// stable across restarts of the same data directory (module docs).
    pub fn durable_with(
        dir: impl Into<PathBuf>,
        store_cfg: StoreConfig,
    ) -> std::io::Result<BackupService> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let svc = BackupService {
            replicas: Mutex::ranked(
                lockrank::BACKUP_REPLICAS,
                "core.backup.replicas",
                HashMap::new(),
            ),
            dir: Some(dir),
            store_cfg,
        };
        svc.restore_all_from_disk()?;
        Ok(svc)
    }

    /// Whether this service persists its replicas.
    pub fn is_durable(&self) -> bool {
        self.dir.is_some()
    }

    /// Looks up (creating if absent) the replica for `master`. Creation
    /// opens the write-ahead AOF on a durable service, which can fail.
    fn replica_entry<'a>(
        dir: Option<&Path>,
        cfg: &StoreConfig,
        replicas: &'a mut HashMap<MasterId, Replica>,
        master: MasterId,
        epoch: Epoch,
    ) -> std::io::Result<&'a mut Replica> {
        use std::collections::hash_map::Entry;
        match replicas.entry(master) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(v) => {
                let aof = dir
                    .map(|d| Aof::open(&aof_path(d, master), FsyncPolicy::Manual))
                    .transpose()?;
                Ok(v.insert(Replica::new(cfg, epoch, aof)))
            }
        }
    }

    /// Applies a sync batch.
    ///
    /// * A stale epoch is [`SyncOutcome::Fenced`]: the sender is a zombie
    ///   (§4.7).
    /// * Entries below `next_seq` are duplicates from a retried sync and are
    ///   skipped idempotently.
    /// * Entries above `next_seq` are buffered and applied once their
    ///   predecessors arrive (concurrent replication from multiple master
    ///   workers may reorder batches in flight).
    /// * On a durable service the round's applicable entries are appended
    ///   and fsynced **before** being applied: an `Applied` ack implies the
    ///   covering fsync happened (DESIGN.md invariant 7). A failed append
    ///   wedges the replica — fail-stop, never an unbacked ack.
    pub fn sync(&self, master: MasterId, epoch: Epoch, entries: &[LogEntry]) -> SyncOutcome {
        let mut replicas = self.replicas.lock();
        let replica = match Self::replica_entry(
            self.dir.as_deref(),
            &self.store_cfg,
            &mut replicas,
            master,
            epoch,
        ) {
            Ok(r) => r,
            Err(e) => return SyncOutcome::PersistFailed { error: format!("open aof: {e}") },
        };
        // Fencing is answered before the wedge: a deposed zombie must learn
        // it was fenced (and seal itself) even from a backup that can no
        // longer persist — Retry would have it retry forever, unsealed.
        if epoch < replica.epoch {
            return SyncOutcome::Fenced { next_seq: replica.next_seq };
        }
        replica.epoch = epoch;
        if replica.wedged {
            return SyncOutcome::PersistFailed { error: "replica wedged (fail-stop)".into() };
        }
        // Common case first: the batch is exactly the next contiguous run
        // (masters send seq-sorted batches) and nothing is buffered — apply
        // straight from the slice, no staging clones, no map churn. The
        // general path (gaps, interleaved duplicates, buffered entries)
        // stages through the reorder map.
        let dup_prefix = entries.iter().take_while(|e| e.seq < replica.next_seq).count();
        let fresh = &entries[dup_prefix..];
        let contiguous = replica.reorder.is_empty()
            && fresh.iter().enumerate().all(|(i, e)| e.seq == replica.next_seq + i as u64);
        let staged: Vec<LogEntry>;
        let ready: &[LogEntry] = if contiguous {
            fresh
        } else {
            for e in fresh {
                if e.seq >= replica.next_seq {
                    replica.reorder.insert(e.seq, e.clone());
                }
            }
            let mut run = Vec::new();
            let mut n = replica.next_seq;
            while let Some(e) = replica.reorder.remove(&n) {
                run.push(e);
                n += 1;
            }
            staged = run;
            &staged
        };
        // Write-ahead: one append + one fsync per sync round, before apply.
        if let Some(aof) = replica.aof.as_mut() {
            if !ready.is_empty() {
                if let Err(e) = aof.append_batch(ready).and_then(|()| aof.sync()) {
                    replica.wedged = true;
                    return SyncOutcome::PersistFailed { error: format!("aof append: {e}") };
                }
            }
        }
        for e in ready {
            replica.apply(e);
        }
        if replica.since_maint >= MAINT_EVERY {
            replica.since_maint = 0;
            Self::maintain_replica(self.dir.as_deref(), replica, master);
        }
        if replica.wedged {
            return SyncOutcome::PersistFailed { error: "replica wedged (fail-stop)".into() };
        }
        SyncOutcome::Applied { next_seq: replica.next_seq }
    }

    /// One background maintenance tick: tick the store engine (tier
    /// flush/merge), checkpoint the next shard round-robin, and rewrite
    /// the AOF once every shard's coverage has passed its oldest entry.
    ///
    /// A failed checkpoint is merely skipped — coverage does not advance
    /// and the AOF still holds everything. A failed **rewrite** wedges
    /// the replica: the swap may have half-happened, so the on-disk
    /// suffix is no longer known-good — same fail-stop as a failed
    /// append.
    fn maintain_replica(dir: Option<&Path>, replica: &mut Replica, master: MasterId) {
        let _ = replica.store.maintain();
        let Some(dir) = dir else { return };
        let shard = replica.next_ckpt % replica.coverage.len();
        replica.next_ckpt = (shard + 1) % replica.coverage.len();
        if Self::checkpoint_shard(dir, replica, master, shard).is_ok() {
            replica.coverage[shard] = replica.next_seq;
        }
        let min_cov = replica.coverage.iter().copied().min().unwrap_or(replica.next_seq);
        if min_cov > replica.rewritten && Self::rewrite_aof(dir, replica, master, min_cov).is_err()
        {
            replica.wedged = true;
        }
    }

    /// Writes shard `shard`'s state (plus the full RIFL table) to its
    /// checkpoint file: header `[base epoch][base next_seq][shard count]
    /// [shard idx]` + snapshot blob whose `next_seq` is the coverage.
    /// tmp + fsync + rename + dir fsync, like every other install here.
    fn checkpoint_shard(
        dir: &Path,
        replica: &Replica,
        master: MasterId,
        shard: usize,
    ) -> std::io::Result<()> {
        use std::io::Write;
        let (objects, dead_versions) = replica.store.export_shard(shard);
        let snap = Snapshot {
            objects,
            dead_versions,
            rifl: replica.rifl.export(),
            next_seq: replica.next_seq,
        };
        let path = ckpt_path(dir, master, shard);
        let tmp = dir.join(format!("master-{}.ckpt{}.tmp", master.0, shard));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&replica.base.0 .0.to_le_bytes())?;
            f.write_all(&replica.base.1.to_le_bytes())?;
            f.write_all(&(replica.coverage.len() as u32).to_le_bytes())?;
            f.write_all(&(shard as u32).to_le_bytes())?;
            f.write_all(&snap.to_blob())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        curp_storage::fsync_dir(dir)
    }

    fn parse_ckpt(raw: &[u8]) -> std::io::Result<CkptFile> {
        let mut buf = raw;
        if buf.remaining() < 24 {
            return Err(corrupt("ckpt file shorter than its header".into()));
        }
        let base = (Epoch(buf.get_u64_le()), buf.get_u64_le());
        let shard_count = buf.get_u32_le() as usize;
        let shard = buf.get_u32_le() as usize;
        let snap = Snapshot::from_blob(buf).map_err(|e| corrupt(format!("ckpt blob: {e}")))?;
        Ok(CkptFile { base, shard_count, shard, snap })
    }

    /// Replaces the AOF with only the entries at-or-above `min_cov` — the
    /// suffix not yet folded into every shard checkpoint. Never discards
    /// an entry some shard's restore would still replay (DESIGN.md
    /// invariant 12: coverage is the durable frontier here, and it only
    /// advances behind fsynced checkpoint files).
    fn rewrite_aof(
        dir: &Path,
        replica: &mut Replica,
        master: MasterId,
        min_cov: u64,
    ) -> std::io::Result<()> {
        let path = aof_path(dir, master);
        let outcome = Aof::load(&path)?;
        let kept: Vec<LogEntry> =
            outcome.entries.into_iter().filter(|e| e.seq >= min_cov).collect();
        replica.aof = Some(Aof::rewrite(&path, &kept, FsyncPolicy::Manual)?);
        replica.rewritten = min_cov;
        Ok(())
    }

    /// Forces a full checkpoint round plus an AOF rewrite — the explicit
    /// form of the background maintenance tick, shrinking the on-disk log
    /// to nothing on a quiescent replica *now*. No-op for an absent
    /// replica; only the store's own maintenance applies on a memory-only
    /// service.
    pub fn compact(&self, master: MasterId) -> std::io::Result<()> {
        let mut replicas = self.replicas.lock();
        let Some(replica) = replicas.get_mut(&master) else { return Ok(()) };
        replica.store.maintain()?;
        let Some(dir) = self.dir.as_deref() else { return Ok(()) };
        for shard in 0..replica.coverage.len() {
            Self::checkpoint_shard(dir, replica, master, shard)?;
            replica.coverage[shard] = replica.next_seq;
        }
        let min_cov = replica.next_seq;
        if let Err(e) = Self::rewrite_aof(dir, replica, master, min_cov) {
            replica.wedged = true;
            return Err(e);
        }
        Ok(())
    }

    /// Size accounting for `master`'s replica (see [`BackupFootprint`]).
    pub fn footprint(&self, master: MasterId) -> Option<BackupFootprint> {
        let replicas = self.replicas.lock();
        let replica = replicas.get(&master)?;
        let (objects, dead) = replica.store.export();
        let state_bytes = objects
            .iter()
            .map(|(k, o)| (k.len() + curp_proto::wire::Encode::encoded_len(o)) as u64)
            .sum::<u64>()
            + dead.iter().map(|(k, _)| (k.len() + 8) as u64).sum::<u64>();
        let (mut aof_bytes, mut checkpoint_bytes) = (0, 0);
        if let Some(dir) = &self.dir {
            let len = |p: PathBuf| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
            aof_bytes = len(aof_path(dir, master));
            checkpoint_bytes = len(snap_path(dir, master));
            for shard in 0..replica.coverage.len() {
                checkpoint_bytes += len(ckpt_path(dir, master, shard));
            }
        }
        Some(BackupFootprint { aof_bytes, checkpoint_bytes, state_bytes })
    }

    /// Raises the fencing epoch for `master` (coordinator, pre-recovery §4.7).
    ///
    /// On a durable service the fence is persisted before returning: it must
    /// keep rejecting the zombie across this backup's own restart, or a
    /// crash between the coordinator's fence and the recovery install
    /// re-admits the deposed master's syncs. If the fence cannot be
    /// persisted the replica wedges (fail-stop), same as a failed append —
    /// it may not acknowledge anything whose rejection it cannot guarantee.
    pub fn set_epoch(&self, master: MasterId, epoch: Epoch) {
        let mut replicas = self.replicas.lock();
        let Ok(replica) =
            Self::replica_entry(self.dir.as_deref(), &self.store_cfg, &mut replicas, master, epoch)
        else {
            // The AOF could not even be opened: syncs will fail the same
            // way, so the fence is moot — there is nothing to protect.
            return;
        };
        if epoch >= replica.epoch {
            replica.epoch = epoch;
            if let Some(dir) = &self.dir {
                if persist_fence(dir, master, epoch).is_err() {
                    replica.wedged = true;
                }
            }
        }
    }

    /// Serves the materialized replica as a snapshot (recovery restore).
    ///
    /// A master that crashed before its first sync has no replica yet; the
    /// restore then starts from an empty state (everything it executed lives
    /// only on witnesses), so an absent replica yields the shared empty
    /// snapshot.
    pub fn fetch(&self, master: MasterId) -> (u64, Snapshot) {
        let replicas = self.replicas.lock();
        match replicas.get(&master) {
            Some(r) => (r.next_seq, r.snapshot()),
            None => (0, empty_snapshot().clone()),
        }
    }

    /// Replaces (or creates) the replica for `master` from a snapshot.
    /// Returns `Ok(false)` for a stale epoch, like [`sync`](Self::sync);
    /// `Err` when a durable service cannot persist the install.
    pub fn install(
        &self,
        master: MasterId,
        epoch: Epoch,
        next_seq: u64,
        snap: &Snapshot,
    ) -> std::io::Result<bool> {
        let mut replicas = self.replicas.lock();
        if let Some(existing) = replicas.get(&master) {
            if epoch < existing.epoch {
                return Ok(false);
            }
        }
        let aof = match &self.dir {
            Some(dir) => {
                Self::persist_install(dir, master, epoch, next_seq, snap)?;
                Some(Aof::open(&aof_path(dir, master), FsyncPolicy::Manual)?)
            }
            None => None,
        };
        let store = self.store_cfg.build_import(snap.objects.clone(), snap.dead_versions.clone());
        let rifl = RiflTable::import(snap.rifl.clone());
        replicas.insert(
            master,
            Replica::from_parts(store, rifl, next_seq, epoch, aof, (epoch, next_seq)),
        );
        Ok(true)
    }

    /// Persists an installed snapshot: header (epoch, next_seq) + blob,
    /// written to a temp file, fsynced, renamed over the `.snap` path —
    /// then any shard checkpoints (stale: they overlaid the previous
    /// base) are deleted and the AOF is truncated (subsequent syncs
    /// continue from `next_seq`). Crash between the rename and the
    /// cleanup leaves stale AOF entries below `next_seq`, which
    /// [`BackupService::restore_from_aof`] skips, and stale checkpoints,
    /// which it ignores by their base mismatch.
    fn persist_install(
        dir: &Path,
        master: MasterId,
        epoch: Epoch,
        next_seq: u64,
        snap: &Snapshot,
    ) -> std::io::Result<()> {
        let tmp = dir.join(format!("master-{}.snap.tmp", master.0));
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&epoch.0.to_le_bytes())?;
            f.write_all(&next_seq.to_le_bytes())?;
            f.write_all(&snap.to_blob())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, snap_path(dir, master))?;
        Self::remove_ckpts(dir, master)?;
        let aof = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(aof_path(dir, master))?;
        aof.sync_data()?;
        // The rename and any file creation live in the directory: flush it,
        // or a power loss can forget the whole install (fsynced contents
        // with no directory entry are unreachable).
        curp_storage::fsync_dir(dir)
    }

    /// Deletes every `master-N.ckpt*` file — whatever shard layout wrote
    /// them (the count on disk may predate this service's config).
    fn remove_ckpts(dir: &Path, master: MasterId) -> std::io::Result<()> {
        let prefix = format!("master-{}.ckpt", master.0);
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().starts_with(&prefix) {
                std::fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    /// Rebuilds the replica for `master` from its on-disk state — the
    /// persisted snapshot (if any), the surviving shard checkpoints, and
    /// the AOF suffix — replaying uncovered entries in order and verifying
    /// deterministic results where the whole op is replayed. Returns the
    /// restored `next_seq`. A torn AOF tail is discarded (it was never
    /// acknowledged: the fsync precedes every ack); a seq gap or mid-log
    /// corruption is an error — including the gap left when a checkpoint
    /// the rewrite trusted has since been lost or corrupted.
    pub fn restore_from_aof(&self, master: MasterId) -> std::io::Result<u64> {
        let dir = self
            .dir
            .clone()
            .ok_or_else(|| corrupt("restore_from_aof on a memory-only service".into()))?;
        let (base_snap, snap_epoch) = match std::fs::read(snap_path(&dir, master)) {
            Ok(raw) => Self::parse_snap(&raw)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                (empty_snapshot().clone(), Epoch(0))
            }
            Err(e) => return Err(e),
        };
        let base = (snap_epoch, base_snap.next_seq);
        // The sidecar fence may be ahead of the snapshot epoch (set_epoch
        // between installs); the replica restores at the higher of the two.
        let epoch = snap_epoch.max(load_fence(&dir, master)?);

        // Overlay each surviving shard checkpoint: it replaces that
        // shard's slice of the base state wholesale and raises the
        // shard's coverage. Unreadable files, other bases, and other
        // shard layouts are skipped — if the AOF was rewritten past a
        // checkpoint that is now unusable, the gap check below fails
        // loudly rather than silently resurrecting older state.
        let shards = self.store_cfg.shards;
        let mut coverage = vec![base.1; shards];
        let (mut objects, mut dead_versions) = (base_snap.objects, base_snap.dead_versions);
        let mut rifl_export = base_snap.rifl;
        let mut rifl_cov = base.1;
        let mut ckpts = Vec::new();
        for shard in 0..shards {
            let raw = match std::fs::read(ckpt_path(&dir, master, shard)) {
                Ok(raw) => raw,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            let Ok(ckpt) = Self::parse_ckpt(&raw) else { continue };
            if ckpt.base != base
                || ckpt.shard_count != shards
                || ckpt.shard != shard
                || ckpt.snap.next_seq < base.1
            {
                continue;
            }
            ckpts.push(ckpt);
        }
        if !ckpts.is_empty() {
            let mut replaced = vec![false; shards];
            for c in &ckpts {
                replaced[c.shard] = true;
            }
            objects.retain(|(k, _)| !replaced[KeyHash::of(k).shard(shards)]);
            dead_versions.retain(|(k, _)| !replaced[KeyHash::of(k).shard(shards)]);
            for mut c in ckpts {
                coverage[c.shard] = c.snap.next_seq;
                if c.snap.next_seq >= rifl_cov {
                    rifl_cov = c.snap.next_seq;
                    rifl_export = c.snap.rifl.clone();
                }
                objects.append(&mut c.snap.objects);
                dead_versions.append(&mut c.snap.dead_versions);
            }
        }

        let store = self.store_cfg.build_import(objects, dead_versions);
        let mut rifl = RiflTable::import(rifl_export);
        // lint: audited-unwrap — num_shards is asserted positive at construction
        let min_cov = *coverage.iter().min().expect("at least one shard");
        // lint: audited-unwrap — same non-empty shard vector as above
        let max_cov = *coverage.iter().max().expect("at least one shard");
        // A crash mid-rewrite may strand the tmp file the rename never
        // consumed; the rename is the commit point, so the tmp is dead
        // bytes — drop it rather than let it linger forever.
        match std::fs::remove_file(aof_path(&dir, master).with_extension("rewrite")) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let outcome = Aof::load(&aof_path(&dir, master))?;
        let mut next_seq = min_cov;
        for e in &outcome.entries {
            if e.seq < next_seq {
                continue; // covered by a checkpoint, or pre-install remnant
            }
            if e.seq > next_seq {
                return Err(corrupt(format!(
                    "gap in AOF for {master:?}: expected seq {next_seq}, found {}",
                    e.seq
                )));
            }
            match replay_plan(&e.op, |k| coverage[KeyHash::of(k).shard(shards)] > e.seq) {
                Replay::Covered => {}
                Replay::Full => {
                    let result = exec_synced(store.as_ref(), &e.op);
                    if result != e.result {
                        // A hard error, not an assert: a replica whose
                        // replay diverges from what was acknowledged would
                        // hand clients exactly-once answers that no longer
                        // match its state.
                        return Err(corrupt(format!(
                            "nondeterministic replay of entry {}: got {result:?}, logged {:?}",
                            e.seq, e.result
                        )));
                    }
                }
                Replay::Partial(sub) => {
                    let _ = exec_synced(store.as_ref(), &sub);
                }
            }
            if let Some(id) = e.rpc_id {
                // Always the logged result — it is the authoritative one,
                // and a covered or partial replay cannot reproduce it.
                rifl.record(id, e.result.clone());
            }
            next_seq += 1;
        }
        let next_seq = next_seq.max(max_cov);
        // Cut any torn tail off the file before appending again: new
        // entries written after the leftover bytes would hide behind the
        // tear's stale length prefix and poison the next restart's load.
        Aof::truncate_to_clean(&aof_path(&dir, master), &outcome)?;
        let aof = Aof::open(&aof_path(&dir, master), FsyncPolicy::Manual)?;
        let mut replica = Replica::from_parts(store, rifl, next_seq, epoch, Some(aof), base);
        replica.coverage = coverage;
        replica.rewritten = min_cov;
        self.replicas.lock().insert(master, replica);
        Ok(next_seq)
    }

    fn parse_snap(raw: &[u8]) -> std::io::Result<(Snapshot, Epoch)> {
        let mut buf = raw;
        if buf.remaining() < 16 {
            return Err(corrupt("snap file shorter than its header".into()));
        }
        let epoch = Epoch(buf.get_u64_le());
        let next_seq = buf.get_u64_le();
        let mut snap = Snapshot::from_blob(buf).map_err(|e| corrupt(format!("snap blob: {e}")))?;
        // The header's next_seq is what install persisted; it is
        // authoritative over the blob's copy.
        snap.next_seq = next_seq;
        Ok((snap, epoch))
    }

    /// Restores every master whose files survive in the data directory.
    /// Returns the restored ids (sorted). No-op on a memory-only service.
    pub fn restore_all_from_disk(&self) -> std::io::Result<Vec<MasterId>> {
        let Some(dir) = self.dir.clone() else { return Ok(Vec::new()) };
        let mut ids = std::collections::BTreeSet::new();
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            let Some(rest) = name.strip_prefix("master-") else { continue };
            if let Some(id) = rest
                .strip_suffix(".aof")
                .or_else(|| rest.strip_suffix(".snap"))
                .or_else(|| rest.strip_suffix(".fence"))
                .or_else(|| rest.split_once(".ckpt").map(|(id, _)| id))
            {
                if let Ok(n) = id.parse::<u64>() {
                    ids.insert(MasterId(n));
                }
            }
        }
        for &m in &ids {
            self.restore_from_aof(m)?;
        }
        Ok(ids.into_iter().collect())
    }

    /// Executes a read-only op against the replica (possibly stale — callers
    /// must have passed the §A.1 witness probe first).
    pub fn read(&self, master: MasterId, op: &Op) -> Option<OpResult> {
        if !op.is_read_only() {
            return None;
        }
        let replicas = self.replicas.lock();
        let replica = replicas.get(&master)?;
        Some(exec_synced(replica.store.as_ref(), op))
    }

    /// Drops the replica state for `master` (post-recovery cleanup),
    /// shrinking its on-disk footprint to a tombstone on a durable service.
    /// Only safe once the successor master's install is durable everywhere
    /// — the coordinator calls this after every backup acknowledged the
    /// `BackupInstall`.
    ///
    /// The map entry survives as a *fencing tombstone*: the epoch keeps
    /// rejecting the dead incarnation's zombie syncs (§4.7), which must
    /// outlive the data — including across this backup's own restart, so on
    /// a durable service the tombstone is persisted as an empty snapshot
    /// carrying the epoch (the AOF and checkpoints are deleted). Master
    /// ids are never reissued, so no legitimate sync ever targets the
    /// tombstone.
    pub fn drop_replica(&self, master: MasterId) {
        let mut replicas = self.replicas.lock();
        let Some(r) = replicas.get_mut(&master) else { return };
        let epoch = r.epoch;
        *r = Replica::new(&self.store_cfg, epoch, None); // closes the AOF handle
        if let Some(dir) = &self.dir {
            // Persist the fence (empty snapshot + epoch; persist_install
            // also truncates the AOF and deletes the checkpoints), then
            // delete the AOF file. Best effort beyond the fence: if the
            // tombstone cannot be written, keep the old files — stale data
            // is recoverable garbage, a lost fence is a zombie hole.
            if Self::persist_install(dir, master, epoch, 0, empty_snapshot()).is_ok() {
                let _ = std::fs::remove_file(aof_path(dir, master));
                // The tombstone snapshot now carries the epoch; the sidecar
                // fence (always <= the in-memory epoch) is redundant.
                let _ = std::fs::remove_file(fence_path(dir, master));
                let _ = curp_storage::fsync_dir(dir);
            }
        }
    }

    /// Next expected sequence number, if the replica exists (diagnostics).
    pub fn next_seq(&self, master: MasterId) -> Option<u64> {
        self.replicas.lock().get(&master).map(|r| r.next_seq)
    }

    /// Dispatches a backup-directed [`Request`].
    pub fn handle_request(&self, req: &Request) -> Response {
        match req {
            Request::BackupSync { master_id, epoch, entries } => {
                match self.sync(*master_id, *epoch, entries) {
                    SyncOutcome::Applied { next_seq } => {
                        Response::BackupSynced { accepted: true, next_seq }
                    }
                    SyncOutcome::Fenced { next_seq } => {
                        Response::BackupSynced { accepted: false, next_seq }
                    }
                    // Not a fencing verdict: the master retries, and a
                    // wedged backup stays unavailable until cold restart.
                    SyncOutcome::PersistFailed { error } => {
                        Response::Retry { reason: format!("backup persist failed: {error}") }
                    }
                }
            }
            Request::BackupFetch { master_id } => {
                let (next_seq, snap) = self.fetch(*master_id);
                Response::BackupData { next_seq, snapshot: snap.to_blob() }
            }
            Request::BackupInstall { master_id, epoch, next_seq, snapshot } => {
                match Snapshot::from_blob(snapshot) {
                    Ok(snap) => match self.install(*master_id, *epoch, *next_seq, &snap) {
                        Ok(true) => Response::BackupInstalled,
                        Ok(false) => Response::Retry { reason: "stale install epoch".into() },
                        Err(e) => {
                            Response::Retry { reason: format!("install persist failed: {e}") }
                        }
                    },
                    Err(e) => Response::Retry { reason: format!("bad snapshot: {e}") },
                }
            }
            Request::BackupRead { master_id, op } => match self.read(*master_id, op) {
                Some(result) => Response::BackupValue { result },
                None => Response::Retry { reason: "no replica or not a read".into() },
            },
            Request::BackupSetEpoch { master_id, epoch } => {
                self.set_epoch(*master_id, *epoch);
                Response::EpochSet
            }
            _ => Response::Retry { reason: "not a backup request".into() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use curp_proto::types::{ClientId, RpcId};
    use curp_storage::{Store, TempDir};

    const M: MasterId = MasterId(1);

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn entry(seq: u64, key: &str, val: &str, version: u64) -> LogEntry {
        LogEntry {
            seq,
            rpc_id: Some(RpcId::new(ClientId(1), seq + 1)),
            op: Op::Put { key: b(key), value: b(val) },
            result: OpResult::Written { version },
        }
    }

    /// Legacy-shaped wrapper so the pre-`SyncOutcome` assertions read
    /// unchanged: `(accepted, next_seq)`.
    fn sync2(bs: &BackupService, m: MasterId, e: Epoch, entries: &[LogEntry]) -> (bool, u64) {
        match bs.sync(m, e, entries) {
            SyncOutcome::Applied { next_seq } => (true, next_seq),
            SyncOutcome::Fenced { next_seq } => (false, next_seq),
            SyncOutcome::PersistFailed { error } => panic!("unexpected persist failure: {error}"),
        }
    }

    #[test]
    fn applies_ordered_entries() {
        let bs = BackupService::new();
        let (ok, next) = sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1), entry(1, "b", "2", 1)]);
        assert!(ok);
        assert_eq!(next, 2);
        assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(Some(b("1")))));
    }

    #[test]
    fn duplicate_entries_are_idempotent() {
        let bs = BackupService::new();
        sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1)]);
        // Re-send of the same batch plus one new entry.
        let (ok, next) = sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1), entry(1, "a", "2", 2)]);
        assert!(ok);
        assert_eq!(next, 2);
        assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(Some(b("2")))));
    }

    #[test]
    fn out_of_order_entries_are_buffered_until_contiguous() {
        let bs = BackupService::new();
        let (ok, next) = sync2(&bs, M, Epoch(0), &[entry(1, "a", "2", 2)]);
        assert!(ok, "future entry is buffered, not refused");
        assert_eq!(next, 0, "nothing applied yet");
        // Reads do not see buffered entries.
        assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(None)));
        let (ok, next) = sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1)]);
        assert!(ok);
        assert_eq!(next, 2, "gap filled; both applied in order");
        assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(Some(b("2")))));
    }

    #[test]
    fn zombie_epoch_fenced() {
        let bs = BackupService::new();
        sync2(&bs, M, Epoch(1), &[entry(0, "a", "1", 1)]);
        bs.set_epoch(M, Epoch(2));
        let (ok, _) = sync2(&bs, M, Epoch(1), &[entry(1, "a", "2", 2)]);
        assert!(!ok, "stale-epoch sync must be rejected");
        // The new epoch's syncs are fine.
        let (ok, _) = sync2(&bs, M, Epoch(2), &[entry(1, "a", "2", 2)]);
        assert!(ok);
    }

    #[test]
    fn epoch_never_lowers() {
        let bs = BackupService::new();
        bs.set_epoch(M, Epoch(5));
        bs.set_epoch(M, Epoch(3));
        let (ok, _) = sync2(&bs, M, Epoch(4), &[]);
        assert!(!ok);
    }

    #[test]
    fn fetch_of_unknown_master_is_empty() {
        let bs = BackupService::new();
        let (next, snap) = bs.fetch(MasterId(42));
        assert_eq!(next, 0);
        assert!(snap.objects.is_empty());
    }

    #[test]
    fn fetch_install_roundtrip() {
        let bs = BackupService::new();
        sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1), entry(1, "b", "2", 1)]);
        let (next, snap) = bs.fetch(M);
        assert_eq!(next, 2);

        let target = BackupService::new();
        assert!(target.install(MasterId(2), Epoch(1), next, &snap).unwrap());
        assert_eq!(
            target.read(MasterId(2), &Op::Get { key: b("b") }),
            Some(OpResult::Value(Some(b("2"))))
        );
        // RIFL records travel with the snapshot.
        let replicas = target.replicas.lock();
        assert_eq!(replicas.get(&MasterId(2)).unwrap().rifl.record_count(), 2);
    }

    #[test]
    fn install_rejects_stale_epoch() {
        let bs = BackupService::new();
        bs.set_epoch(M, Epoch(5));
        let snap = Snapshot::capture(&Store::new(), &RiflTable::new(), 0);
        assert!(!bs.install(M, Epoch(4), 0, &snap).unwrap());
        assert!(bs.install(M, Epoch(5), 0, &snap).unwrap());
    }

    #[test]
    fn read_rejects_mutations() {
        let bs = BackupService::new();
        sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1)]);
        assert_eq!(bs.read(M, &Op::Put { key: b("a"), value: b("2") }), None);
    }

    #[test]
    fn rifl_records_accumulate() {
        let bs = BackupService::new();
        sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1), entry(1, "b", "1", 1)]);
        let replicas = bs.replicas.lock();
        assert_eq!(replicas.get(&M).unwrap().rifl.record_count(), 2);
    }

    #[test]
    fn rpc_dispatch() {
        let bs = BackupService::new();
        let rsp = bs.handle_request(&Request::BackupSync {
            master_id: M,
            epoch: Epoch(0),
            entries: vec![entry(0, "a", "1", 1)],
        });
        assert_eq!(rsp, Response::BackupSynced { accepted: true, next_seq: 1 });
        match bs.handle_request(&Request::BackupFetch { master_id: M }) {
            Response::BackupData { next_seq, snapshot } => {
                assert_eq!(next_seq, 1);
                assert!(Snapshot::from_blob(&snapshot).is_ok());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            bs.handle_request(&Request::BackupRead { master_id: M, op: Op::Get { key: b("a") } }),
            Response::BackupValue { result: OpResult::Value(Some(b("1"))) }
        );
        assert_eq!(
            bs.handle_request(&Request::BackupSetEpoch { master_id: M, epoch: Epoch(9) }),
            Response::EpochSet
        );
        assert!(matches!(bs.handle_request(&Request::GetConfig), Response::Retry { .. }));
    }

    #[test]
    fn compact_bounds_the_aof_and_survives_restart() {
        let tmp = TempDir::new("backup-compact").unwrap();
        let val = "v".repeat(64);
        let entries: Vec<LogEntry> =
            (0..200).map(|i| entry(i, &format!("k{}", i % 10), &val, i / 10 + 1)).collect();
        {
            let bs = BackupService::durable_with(tmp.path(), StoreConfig::memory(4)).unwrap();
            sync2(&bs, M, Epoch(0), &entries);
            let before = bs.footprint(M).unwrap();
            bs.compact(M).unwrap();
            let after = bs.footprint(M).unwrap();
            assert!(
                after.aof_bytes < before.aof_bytes,
                "compaction must shrink the log ({} -> {})",
                before.aof_bytes,
                after.aof_bytes
            );
            // 200 overwrites of 10 keys: the log is bounded by live state,
            // not op count.
            assert!(after.aof_bytes <= 2 * after.state_bytes.max(1));
        }
        let bs = BackupService::durable_with(tmp.path(), StoreConfig::memory(4)).unwrap();
        assert_eq!(bs.next_seq(M), Some(200));
        assert_eq!(bs.read(M, &Op::Get { key: b("k9") }), Some(OpResult::Value(Some(b(&val)))));
    }

    #[test]
    fn restart_replays_checkpoints_plus_aof_suffix() {
        let tmp = TempDir::new("backup-ckpt-suffix").unwrap();
        {
            let bs = BackupService::durable_with(tmp.path(), StoreConfig::memory(4)).unwrap();
            let old: Vec<LogEntry> =
                (0..50).map(|i| entry(i, &format!("k{i}"), "old", 1)).collect();
            sync2(&bs, M, Epoch(0), &old);
            bs.compact(M).unwrap();
            // Entries after the compaction live only in the AOF suffix.
            let new: Vec<LogEntry> =
                (50..60).map(|i| entry(i, &format!("k{}", i - 50), "new", 2)).collect();
            sync2(&bs, M, Epoch(0), &new);
        }
        let bs = BackupService::durable_with(tmp.path(), StoreConfig::memory(4)).unwrap();
        assert_eq!(bs.next_seq(M), Some(60));
        assert_eq!(bs.read(M, &Op::Get { key: b("k3") }), Some(OpResult::Value(Some(b("new")))));
        assert_eq!(bs.read(M, &Op::Get { key: b("k30") }), Some(OpResult::Value(Some(b("old")))));
        // Exactly-once records survive the checkpointed restart too.
        assert_eq!(bs.replicas.lock().get(&M).unwrap().rifl.record_count(), 60);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_the_log_when_it_still_covers() {
        let tmp = TempDir::new("backup-ckpt-corrupt").unwrap();
        {
            let bs = BackupService::durable_with(tmp.path(), StoreConfig::memory(2)).unwrap();
            let ops: Vec<LogEntry> = (0..20).map(|i| entry(i, &format!("k{i}"), "v", 1)).collect();
            sync2(&bs, M, Epoch(0), &ops);
            // Checkpoints exist but the AOF has NOT been rewritten (no
            // maintenance tick ran): scribble over one checkpoint.
            let replicas = bs.replicas.lock();
            let replica = replicas.get(&M).unwrap();
            for shard in 0..2 {
                BackupService::checkpoint_shard(tmp.path(), replica, M, shard).unwrap();
            }
            drop(replicas);
            std::fs::write(ckpt_path(tmp.path(), M, 0), b"garbage").unwrap();
        }
        let bs = BackupService::durable_with(tmp.path(), StoreConfig::memory(2)).unwrap();
        assert_eq!(bs.next_seq(M), Some(20), "full log replay covers the lost checkpoint");
        assert_eq!(bs.read(M, &Op::Get { key: b("k7") }), Some(OpResult::Value(Some(b("v")))));
    }

    #[test]
    fn install_invalidates_prior_checkpoints() {
        let tmp = TempDir::new("backup-install-ckpt").unwrap();
        let bs = BackupService::durable_with(tmp.path(), StoreConfig::memory(2)).unwrap();
        let ops: Vec<LogEntry> = (0..10).map(|i| entry(i, &format!("k{i}"), "v", 1)).collect();
        sync2(&bs, M, Epoch(0), &ops);
        bs.compact(M).unwrap();
        assert!(ckpt_path(tmp.path(), M, 0).exists());
        let snap = Snapshot::from_parts((Vec::new(), Vec::new()), RiflTable::new().export(), 0);
        assert!(bs.install(M, Epoch(1), 0, &snap).unwrap());
        assert!(!ckpt_path(tmp.path(), M, 0).exists(), "install deletes stale checkpoints");
        assert_eq!(bs.read(M, &Op::Get { key: b("k3") }), Some(OpResult::Value(None)));
    }
}
