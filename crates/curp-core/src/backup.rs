//! The backup role: ordered, durable replicas of a master's log.
//!
//! Backups hold "data that includes ordering information" (Figure 1). A
//! backup applies each master sync — a batch of contiguous, ordered
//! [`LogEntry`]s — to a materialized [`Store`] plus [`RiflTable`], verifying
//! determinism as it goes, and fences stale master epochs to neutralize
//! zombies (§4.7). During recovery it serves its materialized state as a
//! [`Snapshot`] (the "restoration from backups" step, §3.3).
//!
//! ## Durability (§5.4)
//!
//! A backup built with [`BackupService::durable`] keeps one append-only
//! file per master under its data directory and follows the write-ahead
//! discipline: every sync round's applicable entries are appended and
//! fsynced **before** they are applied or acknowledged — "log client
//! requests to an append-only file and invoke fsync before responding"
//! (§5.4), with one `write + fsync` per round, the §C.2 batching. A master
//! recovery install persists the snapshot (plus its fencing epoch) next to
//! the AOF. After a whole-cluster power loss,
//! [`BackupService::restore_from_aof`] rebuilds each replica from
//! the snapshot + AOF suffix, so everything a backup ever acknowledged
//! survives the restart — the invariant `Coordinator::restart_cluster`
//! builds on.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use bytes::Buf;
use curp_proto::message::{LogEntry, Request, Response};
use curp_proto::op::{Op, OpResult};
use curp_proto::types::{Epoch, MasterId};
use curp_rifl::RiflTable;
use curp_storage::{Aof, FsyncPolicy, Store};
use parking_lot::Mutex;

use crate::snapshot::Snapshot;

fn aof_path(dir: &Path, master: MasterId) -> PathBuf {
    dir.join(format!("master-{}.aof", master.0))
}

fn snap_path(dir: &Path, master: MasterId) -> PathBuf {
    dir.join(format!("master-{}.snap", master.0))
}

fn fence_path(dir: &Path, master: MasterId) -> PathBuf {
    dir.join(format!("master-{}.fence", master.0))
}

/// Persists the fencing epoch for `master` as a sidecar file (8-byte LE
/// epoch, tmp + fsync + rename + dir fsync). The fence must survive this
/// backup's own crash: the coordinator fences *before* recovery reads any
/// backup (§4.7), and a zombie master can outlive a backup reboot — a fence
/// that only lives in memory would re-admit its stale syncs after a cold
/// restart.
fn persist_fence(dir: &Path, master: MasterId, epoch: Epoch) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = dir.join(format!("master-{}.fence.tmp", master.0));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&epoch.0.to_le_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, fence_path(dir, master))?;
    curp_storage::fsync_dir(dir)
}

/// Reads the persisted fence, if any ([`Epoch(0)`](Epoch) when absent).
fn load_fence(dir: &Path, master: MasterId) -> std::io::Result<Epoch> {
    match std::fs::read(fence_path(dir, master)) {
        Ok(raw) => {
            let bytes: [u8; 8] =
                raw.try_into().map_err(|_| corrupt(format!("bad fence file for {master:?}")))?;
            Ok(Epoch(u64::from_le_bytes(bytes)))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Epoch(0)),
        Err(e) => Err(e),
    }
}

fn corrupt(what: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what)
}

struct Replica {
    store: Store,
    rifl: RiflTable,
    next_seq: u64,
    epoch: Epoch,
    /// Out-of-order arrivals waiting for their predecessors (masters may
    /// replicate entries from several worker threads concurrently, so a
    /// later entry can arrive first; it is buffered, not rejected).
    reorder: std::collections::BTreeMap<u64, LogEntry>,
    /// Write-ahead log handle (`None` on a memory-only service).
    aof: Option<Aof>,
    /// Set after a persistence failure: the on-disk suffix is unknown, so
    /// the replica refuses every further sync (fail-stop) rather than ack
    /// entries whose durability it cannot vouch for. Cleared only by a cold
    /// restart, which re-reads the disk.
    wedged: bool,
}

impl Replica {
    fn new(epoch: Epoch, aof: Option<Aof>) -> Self {
        Replica {
            store: Store::new(),
            rifl: RiflTable::new(),
            next_seq: 0,
            epoch,
            reorder: std::collections::BTreeMap::new(),
            aof,
            wedged: false,
        }
    }

    fn apply(&mut self, e: &LogEntry) {
        let result = self.store.execute(&e.op);
        debug_assert_eq!(result, e.result, "nondeterministic replay of entry {}", e.seq);
        if let Some(id) = e.rpc_id {
            self.rifl.record(id, e.result.clone());
        }
        self.next_seq += 1;
    }
}

/// Outcome of one [`BackupService::sync`] round.
#[derive(Debug, PartialEq, Eq)]
pub enum SyncOutcome {
    /// Entries staged/applied; everything at `seq < next_seq` is durable
    /// (fsynced, on a durable service) on this backup.
    Applied {
        /// Next expected sequence number.
        next_seq: u64,
    },
    /// The sender's epoch is stale — it is a fenced zombie (§4.7).
    Fenced {
        /// Next expected sequence number (for the sender's diagnostics).
        next_seq: u64,
    },
    /// The write-ahead append or fsync failed; nothing was acknowledged and
    /// the replica is wedged until a cold restart.
    PersistFailed {
        /// The underlying I/O error.
        error: String,
    },
}

/// A backup server hosting one replica per master.
#[derive(Default)]
pub struct BackupService {
    replicas: Mutex<HashMap<MasterId, Replica>>,
    /// Data directory for the per-master AOFs + snapshots (`None` =
    /// memory-only, the pre-§5.4 configuration).
    dir: Option<PathBuf>,
}

impl BackupService {
    /// Creates an empty, memory-only backup service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates (or reopens) a durable backup service rooted at `dir`,
    /// restoring every replica that survives on disk — the cold-restart
    /// entry point. See the module docs for the write-ahead discipline.
    pub fn durable(dir: impl Into<PathBuf>) -> std::io::Result<BackupService> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let svc = BackupService { replicas: Mutex::new(HashMap::new()), dir: Some(dir) };
        svc.restore_all_from_disk()?;
        Ok(svc)
    }

    /// Whether this service persists its replicas.
    pub fn is_durable(&self) -> bool {
        self.dir.is_some()
    }

    /// Looks up (creating if absent) the replica for `master`. Creation
    /// opens the write-ahead AOF on a durable service, which can fail.
    fn replica_entry<'a>(
        dir: Option<&Path>,
        replicas: &'a mut HashMap<MasterId, Replica>,
        master: MasterId,
        epoch: Epoch,
    ) -> std::io::Result<&'a mut Replica> {
        use std::collections::hash_map::Entry;
        match replicas.entry(master) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(v) => {
                let aof = dir
                    .map(|d| Aof::open(&aof_path(d, master), FsyncPolicy::Manual))
                    .transpose()?;
                Ok(v.insert(Replica::new(epoch, aof)))
            }
        }
    }

    /// Applies a sync batch.
    ///
    /// * A stale epoch is [`SyncOutcome::Fenced`]: the sender is a zombie
    ///   (§4.7).
    /// * Entries below `next_seq` are duplicates from a retried sync and are
    ///   skipped idempotently.
    /// * Entries above `next_seq` are buffered and applied once their
    ///   predecessors arrive (concurrent replication from multiple master
    ///   workers may reorder batches in flight).
    /// * On a durable service the round's applicable entries are appended
    ///   and fsynced **before** being applied: an `Applied` ack implies the
    ///   covering fsync happened (DESIGN.md invariant 7). A failed append
    ///   wedges the replica — fail-stop, never an unbacked ack.
    pub fn sync(&self, master: MasterId, epoch: Epoch, entries: &[LogEntry]) -> SyncOutcome {
        let mut replicas = self.replicas.lock();
        let replica = match Self::replica_entry(self.dir.as_deref(), &mut replicas, master, epoch) {
            Ok(r) => r,
            Err(e) => return SyncOutcome::PersistFailed { error: format!("open aof: {e}") },
        };
        // Fencing is answered before the wedge: a deposed zombie must learn
        // it was fenced (and seal itself) even from a backup that can no
        // longer persist — Retry would have it retry forever, unsealed.
        if epoch < replica.epoch {
            return SyncOutcome::Fenced { next_seq: replica.next_seq };
        }
        replica.epoch = epoch;
        if replica.wedged {
            return SyncOutcome::PersistFailed { error: "replica wedged (fail-stop)".into() };
        }
        // Common case first: the batch is exactly the next contiguous run
        // (masters send seq-sorted batches) and nothing is buffered — apply
        // straight from the slice, no staging clones, no map churn. The
        // general path (gaps, interleaved duplicates, buffered entries)
        // stages through the reorder map.
        let dup_prefix = entries.iter().take_while(|e| e.seq < replica.next_seq).count();
        let fresh = &entries[dup_prefix..];
        let contiguous = replica.reorder.is_empty()
            && fresh.iter().enumerate().all(|(i, e)| e.seq == replica.next_seq + i as u64);
        let staged: Vec<LogEntry>;
        let ready: &[LogEntry] = if contiguous {
            fresh
        } else {
            for e in fresh {
                if e.seq >= replica.next_seq {
                    replica.reorder.insert(e.seq, e.clone());
                }
            }
            let mut run = Vec::new();
            let mut n = replica.next_seq;
            while let Some(e) = replica.reorder.remove(&n) {
                run.push(e);
                n += 1;
            }
            staged = run;
            &staged
        };
        // Write-ahead: one append + one fsync per sync round, before apply.
        if let Some(aof) = replica.aof.as_mut() {
            if !ready.is_empty() {
                if let Err(e) = aof.append_batch(ready).and_then(|()| aof.sync()) {
                    replica.wedged = true;
                    return SyncOutcome::PersistFailed { error: format!("aof append: {e}") };
                }
            }
        }
        for e in ready {
            replica.apply(e);
        }
        SyncOutcome::Applied { next_seq: replica.next_seq }
    }

    /// Raises the fencing epoch for `master` (coordinator, pre-recovery §4.7).
    ///
    /// On a durable service the fence is persisted before returning: it must
    /// keep rejecting the zombie across this backup's own restart, or a
    /// crash between the coordinator's fence and the recovery install
    /// re-admits the deposed master's syncs. If the fence cannot be
    /// persisted the replica wedges (fail-stop), same as a failed append —
    /// it may not acknowledge anything whose rejection it cannot guarantee.
    pub fn set_epoch(&self, master: MasterId, epoch: Epoch) {
        let mut replicas = self.replicas.lock();
        let Ok(replica) = Self::replica_entry(self.dir.as_deref(), &mut replicas, master, epoch)
        else {
            // The AOF could not even be opened: syncs will fail the same
            // way, so the fence is moot — there is nothing to protect.
            return;
        };
        if epoch >= replica.epoch {
            replica.epoch = epoch;
            if let Some(dir) = &self.dir {
                if persist_fence(dir, master, epoch).is_err() {
                    replica.wedged = true;
                }
            }
        }
    }

    /// Serves the materialized replica as a snapshot (recovery restore).
    ///
    /// A master that crashed before its first sync has no replica yet; the
    /// restore then starts from an empty state (everything it executed lives
    /// only on witnesses), so an absent replica yields an empty snapshot.
    pub fn fetch(&self, master: MasterId) -> (u64, Snapshot) {
        let replicas = self.replicas.lock();
        match replicas.get(&master) {
            Some(r) => (r.next_seq, Snapshot::capture(&r.store, &r.rifl, r.next_seq)),
            None => (0, Snapshot::capture(&Store::new(), &RiflTable::new(), 0)),
        }
    }

    /// Replaces (or creates) the replica for `master` from a snapshot.
    /// Returns `Ok(false)` for a stale epoch, like [`sync`](Self::sync);
    /// `Err` when a durable service cannot persist the install.
    pub fn install(
        &self,
        master: MasterId,
        epoch: Epoch,
        next_seq: u64,
        snap: &Snapshot,
    ) -> std::io::Result<bool> {
        let mut replicas = self.replicas.lock();
        if let Some(existing) = replicas.get(&master) {
            if epoch < existing.epoch {
                return Ok(false);
            }
        }
        let aof = match &self.dir {
            Some(dir) => {
                Self::persist_install(dir, master, epoch, next_seq, snap)?;
                Some(Aof::open(&aof_path(dir, master), FsyncPolicy::Manual)?)
            }
            None => None,
        };
        let (store, rifl) = snap.restore();
        replicas.insert(
            master,
            Replica {
                store,
                rifl,
                next_seq,
                epoch,
                reorder: std::collections::BTreeMap::new(),
                aof,
                wedged: false,
            },
        );
        Ok(true)
    }

    /// Persists an installed snapshot: header (epoch, next_seq) + blob,
    /// written to a temp file, fsynced, renamed over the `.snap` path —
    /// then the AOF is truncated (subsequent syncs continue from
    /// `next_seq`). Crash between the rename and the truncate leaves stale
    /// AOF entries below `next_seq`, which
    /// [`BackupService::restore_from_aof`] skips.
    fn persist_install(
        dir: &Path,
        master: MasterId,
        epoch: Epoch,
        next_seq: u64,
        snap: &Snapshot,
    ) -> std::io::Result<()> {
        let tmp = dir.join(format!("master-{}.snap.tmp", master.0));
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&epoch.0.to_le_bytes())?;
            f.write_all(&next_seq.to_le_bytes())?;
            f.write_all(&snap.to_blob())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, snap_path(dir, master))?;
        let aof = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(aof_path(dir, master))?;
        aof.sync_data()?;
        // The rename and any file creation live in the directory: flush it,
        // or a power loss can forget the whole install (fsynced contents
        // with no directory entry are unreachable).
        curp_storage::fsync_dir(dir)
    }

    /// Rebuilds the replica for `master` from its on-disk state — the
    /// persisted snapshot (if any) plus the AOF suffix — replaying entries
    /// in order and verifying deterministic results. Returns the restored
    /// `next_seq`. A torn AOF tail is discarded (it was never acknowledged:
    /// the fsync precedes every ack); a seq gap or mid-log corruption is an
    /// error.
    pub fn restore_from_aof(&self, master: MasterId) -> std::io::Result<u64> {
        let dir = self
            .dir
            .clone()
            .ok_or_else(|| corrupt("restore_from_aof on a memory-only service".into()))?;
        let (mut store, mut rifl, mut next_seq, epoch) =
            match std::fs::read(snap_path(&dir, master)) {
                Ok(raw) => Self::parse_snap(&raw)?,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    (Store::new(), RiflTable::new(), 0, Epoch(0))
                }
                Err(e) => return Err(e),
            };
        // The sidecar fence may be ahead of the snapshot epoch (set_epoch
        // between installs); the replica restores at the higher of the two.
        let epoch = epoch.max(load_fence(&dir, master)?);
        let outcome = Aof::load(&aof_path(&dir, master))?;
        for e in &outcome.entries {
            if e.seq < next_seq {
                continue; // pre-install remnant (see persist_install)
            }
            if e.seq > next_seq {
                return Err(corrupt(format!(
                    "gap in AOF for {master:?}: expected seq {next_seq}, found {}",
                    e.seq
                )));
            }
            let result = store.execute(&e.op);
            if result != e.result {
                // A hard error, not an assert: a replica whose replay
                // diverges from what was acknowledged would hand clients
                // exactly-once answers that no longer match its state.
                return Err(corrupt(format!(
                    "nondeterministic replay of entry {}: got {result:?}, logged {:?}",
                    e.seq, e.result
                )));
            }
            if let Some(id) = e.rpc_id {
                rifl.record(id, e.result.clone());
            }
            next_seq += 1;
        }
        // Cut any torn tail off the file before appending again: new
        // entries written after the leftover bytes would hide behind the
        // tear's stale length prefix and poison the next restart's load.
        Aof::truncate_to_clean(&aof_path(&dir, master), &outcome)?;
        let aof = Aof::open(&aof_path(&dir, master), FsyncPolicy::Manual)?;
        self.replicas.lock().insert(
            master,
            Replica {
                store,
                rifl,
                next_seq,
                epoch,
                reorder: std::collections::BTreeMap::new(),
                aof: Some(aof),
                wedged: false,
            },
        );
        Ok(next_seq)
    }

    fn parse_snap(raw: &[u8]) -> std::io::Result<(Store, RiflTable, u64, Epoch)> {
        let mut buf = raw;
        if buf.remaining() < 16 {
            return Err(corrupt("snap file shorter than its header".into()));
        }
        let epoch = Epoch(buf.get_u64_le());
        let next_seq = buf.get_u64_le();
        let snap = Snapshot::from_blob(buf).map_err(|e| corrupt(format!("snap blob: {e}")))?;
        let (store, rifl) = snap.restore();
        Ok((store, rifl, next_seq, epoch))
    }

    /// Restores every master whose files survive in the data directory.
    /// Returns the restored ids (sorted). No-op on a memory-only service.
    pub fn restore_all_from_disk(&self) -> std::io::Result<Vec<MasterId>> {
        let Some(dir) = self.dir.clone() else { return Ok(Vec::new()) };
        let mut ids = std::collections::BTreeSet::new();
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            let Some(rest) = name.strip_prefix("master-") else { continue };
            if let Some(id) = rest
                .strip_suffix(".aof")
                .or_else(|| rest.strip_suffix(".snap"))
                .or_else(|| rest.strip_suffix(".fence"))
            {
                if let Ok(n) = id.parse::<u64>() {
                    ids.insert(MasterId(n));
                }
            }
        }
        for &m in &ids {
            self.restore_from_aof(m)?;
        }
        Ok(ids.into_iter().collect())
    }

    /// Executes a read-only op against the replica (possibly stale — callers
    /// must have passed the §A.1 witness probe first).
    pub fn read(&self, master: MasterId, op: &Op) -> Option<OpResult> {
        if !op.is_read_only() {
            return None;
        }
        let mut replicas = self.replicas.lock();
        let replica = replicas.get_mut(&master)?;
        Some(replica.store.execute(op))
    }

    /// Drops the replica state for `master` (post-recovery cleanup),
    /// shrinking its on-disk footprint to a tombstone on a durable service.
    /// Only safe once the successor master's install is durable everywhere
    /// — the coordinator calls this after every backup acknowledged the
    /// `BackupInstall`.
    ///
    /// The map entry survives as a *fencing tombstone*: the epoch keeps
    /// rejecting the dead incarnation's zombie syncs (§4.7), which must
    /// outlive the data — including across this backup's own restart, so on
    /// a durable service the tombstone is persisted as an empty snapshot
    /// carrying the epoch (the AOF is deleted). Master ids are never
    /// reissued, so no legitimate sync ever targets the tombstone.
    pub fn drop_replica(&self, master: MasterId) {
        let mut replicas = self.replicas.lock();
        let Some(r) = replicas.get_mut(&master) else { return };
        let epoch = r.epoch;
        *r = Replica::new(epoch, None); // closes the AOF handle
        if let Some(dir) = &self.dir {
            // Persist the fence (empty snapshot + epoch; persist_install
            // also truncates the AOF), then delete the AOF file. Best
            // effort beyond the fence: if the tombstone cannot be written,
            // keep the old files — stale data is recoverable garbage, a
            // lost fence is a zombie hole.
            let empty = Snapshot::capture(&Store::new(), &RiflTable::new(), 0);
            if Self::persist_install(dir, master, epoch, 0, &empty).is_ok() {
                let _ = std::fs::remove_file(aof_path(dir, master));
                // The tombstone snapshot now carries the epoch; the sidecar
                // fence (always <= the in-memory epoch) is redundant.
                let _ = std::fs::remove_file(fence_path(dir, master));
                let _ = curp_storage::fsync_dir(dir);
            }
        }
    }

    /// Next expected sequence number, if the replica exists (diagnostics).
    pub fn next_seq(&self, master: MasterId) -> Option<u64> {
        self.replicas.lock().get(&master).map(|r| r.next_seq)
    }

    /// Dispatches a backup-directed [`Request`].
    pub fn handle_request(&self, req: &Request) -> Response {
        match req {
            Request::BackupSync { master_id, epoch, entries } => {
                match self.sync(*master_id, *epoch, entries) {
                    SyncOutcome::Applied { next_seq } => {
                        Response::BackupSynced { accepted: true, next_seq }
                    }
                    SyncOutcome::Fenced { next_seq } => {
                        Response::BackupSynced { accepted: false, next_seq }
                    }
                    // Not a fencing verdict: the master retries, and a
                    // wedged backup stays unavailable until cold restart.
                    SyncOutcome::PersistFailed { error } => {
                        Response::Retry { reason: format!("backup persist failed: {error}") }
                    }
                }
            }
            Request::BackupFetch { master_id } => {
                let (next_seq, snap) = self.fetch(*master_id);
                Response::BackupData { next_seq, snapshot: snap.to_blob() }
            }
            Request::BackupInstall { master_id, epoch, next_seq, snapshot } => {
                match Snapshot::from_blob(snapshot) {
                    Ok(snap) => match self.install(*master_id, *epoch, *next_seq, &snap) {
                        Ok(true) => Response::BackupInstalled,
                        Ok(false) => Response::Retry { reason: "stale install epoch".into() },
                        Err(e) => {
                            Response::Retry { reason: format!("install persist failed: {e}") }
                        }
                    },
                    Err(e) => Response::Retry { reason: format!("bad snapshot: {e}") },
                }
            }
            Request::BackupRead { master_id, op } => match self.read(*master_id, op) {
                Some(result) => Response::BackupValue { result },
                None => Response::Retry { reason: "no replica or not a read".into() },
            },
            Request::BackupSetEpoch { master_id, epoch } => {
                self.set_epoch(*master_id, *epoch);
                Response::EpochSet
            }
            _ => Response::Retry { reason: "not a backup request".into() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use curp_proto::types::{ClientId, RpcId};

    const M: MasterId = MasterId(1);

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn entry(seq: u64, key: &str, val: &str, version: u64) -> LogEntry {
        LogEntry {
            seq,
            rpc_id: Some(RpcId::new(ClientId(1), seq + 1)),
            op: Op::Put { key: b(key), value: b(val) },
            result: OpResult::Written { version },
        }
    }

    /// Legacy-shaped wrapper so the pre-`SyncOutcome` assertions read
    /// unchanged: `(accepted, next_seq)`.
    fn sync2(bs: &BackupService, m: MasterId, e: Epoch, entries: &[LogEntry]) -> (bool, u64) {
        match bs.sync(m, e, entries) {
            SyncOutcome::Applied { next_seq } => (true, next_seq),
            SyncOutcome::Fenced { next_seq } => (false, next_seq),
            SyncOutcome::PersistFailed { error } => panic!("unexpected persist failure: {error}"),
        }
    }

    #[test]
    fn applies_ordered_entries() {
        let bs = BackupService::new();
        let (ok, next) = sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1), entry(1, "b", "2", 1)]);
        assert!(ok);
        assert_eq!(next, 2);
        assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(Some(b("1")))));
    }

    #[test]
    fn duplicate_entries_are_idempotent() {
        let bs = BackupService::new();
        sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1)]);
        // Re-send of the same batch plus one new entry.
        let (ok, next) = sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1), entry(1, "a", "2", 2)]);
        assert!(ok);
        assert_eq!(next, 2);
        assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(Some(b("2")))));
    }

    #[test]
    fn out_of_order_entries_are_buffered_until_contiguous() {
        let bs = BackupService::new();
        let (ok, next) = sync2(&bs, M, Epoch(0), &[entry(1, "a", "2", 2)]);
        assert!(ok, "future entry is buffered, not refused");
        assert_eq!(next, 0, "nothing applied yet");
        // Reads do not see buffered entries.
        assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(None)));
        let (ok, next) = sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1)]);
        assert!(ok);
        assert_eq!(next, 2, "gap filled; both applied in order");
        assert_eq!(bs.read(M, &Op::Get { key: b("a") }), Some(OpResult::Value(Some(b("2")))));
    }

    #[test]
    fn zombie_epoch_fenced() {
        let bs = BackupService::new();
        sync2(&bs, M, Epoch(1), &[entry(0, "a", "1", 1)]);
        bs.set_epoch(M, Epoch(2));
        let (ok, _) = sync2(&bs, M, Epoch(1), &[entry(1, "a", "2", 2)]);
        assert!(!ok, "stale-epoch sync must be rejected");
        // The new epoch's syncs are fine.
        let (ok, _) = sync2(&bs, M, Epoch(2), &[entry(1, "a", "2", 2)]);
        assert!(ok);
    }

    #[test]
    fn epoch_never_lowers() {
        let bs = BackupService::new();
        bs.set_epoch(M, Epoch(5));
        bs.set_epoch(M, Epoch(3));
        let (ok, _) = sync2(&bs, M, Epoch(4), &[]);
        assert!(!ok);
    }

    #[test]
    fn fetch_of_unknown_master_is_empty() {
        let bs = BackupService::new();
        let (next, snap) = bs.fetch(MasterId(42));
        assert_eq!(next, 0);
        assert!(snap.objects.is_empty());
    }

    #[test]
    fn fetch_install_roundtrip() {
        let bs = BackupService::new();
        sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1), entry(1, "b", "2", 1)]);
        let (next, snap) = bs.fetch(M);
        assert_eq!(next, 2);

        let target = BackupService::new();
        assert!(target.install(MasterId(2), Epoch(1), next, &snap).unwrap());
        assert_eq!(
            target.read(MasterId(2), &Op::Get { key: b("b") }),
            Some(OpResult::Value(Some(b("2"))))
        );
        // RIFL records travel with the snapshot.
        let replicas = target.replicas.lock();
        assert_eq!(replicas.get(&MasterId(2)).unwrap().rifl.record_count(), 2);
    }

    #[test]
    fn install_rejects_stale_epoch() {
        let bs = BackupService::new();
        bs.set_epoch(M, Epoch(5));
        let snap = Snapshot::capture(&Store::new(), &RiflTable::new(), 0);
        assert!(!bs.install(M, Epoch(4), 0, &snap).unwrap());
        assert!(bs.install(M, Epoch(5), 0, &snap).unwrap());
    }

    #[test]
    fn read_rejects_mutations() {
        let bs = BackupService::new();
        sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1)]);
        assert_eq!(bs.read(M, &Op::Put { key: b("a"), value: b("2") }), None);
    }

    #[test]
    fn rifl_records_accumulate() {
        let bs = BackupService::new();
        sync2(&bs, M, Epoch(0), &[entry(0, "a", "1", 1), entry(1, "b", "1", 1)]);
        let replicas = bs.replicas.lock();
        assert_eq!(replicas.get(&M).unwrap().rifl.record_count(), 2);
    }

    #[test]
    fn rpc_dispatch() {
        let bs = BackupService::new();
        let rsp = bs.handle_request(&Request::BackupSync {
            master_id: M,
            epoch: Epoch(0),
            entries: vec![entry(0, "a", "1", 1)],
        });
        assert_eq!(rsp, Response::BackupSynced { accepted: true, next_seq: 1 });
        match bs.handle_request(&Request::BackupFetch { master_id: M }) {
            Response::BackupData { next_seq, snapshot } => {
                assert_eq!(next_seq, 1);
                assert!(Snapshot::from_blob(&snapshot).is_ok());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            bs.handle_request(&Request::BackupRead { master_id: M, op: Op::Get { key: b("a") } }),
            Response::BackupValue { result: OpResult::Value(Some(b("1"))) }
        );
        assert_eq!(
            bs.handle_request(&Request::BackupSetEpoch { master_id: M, epoch: Epoch(9) }),
            Response::EpochSet
        );
        assert!(matches!(bs.handle_request(&Request::GetConfig), Response::Retry { .. }));
    }
}
